#!/usr/bin/env python3
"""Quickstart: profile a program, design an architecture, measure both axes.

This walks the full pipeline of the paper on a single benchmark:

1. build the 8-qubit UCCSD VQE ansatz;
2. profile it (coupling strength matrix + coupling degree list);
3. run the design flow to generate an application-specific architecture;
4. estimate the architecture's fabrication yield (Monte Carlo, IBM's
   frequency-collision model);
5. map the program onto the architecture and report the post-mapping gate
   count, comparing against IBM's general-purpose 16-qubit baseline.

Run:  python examples/quickstart.py
"""

from repro.benchmarks import get_benchmark
from repro.collision import YieldSimulator
from repro.design import DesignFlow
from repro.hardware import ibm_16q_2x8
from repro.mapping import route_circuit
from repro.profiling import classify_pattern, profile_circuit
from repro.visualization import render_architecture, render_coupling_matrix


def main() -> None:
    # 1. The program we design hardware for.
    circuit = get_benchmark("UCCSD_ansatz_8")
    print(f"benchmark: {circuit.name} -- {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates ({circuit.num_two_qubit_gates} two-qubit)")

    # 2. Profile it (paper Section 3).
    profile = profile_circuit(circuit)
    print(f"coupling pattern: {classify_pattern(profile).value}")
    print("coupling strength matrix:")
    print(render_coupling_matrix(profile.strength_matrix))
    print("coupling degree list:", profile.degree_list)

    # 3. Design an application-specific architecture (paper Section 4).
    flow = DesignFlow(circuit)
    architecture = flow.design(max_four_qubit_buses=1)
    print()
    print(render_architecture(architecture))

    # 4. Yield of the generated design vs the IBM baseline.
    simulator = YieldSimulator(trials=10_000, seed=7)
    baseline = ibm_16q_2x8(use_four_qubit_buses=False)
    ours_yield = simulator.estimate(architecture).yield_rate
    baseline_yield = simulator.estimate(baseline).yield_rate
    print(f"\nyield: ours = {ours_yield:.4f}, IBM 16Q baseline = {baseline_yield:.4f} "
          f"({ours_yield / max(baseline_yield, 1e-6):.1f}x)")

    # 5. Performance (total post-mapping gate count).
    ours_gates = route_circuit(circuit, architecture, profile).total_gates
    baseline_gates = route_circuit(circuit, baseline, profile).total_gates
    print(f"post-mapping gates: ours = {ours_gates}, IBM 16Q baseline = {baseline_gates} "
          f"({(baseline_gates - ours_gates) / baseline_gates:+.1%} change)")


if __name__ == "__main__":
    main()
