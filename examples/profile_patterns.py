#!/usr/bin/env python3
"""Reproduce Figure 5: contrasting two-qubit gate patterns across programs.

The paper motivates application-specific design by showing that different
programs have very different coupling strength matrices: the UCCSD VQE
ansatz concentrates its two-qubit gates on a chain of neighbouring
qubits, while a reversible-arithmetic function clusters them between an
input group and an output group.  This example profiles both programs
(plus the uniform QFT and the pure-chain Ising model for contrast),
prints their matrices, and classifies their patterns.

Run:  python examples/profile_patterns.py
"""

from repro.benchmarks import get_benchmark
from repro.profiling import classify_pattern, profile_circuit
from repro.visualization import render_coupling_matrix

FIGURE5_PROGRAMS = ("UCCSD_ansatz_8", "misex1_241")
EXTRA_PROGRAMS = ("qft_16", "ising_model_16")


def describe(name: str) -> None:
    circuit = get_benchmark(name)
    profile = profile_circuit(circuit)
    pattern = classify_pattern(profile)
    print(f"=== {name} ({circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates) ===")
    print(f"pattern: {pattern.value}")
    print(render_coupling_matrix(profile.strength_matrix))
    strongest = max(profile.coupled_pairs(), key=lambda pair: profile.strength(*pair))
    print(f"strongest pair: {strongest} with {profile.strength(*strongest)} gates")
    print(f"top of coupling degree list: {profile.degree_list[:3]}")
    print()


def main() -> None:
    print("Figure 5 programs (distinct patterns motivate application-specific design):\n")
    for name in FIGURE5_PROGRAMS:
        describe(name)
    print("Additional contrasting patterns:\n")
    for name in EXTRA_PROGRAMS:
        describe(name)


if __name__ == "__main__":
    main()
