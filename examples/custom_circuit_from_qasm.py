#!/usr/bin/env python3
"""Design an application-specific processor for your own OpenQASM 2.0 circuit.

The paper's design flow is program-agnostic: anything expressible as a
CNOT + single-qubit circuit can drive it.  This example shows the full
path for a user-supplied program: parse OpenQASM 2.0 text, profile it,
generate the architecture series, and report the yield/performance
trade-off — exactly what `repro-design evaluate` does for the built-in
benchmarks.

Run:  python examples/custom_circuit_from_qasm.py [path/to/circuit.qasm]

Without an argument, a small built-in Toffoli-adder style circuit is used.
"""

import sys

from repro.circuit import circuit_from_qasm
from repro.collision import YieldSimulator, estimate_yield_analytic
from repro.design import DesignFlow
from repro.mapping import route_circuit
from repro.profiling import classify_pattern, profile_circuit
from repro.visualization import render_architecture, render_coupling_matrix

#: A small reversible adder fragment (Toffoli gates are decomposed on import).
DEFAULT_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q[0];
h q[1];
ccx q[0],q[1],q[4];
cx q[0],q[1];
ccx q[1],q[2],q[4];
cx q[1],q[2];
ccx q[2],q[3],q[5];
cx q[2],q[3];
cx q[4],q[5];
measure q[4] -> c[4];
measure q[5] -> c[5];
"""


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], encoding="utf-8") as handle:
            text = handle.read()
        circuit = circuit_from_qasm(text, name=sys.argv[1])
    else:
        circuit = circuit_from_qasm(DEFAULT_QASM, name="toffoli_adder_fragment")

    profile = profile_circuit(circuit)
    print(f"circuit: {circuit.name} -- {circuit.num_qubits} qubits, {len(circuit)} gates, "
          f"{circuit.num_two_qubit_gates} two-qubit gates")
    print(f"coupling pattern: {classify_pattern(profile).value}")
    print(render_coupling_matrix(profile.strength_matrix))
    print()

    flow = DesignFlow(circuit)
    simulator = YieldSimulator(trials=10_000, seed=7)
    print(f"{'architecture':<40} {'conn':>4} {'yield (MC)':>11} {'yield (analytic)':>17} "
          f"{'total gates':>11}")
    for architecture in flow.design_series():
        monte_carlo = simulator.estimate(architecture).yield_rate
        analytic = estimate_yield_analytic(architecture).yield_rate
        gates = route_circuit(circuit, architecture, profile).total_gates
        print(f"{architecture.name:<40} {architecture.num_connections():>4} "
              f"{monte_carlo:>11.4f} {analytic:>17.4f} {gates:>11}")
    print()
    print(render_architecture(flow.design(0)))


if __name__ == "__main__":
    main()
