#!/usr/bin/env python3
"""Reproduce Figure 10 and the Section 5.3/5.4 headline numbers.

This is the paper's full evaluation: every benchmark is evaluated under
all five experiment configurations, the per-benchmark yield vs
performance series are printed (with an ASCII rendering of each Figure 10
subfigure), and the aggregate comparisons are summarized:

* most simplified design vs IBM 16Q baseline (paper: ~4x yield, ~7.7% perf);
* most simplified design vs IBM 16Q + four 4-qubit buses (paper: >100x yield);
* maximally connected design vs IBM 20Q + six 4-qubit buses (paper: >1000x yield);
* layout subroutine alone (paper: ~35x yield on average);
* frequency allocation subroutine (paper: ~10x yield on average).

The full run with the paper's 10,000-trial Monte Carlo takes several
minutes; pass ``--fast`` to use reduced settings for a quick look, or
name specific benchmarks on the command line.

Run:  python examples/full_evaluation.py [--fast] [benchmark ...]
"""

import argparse

from repro.benchmarks import BENCHMARK_NAMES, benchmark_suite
from repro.evaluation import (
    EvaluationSettings,
    evaluate_suite,
    frequency_allocation_gain,
    headline_comparisons,
    layout_effect_gain,
)
from repro.evaluation.analysis import geometric_mean_yield_ratio, mean_performance_change
from repro.evaluation.figures import format_figure10_table
from repro.visualization import render_pareto_scatter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", default=list(BENCHMARK_NAMES))
    parser.add_argument("--fast", action="store_true",
                        help="reduced Monte Carlo settings for a quick run")
    parser.add_argument("--plot", action="store_true", help="print ASCII Pareto plots")
    args = parser.parse_args()

    if args.fast:
        settings = EvaluationSettings(
            yield_trials=2000, frequency_local_trials=500, random_bus_seeds=(1, 2)
        )
    else:
        settings = EvaluationSettings()

    circuits = benchmark_suite(args.benchmarks)
    results = evaluate_suite(circuits, settings=settings)

    for result in results.values():
        print(format_figure10_table(result))
        if args.plot:
            print()
            print(render_pareto_scatter(result))
        print()

    trials = settings.yield_trials
    headline = headline_comparisons(results, trials=trials)
    print("=== Section 5.3 headline comparisons (geometric-mean yield ratio, mean perf change) ===")
    for key, label, paper in (
        ("simplest_vs_ibm1", "simplest eff-full vs IBM 16Q 2Q-bus", "~4x yield, ~-7.7% gates"),
        ("simplest_vs_ibm2", "simplest eff-full vs IBM 16Q 4Q-bus", ">100x yield, <+1% gates"),
        ("max_vs_ibm4", "max-bus eff-full vs IBM 20Q 4Q-bus", ">1000x yield, ~+3.5% gates"),
    ):
        comparisons = headline[key]
        if not comparisons:
            continue
        print(f"{label:<45} yield x{geometric_mean_yield_ratio(comparisons):8.1f}   "
              f"gates {mean_performance_change(comparisons):+6.1%}   (paper: {paper})")

    layout = layout_effect_gain(results, trials=trials)
    frequency = frequency_allocation_gain(results, trials=trials)
    print("\n=== Section 5.4 subroutine breakdowns ===")
    if layout:
        print(f"{'layout design only vs IBM baseline (2)':<45} "
              f"yield x{geometric_mean_yield_ratio(layout):8.1f}   "
              f"gates {mean_performance_change(layout):+6.1%}   (paper: ~35x)")
    if frequency:
        print(f"{'optimized frequencies vs 5-frequency scheme':<45} "
              f"yield x{geometric_mean_yield_ratio(frequency):8.1f}   "
              f"gates {mean_performance_change(frequency):+6.1%}   (paper: ~10x)")


if __name__ == "__main__":
    main()
