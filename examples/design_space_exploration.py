#!/usr/bin/env python3
"""Explore the yield/performance trade-off controlled by the 4-qubit bus count.

Section 5.3 of the paper highlights *controllability*: by varying only
the number of 4-qubit buses, the design flow produces a series of
architectures that trade roughly 10x-50x of yield for 10%-33% of
performance.  This example generates the full series for one benchmark,
evaluates both axes for every member, and prints the trade-off table
together with the ablation variants (random bus selection and the
5-frequency scheme).

Run:  python examples/design_space_exploration.py [benchmark]
"""

import sys

from repro.benchmarks import get_benchmark
from repro.collision import YieldSimulator
from repro.design import DesignFlow, DesignOptions
from repro.design.flow import BusStrategy, FrequencyStrategy
from repro.mapping import route_circuit
from repro.profiling import profile_circuit


def evaluate_series(label: str, architectures, circuit, profile, simulator) -> None:
    print(f"--- {label} ---")
    print(f"{'architecture':<42} {'conn':>4} {'4Qbus':>5} {'yield':>10} {'gates':>7}")
    for architecture in architectures:
        yield_rate = simulator.estimate(architecture).yield_rate
        gates = route_circuit(circuit, architecture, profile).total_gates
        print(f"{architecture.name:<42} {architecture.num_connections():>4} "
              f"{len(architecture.four_qubit_buses()):>5} {yield_rate:>10.2e} {gates:>7}")
    print()


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "z4_268"
    circuit = get_benchmark(benchmark)
    profile = profile_circuit(circuit)
    simulator = YieldSimulator(trials=10_000, seed=7)

    print(f"benchmark: {circuit.name} ({circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates)\n")

    full_flow = DesignFlow(circuit)
    evaluate_series("eff-full: filtered-weight buses + optimized frequencies",
                    full_flow.design_series(), circuit, profile, simulator)

    random_flow = DesignFlow(
        circuit, DesignOptions(bus_strategy=BusStrategy.RANDOM, random_bus_seed=3)
    )
    evaluate_series("eff-rd-bus: random bus selection (seed 3)",
                    random_flow.design_series(), circuit, profile, simulator)

    five_freq_flow = DesignFlow(
        circuit, DesignOptions(frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY)
    )
    evaluate_series("eff-5-freq: IBM 5-frequency scheme",
                    five_freq_flow.design_series(), circuit, profile, simulator)


if __name__ == "__main__":
    main()
