"""Section 5.4.1 — effect of the layout design subroutine.

Compares ``eff-layout-only`` (optimized layout, IBM connection styles and
5-frequency scheme) against the ``ibm`` baselines: the paper reports that
the layout-optimized designs deliver comparable or better performance
with ~35x average yield improvement over baseline (2), using far fewer
hardware resources.
"""

from repro.benchmarks import benchmark_suite
from repro.evaluation import ExperimentConfig, evaluate_suite, layout_effect_gain
from repro.evaluation.analysis import geometric_mean_yield_ratio, mean_performance_change

from _bench_utils import active_benchmarks, active_settings, write_result

CONFIGS = (ExperimentConfig.IBM, ExperimentConfig.EFF_LAYOUT_ONLY)


def test_section541_layout_effect(benchmark):
    settings = active_settings()
    circuits = benchmark_suite(list(active_benchmarks()))

    results = benchmark.pedantic(
        evaluate_suite,
        args=(circuits,),
        kwargs={"configs": CONFIGS, "settings": settings},
        rounds=1,
        iterations=1,
    )

    comparisons = layout_effect_gain(results, trials=settings.yield_trials)
    lines = ["Section 5.4.1 -- layout design effect "
             "(eff-layout-only 2Q-bus vs ibm (2) 16Q 4Qbus)", ""]
    lines.append(f"{'benchmark':<18} {'ours yield':>12} {'ibm(2) yield':>12} "
                 f"{'yield ratio':>12} {'gates change':>13} {'ours conn':>9} {'ibm conn':>9}")
    for comparison in comparisons:
        lines.append(
            f"{comparison.benchmark:<18} {comparison.ours.yield_rate:>12.2e} "
            f"{comparison.baseline.yield_rate:>12.2e} {comparison.yield_ratio:>12.1f} "
            f"{comparison.performance_change:>+12.1%} {comparison.ours.num_connections:>9} "
            f"{comparison.baseline.num_connections:>9}"
        )
    ratio = geometric_mean_yield_ratio(comparisons)
    change = mean_performance_change(comparisons)
    lines.append("")
    lines.append(f"geometric-mean yield improvement: {ratio:.1f}x (paper: ~35x)")
    lines.append(f"mean gate-count change: {change:+.1%} (paper: comparable or better)")
    write_result("table_section541_layout", "\n".join(lines))

    # The layout subroutine alone must already deliver a large yield gain
    # while using fewer connections than the baseline.
    assert ratio > 10.0
    for comparison in comparisons:
        assert comparison.ours.num_connections < comparison.baseline.num_connections
