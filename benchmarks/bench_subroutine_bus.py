"""Section 5.4.2 — quality of the filtered-weight 4-qubit bus selection.

Compares ``eff-full`` (Algorithm 2) against the ``eff-rd-bus`` random
sample cloud at matched bus counts.  The paper's finding: the weight-based
selection sits at or near the performance upper bound of the random
samples for the same yield cost — except for ``qft``, whose uniform
coupling pattern makes every square equivalent, so weight-based selection
degenerates to random selection.
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.evaluation import ExperimentConfig, evaluate_benchmark

from _bench_utils import active_settings, full_run_requested, write_result

CONFIGS = (ExperimentConfig.EFF_FULL, ExperimentConfig.EFF_RD_BUS)

BUS_BENCHMARKS = ("z4_268", "adr4_197", "qft_16") if not full_run_requested() else (
    "z4_268", "adr4_197", "dc1_220", "cm152a_212", "misex1_241", "qft_16"
)


@pytest.mark.parametrize("benchmark_name", BUS_BENCHMARKS)
def test_section542_bus_selection_quality(benchmark, benchmark_name):
    settings = active_settings()
    circuit = get_benchmark(benchmark_name)

    result = benchmark.pedantic(
        evaluate_benchmark,
        args=(circuit,),
        kwargs={"configs": CONFIGS, "settings": settings},
        rounds=1,
        iterations=1,
    )

    eff = {p.num_four_qubit_buses: p for p in result.by_config(ExperimentConfig.EFF_FULL)}
    random_points = result.by_config(ExperimentConfig.EFF_RD_BUS)

    lines = [f"Section 5.4.2 -- bus selection quality ({benchmark_name})", ""]
    lines.append(f"{'4Q buses':>8} {'eff-full gates':>14} {'random gates (min..max)':>24} "
                 f"{'eff-full yield':>14}")
    wins = 0
    comparisons = 0
    for buses, point in sorted(eff.items()):
        if buses == 0:
            continue
        matched = [p for p in random_points if p.num_four_qubit_buses == buses]
        if not matched:
            continue
        comparisons += 1
        best_random = min(p.total_gates for p in matched)
        worst_random = max(p.total_gates for p in matched)
        if point.total_gates <= best_random:
            wins += 1
        lines.append(f"{buses:>8} {point.total_gates:>14} "
                     f"{best_random:>11} .. {worst_random:<10} {point.yield_rate:>14.2e}")
    lines.append("")
    lines.append(f"eff-full matches or beats the best random sample in {wins}/{comparisons} "
                 "bus counts")
    write_result(f"table_section542_bus_{benchmark_name}", "\n".join(lines))

    if comparisons:
        if benchmark_name.startswith("qft"):
            # Uniform pattern: weight-based selection is no better than random
            # by construction; just require it not to be dramatically worse.
            assert all(
                eff[b].total_gates <= max(
                    p.total_gates for p in random_points if p.num_four_qubit_buses == b
                ) * 1.1
                for b in eff if b > 0 and any(
                    p.num_four_qubit_buses == b for p in random_points
                )
            )
        else:
            # Structured patterns: the filtered-weight choice should match the
            # best random sample at least half of the time.
            assert wins * 2 >= comparisons
