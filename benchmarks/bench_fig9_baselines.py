"""Figure 9 — IBM's general-purpose baseline designs and their yield.

Regenerates the four baseline architectures (16Q 2x8 and 20Q 4x5, with
2-qubit buses only or the maximum number of 4-qubit buses, all using the
5-frequency scheme) and reports their hardware resources and Monte Carlo
yield at the paper's sigma = 30 MHz.  The benchmark timing measures the
yield simulator on the largest baseline.
"""

from repro.collision import YieldSimulator
from repro.hardware import ibm_baselines
from repro.visualization import render_architecture

from _bench_utils import active_settings, write_result


def test_fig9_ibm_baselines(benchmark):
    settings = active_settings()
    simulator = YieldSimulator(trials=settings.yield_trials, seed=7)
    baselines = ibm_baselines()

    # Benchmark the yield simulation of the densest baseline (design (4)).
    benchmark(simulator.estimate, baselines[4])

    lines = ["Figure 9 -- IBM baseline designs (5-frequency scheme, sigma = 30 MHz)", ""]
    lines.append(f"{'label':>5} {'architecture':<22} {'qubits':>6} {'connections':>11} "
                 f"{'4Q buses':>8} {'yield':>12}")
    for label, architecture in sorted(baselines.items()):
        estimate = simulator.estimate(architecture)
        lines.append(
            f"({label})  {architecture.name:<22} {architecture.num_qubits:>6} "
            f"{architecture.num_connections():>11} {len(architecture.four_qubit_buses()):>8} "
            f"{estimate.yield_rate:>12.2e}"
        )
    lines.append("")
    for label, architecture in sorted(baselines.items()):
        lines.append(render_architecture(architecture))
        lines.append("")

    # Figure 9 structural facts.
    assert baselines[1].num_connections() == 22
    assert len(baselines[2].four_qubit_buses()) == 4
    assert baselines[3].num_connections() == 31
    assert len(baselines[4].four_qubit_buses()) == 6

    # More connections always cost yield on the same chip size.
    sim = YieldSimulator(trials=settings.yield_trials, seed=7)
    assert sim.estimate(baselines[1]).yield_rate >= sim.estimate(baselines[2]).yield_rate
    assert sim.estimate(baselines[3]).yield_rate >= sim.estimate(baselines[4]).yield_rate

    write_result("fig9_ibm_baselines", "\n".join(lines))
