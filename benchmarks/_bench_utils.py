"""Helpers shared by the benchmark harness (result writing, settings)."""

from __future__ import annotations

import os
from pathlib import Path

from repro.evaluation import EvaluationSettings

RESULTS_DIR = Path(__file__).parent / "results"

#: Full-fidelity settings (the paper's configuration).
FULL_SETTINGS = EvaluationSettings(
    yield_trials=10_000,
    frequency_local_trials=2000,
    random_bus_seeds=(1, 2, 3, 4, 5),
)

#: Reduced settings used by default so the harness stays laptop-friendly.
QUICK_SETTINGS = EvaluationSettings(
    yield_trials=4000,
    frequency_local_trials=800,
    random_bus_seeds=(1, 2),
)

#: Benchmarks evaluated by default in the heavy Figure 10 sweep.
QUICK_BENCHMARKS = (
    "sym6_145",
    "UCCSD_ansatz_8",
    "z4_268",
    "dc1_220",
    "cm152a_212",
    "adr4_197",
    "ising_model_16",
    "qft_16",
)


def full_run_requested() -> bool:
    """True when the caller asked for the paper's full configuration."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def active_settings() -> EvaluationSettings:
    return FULL_SETTINGS if full_run_requested() else QUICK_SETTINGS


def active_benchmarks() -> tuple:
    from repro.benchmarks import BENCHMARK_NAMES

    return tuple(BENCHMARK_NAMES) if full_run_requested() else QUICK_BENCHMARKS


def write_result(name: str, text: str) -> Path:
    """Write a regenerated table to benchmarks/results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(text)
    return path
