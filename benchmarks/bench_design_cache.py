"""Design-cache benchmark: warm-session replay of the evaluation grid.

Regenerates the evidence for the persisted design-stage cache's claims on
a Figure 10 design-space-exploration grid:

* **Identity** — a *second session* (a fresh
  :class:`~repro.design.engine.DesignEngine`, as a new process would
  build) that warm-loads the persisted
  :class:`~repro.design.engine.DesignCache` file re-derives every
  architecture of the full evaluation grid **bit-identically**: same
  names, same selected squares, same coupling edges, and bit-identical
  frequency assignments.
* **Zero frequency searches** — the warm session runs **zero**
  Algorithm 3 Monte Carlo searches
  (:func:`~repro.design.frequency_allocation.allocation_call_count`
  stays at 0): every plan is served from the counts-only JSON file.
* **Speedup** — the warm session runs at least ``MIN_SPEEDUP`` times
  faster than the cold session that populated the cache (the remaining
  warm-path work is profiling, layout and bus selection — all cheap).

The cache file round-trips through the same machinery production uses
(atomic write, version validation, locked merge — see
:mod:`repro.persistence`), so the benchmark also records the file's size
and entry count to document that sweep-scale caches stay tiny.

Run styles:

* ``python benchmarks/bench_design_cache.py [--smoke] [--json PATH]`` —
  standalone; writes a text table to ``benchmarks/results/`` and a JSON
  record (default ``benchmarks/results/BENCH_design_cache.json``) for
  the CI perf-trajectory artifact.
* ``python -m pytest benchmarks/bench_design_cache.py`` — same run
  wrapped in a test with the identity/zero-search/speedup assertions.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro.benchmarks import get_benchmark
from repro.design import DesignCache, DesignEngine
from repro.design.frequency_allocation import (
    allocation_call_count,
    reset_allocation_call_count,
    reset_shared_caches,
)
from repro.evaluation.configs import ExperimentConfig, architectures_for_config

from _bench_utils import RESULTS_DIR, write_result

#: Minimum acceptable warm-session speedup over the cold session.
MIN_SPEEDUP = 5.0

#: Relaxed floor for shared CI runners (the JSON artifact records the
#: true ratio either way, so the perf trajectory catches slow drift).
CI_MIN_SPEEDUP = 2.5

#: The four design-flow configurations of the Figure 10 grid (the ``ibm``
#: baselines involve no design work and are excluded).
EFF_CONFIGS = (
    ExperimentConfig.EFF_FULL,
    ExperimentConfig.EFF_5_FREQ,
    ExperimentConfig.EFF_RD_BUS,
    ExperimentConfig.EFF_LAYOUT_ONLY,
)

SMOKE_BENCHMARKS = ("sym6_145", "z4_268", "adr4_197")
FULL_BENCHMARKS = SMOKE_BENCHMARKS + ("qft_16", "UCCSD_ansatz_8", "ising_model_16")

SMOKE_LOCAL_TRIALS = 800
FULL_LOCAL_TRIALS = 2000
SMOKE_SEEDS = (1, 2, 3)
FULL_SEEDS = (1, 2, 3, 4, 5)


def _fingerprint(architecture) -> Tuple:
    """Everything the identity check compares, per architecture."""
    return (
        architecture.name,
        tuple(sorted(bus.square.origin for bus in architecture.four_qubit_buses())),
        tuple(sorted(architecture.coupling_edges())),
        tuple(sorted(architecture.frequencies.items())),
    )


def _generate_grid(benchmarks, seeds, local_trials, engine):
    return {
        (name, config.value): architectures_for_config(
            get_benchmark(name), config,
            random_bus_seeds=seeds,
            frequency_local_trials=local_trials,
            engine=engine,
        )
        for name in benchmarks
        for config in EFF_CONFIGS
    }


def run_bench(smoke: bool = False, repeats: int = 2) -> dict:
    """Run the cold and warm sessions; return the comparison record.

    The *cold* session is a fresh engine generating the full grid and
    persisting its frequency plans; the *warm* session is a fresh engine
    — what a brand-new process would construct — that loads the file and
    regenerates the same grid.  Each session style is timed best-of
    ``repeats``; the identity and zero-search checks run on every
    repeat.
    """
    benchmarks = SMOKE_BENCHMARKS if smoke else FULL_BENCHMARKS
    seeds = SMOKE_SEEDS if smoke else FULL_SEEDS
    local_trials = SMOKE_LOCAL_TRIALS if smoke else FULL_LOCAL_TRIALS

    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "design_cache.json"

        cold_time = float("inf")
        cold_grid = None
        cold_allocations = saved_entries = 0
        for _repeat in range(repeats):
            cache_path.unlink(missing_ok=True)
            # Unbounded frequency cache, mirroring the production warm path
            # (design_engine_for): the zero-search guarantee must hold
            # however large the grid grows, so the sessions must not shed
            # plans to an LRU bound before persisting or after loading.
            engine = DesignEngine(frequency_cache=DesignCache(max_entries=None))
            # A cold session means a fresh process: the allocator's
            # process-wide ranking/noise caches (PR 5) must not leak
            # across the benchmark's repeated "sessions".
            reset_shared_caches()
            reset_allocation_call_count()
            start = time.perf_counter()
            grid = _generate_grid(benchmarks, seeds, local_trials, engine)
            saved_entries = engine.frequency_cache.merge_save(cache_path)
            elapsed = time.perf_counter() - start
            if elapsed < cold_time:
                cold_time = elapsed
            cold_allocations = allocation_call_count()
            if cold_grid is None:
                cold_grid = grid
        cache_bytes = cache_path.stat().st_size

        warm_time = float("inf")
        warm_grid = None
        warm_allocations = loaded_entries = 0
        for _repeat in range(repeats):
            # A new process's engine: empty stages, unbounded like production.
            engine = DesignEngine(frequency_cache=DesignCache(max_entries=None))
            reset_allocation_call_count()
            start = time.perf_counter()
            loaded_entries = engine.frequency_cache.load(cache_path)
            grid = _generate_grid(benchmarks, seeds, local_trials, engine)
            elapsed = time.perf_counter() - start
            warm_allocations = max(warm_allocations, allocation_call_count())
            if elapsed < warm_time:
                warm_time = elapsed
            if warm_grid is None:
                warm_grid = grid

    rows = []
    all_identical = True
    for name in benchmarks:
        for config in EFF_CONFIGS:
            cold = cold_grid[(name, config.value)]
            warm = warm_grid[(name, config.value)]
            identical = (
                len(cold) == len(warm)
                and all(_fingerprint(a) == _fingerprint(b) for a, b in zip(cold, warm))
            )
            all_identical &= identical
            rows.append({
                "benchmark": name,
                "config": config.value,
                "architectures": len(warm),
                "identical": identical,
            })

    return {
        "bench": "design_cache",
        "smoke": smoke,
        "repeats": repeats,
        "benchmarks": list(benchmarks),
        "random_bus_seeds": list(seeds),
        "frequency_local_trials": local_trials,
        "cache_entries": saved_entries,
        "cache_loaded_entries": loaded_entries,
        "cache_file_bytes": cache_bytes,
        "cold_session_time_s": round(cold_time, 4),
        "warm_session_time_s": round(warm_time, 6),
        "warm_speedup": round(cold_time / warm_time, 1) if warm_time else None,
        "cold_allocation_calls": cold_allocations,
        "warm_allocation_calls": warm_allocations,
        "all_identical": all_identical,
        "rows": rows,
    }


def render_table(record: dict) -> str:
    lines = [
        "Warm-session design cache vs cold session "
        f"({len(record['benchmarks'])} benchmarks x {len(EFF_CONFIGS)} configurations, "
        f"best of {record['repeats']})",
        "",
        f"{'benchmark':<16} {'configuration':<16} {'architectures':>13} {'identical':>9}",
    ]
    for row in record["rows"]:
        lines.append(
            f"{row['benchmark']:<16} {row['config']:<16} "
            f"{row['architectures']:>13} {str(row['identical']):>9}"
        )
    lines += [
        "",
        f"cold session (generate + persist) : {record['cold_session_time_s'] * 1e3:9.1f} ms "
        f"({record['cold_allocation_calls']} Algorithm 3 searches)",
        f"warm session (load + regenerate)  : {record['warm_session_time_s'] * 1e3:9.2f} ms "
        f"({record['warm_allocation_calls']} Algorithm 3 searches)",
        f"warm speedup                      : {record['warm_speedup']}x",
        f"cache file: {record['cache_entries']} plans, "
        f"{record['cache_file_bytes']} bytes",
    ]
    return "\n".join(lines)


def check_record(record: dict, min_speedup: float = MIN_SPEEDUP) -> None:
    """The acceptance assertions shared by the test and script entry points."""
    broken = [row for row in record["rows"] if not row["identical"]]
    assert not broken, f"warm-session architectures differ from the cold session: {broken}"
    assert record["warm_allocation_calls"] == 0, (
        f"warm session ran {record['warm_allocation_calls']} Algorithm 3 "
        "Monte Carlo searches; a populated design cache must serve them all"
    )
    assert record["cold_allocation_calls"] > 0, (
        "cold session ran no Algorithm 3 searches — the benchmark measured nothing"
    )
    assert record["cache_loaded_entries"] == record["cache_entries"], (
        "the warm session failed to load every persisted plan"
    )
    assert record["warm_speedup"] >= min_speedup, (
        f"warm-session speedup {record['warm_speedup']:.2f}x "
        f"below the {min_speedup}x bar"
    )


def _write_json(record: dict, path: Optional[Path]) -> Path:
    path = path or (RESULTS_DIR / "BENCH_design_cache.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def test_design_cache_warm_session():
    """Pytest entry: smoke grid, same assertions as the CI smoke job."""
    record = run_bench(smoke=True)
    write_result("table_design_cache", render_table(record))
    _write_json(record, None)
    check_record(record, min_speedup=CI_MIN_SPEEDUP)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid (CI smoke job)")
    parser.add_argument("--json", type=Path, default=None,
                        help="JSON output path "
                             "(default benchmarks/results/BENCH_design_cache.json)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of repeats per session style (default 2)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help=f"speedup assertion floor (default {MIN_SPEEDUP}; "
                             f"CI uses {CI_MIN_SPEEDUP} to tolerate noisy shared runners)")
    args = parser.parse_args(argv)
    record = run_bench(smoke=args.smoke, repeats=args.repeats)
    write_result("table_design_cache", render_table(record))
    json_path = _write_json(record, args.json)
    print(render_table(record))
    print(f"\nJSON record: {json_path}")
    check_record(record, min_speedup=args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
