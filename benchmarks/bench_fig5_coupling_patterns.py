"""Figure 5 — qubit coupling strength patterns for two contrasting programs.

Regenerates the coupling strength matrices of ``UCCSD_ansatz_8`` and
``misex1_241`` and verifies the two observations the paper draws from
them: (1) pairwise two-qubit gate counts vary dramatically within one
program, and (2) different program families exhibit different patterns
(chain-dominated vs clustered).  The benchmark timing measures the
profiler itself.
"""

import numpy as np

from repro.benchmarks import get_benchmark
from repro.evaluation.figures import FIGURE5_BENCHMARKS, figure5_data
from repro.profiling import classify_pattern, profile_circuit
from repro.visualization import render_coupling_matrix

from _bench_utils import write_result


def test_fig5_coupling_patterns(benchmark):
    matrices = benchmark(figure5_data, FIGURE5_BENCHMARKS)

    lines = ["Figure 5 -- coupling strength matrices", ""]
    for name, matrix in matrices.items():
        circuit = get_benchmark(name)
        profile = profile_circuit(circuit)
        pattern = classify_pattern(profile)
        weights = matrix[np.triu_indices(matrix.shape[0], k=1)]
        nonzero = weights[weights > 0]
        lines.append(f"== {name} ({circuit.num_qubits} qubits, pattern: {pattern.value}) ==")
        lines.append(render_coupling_matrix(matrix))
        lines.append(
            f"max pair weight = {int(nonzero.max())}, median = {float(np.median(nonzero)):.1f}, "
            f"coupled pairs = {nonzero.size}/{weights.size}"
        )
        lines.append("")

    # Observation 1: weights vary dramatically inside each program (the
    # strongest pair carries several times more gates than the weakest
    # coupled pair).
    for matrix in matrices.values():
        weights = matrix[np.triu_indices(matrix.shape[0], k=1)]
        nonzero = weights[weights > 0]
        assert nonzero.max() >= 4 * nonzero.min()

    # Observation 2: UCCSD is chain-dominated (adjacent weights dwarf the rest).
    uccsd = matrices["UCCSD_ansatz_8"]
    adjacent = min(uccsd[i, i + 1] for i in range(uccsd.shape[0] - 1))
    off_chain = max(
        uccsd[i, j] for i in range(uccsd.shape[0]) for j in range(i + 2, uccsd.shape[0])
    )
    lines.append(f"UCCSD chain check: min adjacent weight {int(adjacent)} > "
                 f"max off-chain weight {int(off_chain)}")
    assert adjacent > off_chain

    write_result("fig5_coupling_patterns", "\n".join(lines))
