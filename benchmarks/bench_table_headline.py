"""Section 5.3 headline numbers — optimality and controllability.

Regenerates the aggregate comparisons the paper quotes in Section 5.3:

* the most simplified generated design vs IBM baseline (1)
  (paper: ~7.7% better performance and ~4x better yield);
* the most simplified generated design vs IBM baseline (2)
  (paper: >100x yield with <1% performance loss);
* the maximally connected generated design vs IBM baseline (4)
  (paper: >1000x yield on average with ~3.5% performance loss);
* the controllability range of the trade-off (paper: ~10x-50x yield for
  10%-33% performance).

A subset of benchmarks is used by default (REPRO_BENCH_FULL=1 for all
twelve).  Absolute ratios depend on the synthetic benchmark substitutes
and the conservative both-orientation collision checking, so the
assertions target the direction and order of magnitude rather than the
exact paper values.
"""

from repro.benchmarks import benchmark_suite
from repro.evaluation import ExperimentConfig, evaluate_suite, headline_comparisons
from repro.evaluation.analysis import geometric_mean_yield_ratio, mean_performance_change

from _bench_utils import active_benchmarks, active_settings, write_result

CONFIGS = (ExperimentConfig.IBM, ExperimentConfig.EFF_FULL)


def test_section53_headline_numbers(benchmark):
    settings = active_settings()
    circuits = benchmark_suite(list(active_benchmarks()))

    results = benchmark.pedantic(
        evaluate_suite,
        args=(circuits,),
        kwargs={"configs": CONFIGS, "settings": settings},
        rounds=1,
        iterations=1,
    )

    headline = headline_comparisons(results, trials=settings.yield_trials)
    lines = ["Section 5.3 -- headline comparisons", ""]
    lines.append(f"{'comparison':<40} {'yield ratio (geo-mean)':>22} {'gate-count change':>18}")
    summary = {}
    for key, label in (
        ("simplest_vs_ibm1", "simplest eff-full vs ibm (1) 16Q 2Qbus"),
        ("simplest_vs_ibm2", "simplest eff-full vs ibm (2) 16Q 4Qbus"),
        ("max_vs_ibm4", "max-bus eff-full vs ibm (4) 20Q 4Qbus"),
    ):
        comparisons = headline[key]
        ratio = geometric_mean_yield_ratio(comparisons)
        change = mean_performance_change(comparisons)
        summary[key] = (ratio, change)
        lines.append(f"{label:<40} {ratio:>22.1f} {change:>+17.1%}")
    lines.append("")
    lines.append("per-benchmark detail:")
    for key in ("simplest_vs_ibm1", "simplest_vs_ibm2", "max_vs_ibm4"):
        for comparison in headline[key]:
            lines.append(
                f"  {key:<18} {comparison.benchmark:<16} yield x{comparison.yield_ratio:<10.1f} "
                f"gates {comparison.performance_change:+.1%}"
            )
    write_result("table_section53_headline", "\n".join(lines))

    # Directional checks mirroring the paper's claims.  The baseline (2) and
    # (4) yields are so low that their Monte Carlo estimates are often zero;
    # ratios then use a floor of one success over the trial count, so the
    # measurable ratio is bounded by trials * our_yield and the paper's
    # ">100x"/">1000x" statements can only be confirmed as lower bounds here.
    assert summary["simplest_vs_ibm1"][0] > 1.0          # better yield than baseline (1)
    assert summary["simplest_vs_ibm2"][0] > 50.0         # >>x vs baseline (2), floor-limited
    assert summary["max_vs_ibm4"][0] > 5.0               # >>x vs baseline (4), floor-limited
    assert summary["max_vs_ibm4"][1] < 0.25              # modest performance cost


def test_section53_controllability(benchmark):
    """Trade-off range available by varying the number of 4-qubit buses."""
    from repro.benchmarks import get_benchmark
    from repro.collision import YieldSimulator
    from repro.design import DesignFlow, DesignOptions
    from repro.mapping import route_circuit
    from repro.profiling import profile_circuit

    settings = active_settings()
    circuit = get_benchmark("z4_268")
    profile = profile_circuit(circuit)
    flow = DesignFlow(circuit, DesignOptions(local_trials=settings.frequency_local_trials))
    simulator = YieldSimulator(trials=settings.yield_trials, seed=7)

    series = benchmark.pedantic(flow.design_series, rounds=1, iterations=1)

    rows = []
    for architecture in series:
        yield_rate = simulator.estimate(architecture).yield_rate
        gates = route_circuit(circuit, architecture, profile).total_gates
        rows.append((len(architecture.four_qubit_buses()), yield_rate, gates))

    lines = ["Section 5.3 -- controllability of the yield/performance trade-off (z4_268)", ""]
    lines.append(f"{'4Q buses':>8} {'yield':>12} {'total gates':>12}")
    for buses, yield_rate, gates in rows:
        lines.append(f"{buses:>8} {yield_rate:>12.2e} {gates:>12}")
    first, last = rows[0], rows[-1]
    if last[1] > 0:
        lines.append("")
        lines.append(f"trade-off span: {first[1] / max(last[1], 1e-12):.1f}x yield for "
                     f"{(first[2] - last[2]) / first[2]:.1%} gate-count reduction")
    write_result("table_section53_controllability", "\n".join(lines))

    assert rows[0][1] >= rows[-1][1]       # yield falls as buses are added
    assert min(r[2] for r in rows) < rows[0][2]  # performance improves somewhere
