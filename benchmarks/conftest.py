"""Shared fixtures of the benchmark harness.

Every bench regenerates one table or figure of the paper.  The Monte
Carlo and design-flow settings default to a reduced-but-representative
configuration so that ``pytest benchmarks/ --benchmark-only`` finishes in
a few minutes on a laptop; set the environment variable
``REPRO_BENCH_FULL=1`` to run with the paper's full settings (10,000-trial
yield simulation, all twelve benchmarks, five random-bus seeds).

Each bench also writes its regenerated table to
``benchmarks/results/<name>.txt`` so the numbers can be inspected and
copied into EXPERIMENTS.md after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_utils import RESULTS_DIR, active_benchmarks, active_settings


@pytest.fixture(scope="session")
def evaluation_settings():
    return active_settings()


@pytest.fixture(scope="session")
def figure10_benchmarks() -> tuple:
    return active_benchmarks()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
