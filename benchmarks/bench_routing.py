"""Routing engine benchmark: incremental SABRE vs the pre-refactor router.

Regenerates the evidence for the routing overhaul's two claims on the
Figure 10 evaluation grid (benchmark x architecture):

* **Speedup** — the :class:`~repro.mapping.engine.RoutingEngine`
  (incremental numpy candidate scoring, shared per-architecture state,
  linear-time verification) routes the grid at least ``MIN_SPEEDUP``
  times faster than the pre-refactor pipeline, and memoized re-routes are
  effectively free.
* **Quality** — per-point swap counts are never worse than the
  pre-refactor router's, and the evaluation default (``passes=3``
  bidirectional refinement) never loses to the single forward pass on
  any point while strictly improving the grid total — the regression
  gate that pins the quality win behind the default flip.

The pre-refactor pipeline is frozen below (``_Reference*`` classes): the
original per-candidate dict-copy ``_choose_swap``, the original
front-layer machinery, and the original quadratic ``verify_routing``,
exactly as they stood before the routing overhaul.

Run styles:

* ``python benchmarks/bench_routing.py [--quick] [--json PATH]`` —
  standalone; writes a text table to ``benchmarks/results/`` and a JSON
  record (default ``benchmarks/results/BENCH_routing.json``) for the CI
  perf-trajectory artifact.
* ``python -m pytest benchmarks/bench_routing.py`` — same run wrapped in
  a test with the speedup/quality assertions.
"""

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from repro.benchmarks import get_benchmark
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDAG, DAGNode, ExecutionFrontier
from repro.circuit.gates import Gate
from repro.design import DesignFlow, DesignOptions
from repro.evaluation.experiment import DEFAULT_EVALUATION_ROUTING
from repro.hardware import ibm_16q_2x8, ibm_20q_4x5
from repro.mapping import DistanceMatrix, RoutingEngine, initial_mapping
from repro.profiling import profile_circuit

from _bench_utils import RESULTS_DIR, write_result

#: Minimum acceptable grid speedup of the new engine over the reference.
MIN_SPEEDUP = 3.0

#: Relaxed floor for shared CI runners, where noisy neighbours make
#: wall-clock ratios jitter; the JSON artifact still records the true
#: ratio, so the perf trajectory catches slow drift either way.
CI_MIN_SPEEDUP = 2.0

#: Benchmarks of the quick grid (CI); the full grid adds the rest.
QUICK_GRID_BENCHMARKS = ("sym6_145", "z4_268", "adr4_197", "qft_16", "ising_model_16")
FULL_GRID_BENCHMARKS = QUICK_GRID_BENCHMARKS + (
    "UCCSD_ansatz_8", "dc1_220", "cm152a_212",
)


# ---------------------------------------------------------------------------
# Frozen pre-refactor pipeline (the router as it stood before this PR).
# ---------------------------------------------------------------------------


class _ReferenceFrontier:
    """The original ExecutionFrontier: dict counters, sort-heavy look-ahead."""

    def __init__(self, dag: CircuitDAG) -> None:
        self._dag = dag
        self._remaining_preds: Dict[int, int] = {
            node.index: len(node.predecessors) for node in dag.nodes()
        }
        self._front: Set[int] = {i for i, count in self._remaining_preds.items() if count == 0}
        self._executed: Set[int] = set()

    @property
    def done(self) -> bool:
        return len(self._executed) == self._dag.num_nodes

    @property
    def num_executed(self) -> int:
        return len(self._executed)

    def front_nodes(self) -> List[DAGNode]:
        return [self._dag.node(i) for i in sorted(self._front)]

    def execute(self, index: int) -> List[DAGNode]:
        if index not in self._front:
            raise ValueError(f"gate {index} is not currently executable")
        self._front.discard(index)
        self._executed.add(index)
        unblocked: List[DAGNode] = []
        for succ in sorted(self._dag.node(index).successors):
            self._remaining_preds[succ] -= 1
            if self._remaining_preds[succ] == 0:
                self._front.add(succ)
                unblocked.append(self._dag.node(succ))
        return unblocked

    def lookahead_nodes(self, depth: int) -> List[DAGNode]:
        result: List[DAGNode] = []
        seen: Set[int] = set(self._front) | self._executed
        queue: List[int] = []
        for index in sorted(self._front):
            queue.extend(sorted(self._dag.node(index).successors))
        while queue and len(result) < depth:
            index = queue.pop(0)
            if index in seen:
                continue
            seen.add(index)
            node = self._dag.node(index)
            if node.gate.is_two_qubit:
                result.append(node)
            queue.extend(sorted(node.successors))
        return result


class _ReferenceRouter:
    """The original SabreRouter: per-candidate dict copies, Python-loop costs.

    Identical heuristic constants to the live router; only the machinery
    differs.  The one intentional fidelity point: the dead neutral-swap
    filter (a ``pass``) is preserved exactly as it was.
    """

    def __init__(self, architecture, parameters=None) -> None:
        from repro.mapping import SabreParameters

        self.architecture = architecture
        self.parameters = parameters or SabreParameters()
        self.distances = DistanceMatrix(architecture)
        self._coupled: Set[Tuple[int, int]] = set()
        for a, b in architecture.coupling_edges():
            self._coupled.add((a, b))
            self._coupled.add((b, a))

    def route(self, circuit: QuantumCircuit, initial: Dict[int, int]):
        dag = CircuitDAG(circuit)
        frontier = _ReferenceFrontier(dag)
        logical_to_physical = dict(initial)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}

        max_physical = max(self.architecture.qubits) + 1
        routed = QuantumCircuit(max_physical, name=f"{circuit.name}@{self.architecture.name}")
        num_swaps = 0
        swap_budget = self.parameters.max_swaps_per_gate * max(1, circuit.num_two_qubit_gates)
        decay: Dict[int, float] = {q: 1.0 for q in self.architecture.qubits}
        swaps_since_reset = 0
        swaps_since_progress = 0
        stall_threshold = int(3 * self.distances.diameter()) + 8

        while not frontier.done:
            executed_any = self._execute_ready_gates(frontier, logical_to_physical, routed)
            if frontier.done:
                break
            if executed_any:
                swaps_since_progress = 0
                continue
            blocked = [node for node in frontier.front_nodes() if node.gate.is_two_qubit]
            if not blocked:
                raise RuntimeError("router stalled with no blocked two-qubit gates")
            if swaps_since_progress >= stall_threshold:
                num_swaps += self._force_route(
                    blocked[0], logical_to_physical, physical_to_logical, routed
                )
                swaps_since_progress = 0
                continue
            swap = self._choose_swap(blocked, frontier, logical_to_physical, decay)
            if swap is None:
                raise RuntimeError("no useful SWAP found")
            self._apply_swap(swap, logical_to_physical, physical_to_logical, routed)
            num_swaps += 1
            swaps_since_reset += 1
            swaps_since_progress += 1
            for qubit in swap:
                decay[qubit] = decay.get(qubit, 1.0) + self.parameters.decay_factor
            if swaps_since_reset >= self.parameters.decay_reset_interval:
                decay = {q: 1.0 for q in self.architecture.qubits}
                swaps_since_reset = 0
            if num_swaps > swap_budget:
                raise RuntimeError(f"router exceeded swap budget ({swap_budget})")
        return routed, num_swaps, logical_to_physical

    def _force_route(self, node, logical_to_physical, physical_to_logical, routed) -> int:
        logical_a, logical_b = node.gate.qubits
        applied = 0
        while True:
            phys_a = logical_to_physical[logical_a]
            phys_b = logical_to_physical[logical_b]
            current = self.distances.distance(phys_a, phys_b)
            if current <= 1:
                return applied
            step = min(
                (n for n in self.architecture.neighbors(phys_a)
                 if self.distances.distance(n, phys_b) < current),
                default=None,
            )
            if step is None:
                raise RuntimeError("coupling graph is disconnected")
            self._apply_swap((phys_a, step), logical_to_physical, physical_to_logical, routed)
            applied += 1

    def _execute_ready_gates(self, frontier, logical_to_physical, routed) -> bool:
        executed_any = False
        progress = True
        while progress:
            progress = False
            for node in frontier.front_nodes():
                if self._is_executable(node.gate, logical_to_physical):
                    routed.append(node.gate.remap(logical_to_physical))
                    frontier.execute(node.index)
                    executed_any = True
                    progress = True
        return executed_any

    def _is_executable(self, gate: Gate, logical_to_physical) -> bool:
        if not gate.is_two_qubit:
            return True
        a, b = gate.qubits
        return (logical_to_physical[a], logical_to_physical[b]) in self._coupled

    def _choose_swap(self, blocked, frontier, logical_to_physical, decay):
        involved_physical = set()
        for node in blocked:
            for logical in node.gate.qubits:
                involved_physical.add(logical_to_physical[logical])
        candidates = [
            (a, b)
            for a, b in self.architecture.coupling_edges()
            if a in involved_physical or b in involved_physical
        ]
        if not candidates:
            return None
        extended = frontier.lookahead_nodes(self.parameters.extended_set_size)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        best_swap = None
        best_score = None
        baseline_front = self._front_cost(blocked, logical_to_physical)
        for swap in candidates:
            trial = dict(logical_to_physical)
            self._swap_mapping(swap, trial, physical_to_logical)
            front_cost = self._front_cost(blocked, trial)
            if front_cost >= baseline_front and len(candidates) > 1:
                # The pre-refactor dead filter, preserved verbatim.
                pass
            extended_cost = self._front_cost(extended, trial) if extended else 0.0
            score = front_cost / max(1, len(blocked))
            if extended:
                score += self.parameters.extended_set_weight * extended_cost / len(extended)
            score *= max(decay.get(swap[0], 1.0), decay.get(swap[1], 1.0))
            key = (score, swap)
            if best_score is None or key < best_score:
                best_score = key
                best_swap = swap
        return best_swap

    def _front_cost(self, nodes, logical_to_physical) -> float:
        cost = 0.0
        for node in nodes:
            if not node.gate.is_two_qubit:
                continue
            a, b = node.gate.qubits
            cost += self.distances.distance(logical_to_physical[a], logical_to_physical[b])
        return cost

    @staticmethod
    def _swap_mapping(swap, logical_to_physical, physical_to_logical) -> None:
        phys_a, phys_b = swap
        logical_a = physical_to_logical.get(phys_a)
        logical_b = physical_to_logical.get(phys_b)
        if logical_a is not None:
            logical_to_physical[logical_a] = phys_b
        if logical_b is not None:
            logical_to_physical[logical_b] = phys_a

    def _apply_swap(self, swap, logical_to_physical, physical_to_logical, routed) -> None:
        phys_a, phys_b = swap
        logical_a = physical_to_logical.get(phys_a)
        logical_b = physical_to_logical.get(phys_b)
        routed.append(Gate("swap", (phys_a, phys_b)))
        if logical_a is not None:
            logical_to_physical[logical_a] = phys_b
        if logical_b is not None:
            logical_to_physical[logical_b] = phys_a
        if logical_a is not None:
            physical_to_logical[phys_b] = logical_a
        else:
            physical_to_logical.pop(phys_b, None)
        if logical_b is not None:
            physical_to_logical[phys_a] = logical_b
        else:
            physical_to_logical.pop(phys_a, None)


def _reference_verify(logical, routed, architecture, initial) -> None:
    """The original quadratic verify_routing (front rescanned per gate)."""
    coupled = set()
    for a, b in architecture.coupling_edges():
        coupled.add((a, b))
        coupled.add((b, a))
    physical_to_logical = {p: l for l, p in initial.items()}
    frontier = _ReferenceFrontier(CircuitDAG(logical))
    for gate in routed.gates:
        if gate.is_two_qubit and tuple(gate.qubits) not in coupled:
            raise AssertionError(f"routed gate {gate} acts on uncoupled physical qubits")
        if gate.name == "swap":
            phys_a, phys_b = gate.qubits
            logical_a = physical_to_logical.get(phys_a)
            logical_b = physical_to_logical.get(phys_b)
            if logical_a is not None:
                physical_to_logical[phys_b] = logical_a
            else:
                physical_to_logical.pop(phys_b, None)
            if logical_b is not None:
                physical_to_logical[phys_a] = logical_b
            else:
                physical_to_logical.pop(phys_a, None)
            continue
        recovered = tuple(physical_to_logical[q] for q in gate.qubits)
        match = None
        for node in frontier.front_nodes():
            if node.gate.name == gate.name and node.gate.qubits == recovered \
                    and node.gate.params == gate.params:
                match = node
                break
        if match is None:
            raise AssertionError(f"routed gate {gate} does not match any executable gate")
        frontier.execute(match.index)
    if not frontier.done:
        raise AssertionError("routed circuit left logical gates unexecuted")


def _reference_route_point(circuit, architecture, profile) -> int:
    """The pre-refactor route_circuit pipeline for one evaluation point."""
    distances = DistanceMatrix(architecture)
    mapping = initial_mapping(profile, architecture, distances)
    router = _ReferenceRouter(architecture)
    routed, num_swaps, _final = router.route(circuit, mapping)
    _reference_verify(circuit, routed, architecture, mapping)
    return num_swaps


# ---------------------------------------------------------------------------
# The benchmark harness.
# ---------------------------------------------------------------------------


def _grid(quick: bool):
    """The evaluation-grid points: benchmark x (IBM baselines + one design)."""
    names = QUICK_GRID_BENCHMARKS if quick else FULL_GRID_BENCHMARKS
    points = []
    for name in names:
        circuit = get_benchmark(name)
        profile = profile_circuit(circuit)
        targets = {
            "ibm_16q_2x8_2qbus": ibm_16q_2x8(False),
            "ibm_16q_2x8_4qbus": ibm_16q_2x8(True),
            "ibm_20q_4x5_4qbus": ibm_20q_4x5(True),
            "eff_0_buses": DesignFlow(circuit, DesignOptions(local_trials=200)).design(0),
        }
        for arch_name, architecture in targets.items():
            if architecture.num_qubits >= circuit.num_qubits:
                points.append((name, arch_name, circuit, profile, architecture))
    return points


def _time_grid(route_point, points, repeats: int):
    """Best-of-``repeats`` wall time to route every grid point.

    ``route_point(circuit, profile, architecture)`` must return the swap
    count; the counts collected during the first repeat are returned so the
    grid is never routed an extra time just to harvest them.
    """
    best = float("inf")
    swaps = None
    for repeat in range(repeats):
        counts = {}
        start = time.perf_counter()
        for name, arch_name, circuit, profile, architecture in points:
            counts[(name, arch_name)] = route_point(circuit, profile, architecture)
        best = min(best, time.perf_counter() - start)
        if repeat == 0:
            swaps = counts
    return best, swaps


def run_bench(quick: bool = False, repeats: int = 3) -> dict:
    """Route the grid with both pipelines; return the comparison record."""
    points = _grid(quick)

    reference_time, reference_swaps = _time_grid(
        lambda circuit, profile, architecture: _reference_route_point(
            circuit, architecture, profile
        ),
        points,
        repeats,
    )

    # Cold timing: a fresh engine per repeat (no memoized results carried
    # over); the last repeat's engine serves the warm-pass measurement.
    engine_time = float("inf")
    engine = None
    engine_swaps = None
    for repeat in range(repeats):
        engine = RoutingEngine()
        counts = {}
        start = time.perf_counter()
        for name, arch_name, circuit, profile, architecture in points:
            result = engine.route(circuit, architecture, profile=profile,
                                  keep_routed_circuit=False)
            counts[(name, arch_name)] = result.num_swaps
        engine_time = min(engine_time, time.perf_counter() - start)
        if repeat == 0:
            engine_swaps = counts

    # Warm timing: the memoized second pass over the same grid.
    start = time.perf_counter()
    for _name, _arch_name, circuit, profile, architecture in points:
        engine.route(circuit, architecture, profile=profile, keep_routed_circuit=False)
    warm_time = time.perf_counter() - start

    # Quality pass: the evaluation default (bidirectional passes=3
    # refinement) over the same grid.  Swap counts only — the refinement
    # trades extra routing time for fewer SWAPs, and the persistent
    # routing cache absorbs that cost across invocations.
    bidirectional_engine = RoutingEngine(DEFAULT_EVALUATION_ROUTING)
    bidirectional_swaps = {}
    for name, arch_name, circuit, profile, architecture in points:
        result = bidirectional_engine.route(circuit, architecture, profile=profile,
                                            keep_routed_circuit=False)
        bidirectional_swaps[(name, arch_name)] = result.num_swaps

    rows = []
    for name, arch_name, circuit, _profile, _architecture in points:
        ref = reference_swaps[(name, arch_name)]
        new = engine_swaps[(name, arch_name)]
        bidirectional = bidirectional_swaps[(name, arch_name)]
        rows.append({
            "benchmark": name,
            "architecture": arch_name,
            "reference_swaps": ref,
            "engine_swaps": new,
            "bidirectional_swaps": bidirectional,
            "regressed": new > ref,
            "bidirectional_regressed": bidirectional > new,
        })
    return {
        "bench": "routing",
        "quick": quick,
        "repeats": repeats,
        "points": len(points),
        "reference_time_s": round(reference_time, 4),
        "engine_time_s": round(engine_time, 4),
        "warm_time_s": round(warm_time, 6),
        "speedup": round(reference_time / engine_time, 2),
        "warm_speedup": round(reference_time / warm_time, 1) if warm_time else None,
        "engine_total_swaps": sum(row["engine_swaps"] for row in rows),
        "bidirectional_total_swaps": sum(row["bidirectional_swaps"] for row in rows),
        "bidirectional_passes": DEFAULT_EVALUATION_ROUTING.passes,
        "cache": engine.cache.stats(),
        "rows": rows,
    }


def render_table(record: dict) -> str:
    lines = [
        "Routing engine vs pre-refactor SABRE pipeline "
        f"({record['points']} evaluation-grid points, best of {record['repeats']})",
        "",
        f"{'benchmark':<16} {'architecture':<20} {'ref swaps':>9} {'new swaps':>9} "
        f"{'bidi swaps':>10}",
    ]
    for row in record["rows"]:
        lines.append(
            f"{row['benchmark']:<16} {row['architecture']:<20} "
            f"{row['reference_swaps']:>9} {row['engine_swaps']:>9} "
            f"{row['bidirectional_swaps']:>10}"
        )
    lines += [
        "",
        f"reference pipeline : {record['reference_time_s'] * 1e3:9.1f} ms",
        f"routing engine     : {record['engine_time_s'] * 1e3:9.1f} ms "
        f"({record['speedup']:.1f}x)",
        f"memoized re-route  : {record['warm_time_s'] * 1e3:9.2f} ms "
        f"(cache: {record['cache']['hits']} hits / {record['cache']['misses']} misses)",
        f"grid swap totals   : {record['engine_total_swaps']} single-pass -> "
        f"{record['bidirectional_total_swaps']} with passes="
        f"{record['bidirectional_passes']} (the evaluation default)",
    ]
    return "\n".join(lines)


def check_record(record: dict, min_speedup: float = MIN_SPEEDUP) -> None:
    """The acceptance assertions shared by the test and script entry points."""
    regressed = [row for row in record["rows"] if row["regressed"]]
    assert not regressed, f"swap-count regressions vs pre-refactor router: {regressed}"
    assert record["speedup"] >= min_speedup, (
        f"routing speedup {record['speedup']:.2f}x below the {min_speedup}x bar"
    )
    # The quality gate behind the passes=3 evaluation default: the
    # bidirectional refinement never loses a point to the single forward
    # pass, and it strictly improves the grid total.
    bidirectional_regressed = [
        row for row in record["rows"] if row["bidirectional_regressed"]
    ]
    assert not bidirectional_regressed, (
        f"bidirectional refinement regressed swap counts: {bidirectional_regressed}"
    )
    assert record["bidirectional_total_swaps"] < record["engine_total_swaps"], (
        "bidirectional refinement no longer improves the grid swap total "
        f"({record['bidirectional_total_swaps']} vs {record['engine_total_swaps']}); "
        "the passes=3 evaluation default has lost its justification"
    )


def _write_json(record: dict, path: Optional[Path]) -> Path:
    path = path or (RESULTS_DIR / "BENCH_routing.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def test_routing_speedup_and_quality():
    """Pytest entry: quick grid, same assertions as the CI smoke job."""
    record = run_bench(quick=True)
    write_result("table_routing_speedup", render_table(record))
    _write_json(record, None)
    check_record(record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid (CI smoke job)")
    parser.add_argument("--json", type=Path, default=None,
                        help="JSON output path (default benchmarks/results/BENCH_routing.json)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per timing (default 3)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help=f"speedup assertion floor (default {MIN_SPEEDUP}; "
                             f"CI uses {CI_MIN_SPEEDUP} to tolerate noisy shared runners)")
    args = parser.parse_args(argv)
    record = run_bench(quick=args.quick, repeats=args.repeats)
    write_result("table_routing_speedup", render_table(record))
    json_path = _write_json(record, args.json)
    print(f"\nJSON record: {json_path}")
    check_record(record, min_speedup=args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
