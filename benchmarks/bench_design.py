"""Design-engine benchmark: staged caching vs the pre-refactor design flow.

Regenerates the evidence for the design-engine overhaul's two claims on a
Figure 10 design-space-exploration session:

* **Identity** — the :class:`~repro.design.engine.DesignEngine` produces
  exactly the architectures the pre-refactor flow produced: same names,
  same selected squares, and bit-identical default-mode frequency
  assignments, for every benchmark and every ``eff-*`` configuration.
* **Speedup** — a cached bus-count sweep (one DSE session that generates
  the configuration grid and then re-generates it, as ``sweep`` followed
  by ``evaluate`` — or any repeated sweep — does) runs at least
  ``MIN_SPEEDUP`` times faster end-to-end: the engine computes each
  profile/layout/selection once, skips duplicate random-bus designs
  *before* frequency allocation, deduplicates identical connection
  designs across seeds, and replays the whole second pass from its stage
  caches.

The pre-refactor pipeline is frozen below (``_Reference*`` classes): the
original ``DesignFlow`` (per-instance profile/layout caching only, greedy
selection re-run per bus count), the original ``FrequencyAllocator``
machinery (global pair/triple lists re-filtered per qubit and pass, a
fresh simulator and noise tensor per call, full-assignment dict copies in
refinement sweeps), and the original per-configuration generation loops,
exactly as they stood before the design-engine refactor — with one
deliberate exception: **both sides use this PR's documented candidate
tie-break** (ties within 1e-12 resolve to the candidate closest to
mid-band, lower frequency first).  The tie-break is a semantic fix that
rides along with this PR; sharing it lets the identity check isolate the
machinery change, which is the claim under test.

Run styles:

* ``python benchmarks/bench_design.py [--smoke] [--json PATH]`` —
  standalone; writes a text table to ``benchmarks/results/`` and a JSON
  record (default ``benchmarks/results/BENCH_design.json``) for the CI
  perf-trajectory artifact.
* ``python -m pytest benchmarks/bench_design.py`` — same run wrapped in
  a test with the identity/speedup assertions.
"""

import argparse
import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.benchmarks import get_benchmark
from repro.collision.yield_simulator import YieldSimulator
from repro.design import DesignEngine
from repro.design.bus_selection import select_four_qubit_buses, select_random_buses
from repro.design.layout import design_layout
from repro.evaluation.configs import ExperimentConfig, architectures_for_config
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import (
    DEFAULT_SIGMA_GHZ,
    candidate_frequencies,
    five_frequency_scheme,
    middle_frequency,
)
from repro.profiling import profile_circuit
from repro.utils.rng import seed_for

from _bench_utils import RESULTS_DIR, write_result

#: Minimum acceptable session speedup of the engine over the reference.
MIN_SPEEDUP = 3.0

#: Relaxed floor for shared CI runners (the JSON artifact records the
#: true ratio either way, so the perf trajectory catches slow drift).
CI_MIN_SPEEDUP = 2.0

#: The four design-flow configurations of the Figure 10 grid (the ``ibm``
#: baselines involve no design work and are excluded).
EFF_CONFIGS = (
    ExperimentConfig.EFF_FULL,
    ExperimentConfig.EFF_5_FREQ,
    ExperimentConfig.EFF_RD_BUS,
    ExperimentConfig.EFF_LAYOUT_ONLY,
)

SMOKE_BENCHMARKS = ("sym6_145", "z4_268", "adr4_197")
FULL_BENCHMARKS = SMOKE_BENCHMARKS + ("qft_16", "UCCSD_ansatz_8", "ising_model_16")

SMOKE_LOCAL_TRIALS = 800
FULL_LOCAL_TRIALS = 2000
SMOKE_SEEDS = (1, 2, 3)
FULL_SEEDS = (1, 2, 3, 4, 5)


# ---------------------------------------------------------------------------
# Frozen pre-refactor pipeline (the design flow as it stood before this PR).
# ---------------------------------------------------------------------------


class _ReferenceFrequencyAllocator:
    """The original Algorithm 3 machinery: global list filtering per call.

    Identical search semantics to the live allocator (including the
    documented mid-band tie-break — see the module docstring); only the
    machinery differs: every ``_best_frequency`` call re-filters the
    chip-global pair/triple lists, rebuilds the region indexing, and
    constructs a fresh simulator whose noise tensor is redrawn, and each
    refinement step copies the full assignment dict.
    """

    def __init__(self, sigma_ghz=DEFAULT_SIGMA_GHZ, local_trials=2000,
                 seed=2020, refinement_passes=0):
        self.sigma_ghz = sigma_ghz
        self.local_trials = local_trials
        self.frequency_step_ghz = 0.01
        self.seed = seed
        self.refinement_passes = refinement_passes

    def allocate(self, architecture) -> Dict[int, float]:
        qubits = architecture.qubits
        if not qubits:
            raise ValueError("architecture has no qubits")
        neighbors = {q: architecture.neighbors(q) for q in qubits}
        pairs = architecture.collision_pairs()
        triples = architecture.collision_triples()
        candidates = candidate_frequencies(self.frequency_step_ghz)

        frequencies: Dict[int, float] = {}
        center = architecture.lattice.central_qubit()
        frequencies[center] = middle_frequency()

        order = self._traversal_order(center, qubits, neighbors)
        for qubit in order:
            if qubit in frequencies:
                continue
            frequencies[qubit] = self._best_frequency(
                qubit, frequencies, pairs, triples, candidates
            )
        for _sweep in range(max(0, self.refinement_passes)):
            for qubit in order:
                context = {q: f for q, f in frequencies.items() if q != qubit}
                frequencies[qubit] = self._best_frequency(
                    qubit, context, pairs, triples, candidates
                )
        return frequencies

    def _traversal_order(self, center, qubits, neighbors) -> List[int]:
        order: List[int] = []
        visited: Set[int] = {center}
        queue = deque([center])
        while queue:
            current = queue.popleft()
            order.append(current)
            for neighbor in neighbors[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        for qubit in qubits:
            if qubit not in visited:
                order.append(qubit)
        return order

    def _best_frequency(self, qubit, assigned, pairs, triples, candidates) -> float:
        local_pairs, local_triples, region = self._local_region(
            qubit, assigned, pairs, triples
        )
        if not local_pairs and not local_triples:
            return middle_frequency()

        region_order = sorted(region)
        index_of = {q: i for i, q in enumerate(region_order)}
        qubit_index = index_of[qubit]
        base = np.array([assigned.get(q, 0.0) for q in region_order])
        local_pair_idx = tuple((index_of[a], index_of[b]) for a, b in local_pairs)
        local_triple_idx = tuple(
            (index_of[j], index_of[i], index_of[k]) for j, i, k in local_triples
        )

        simulator = YieldSimulator(
            trials=self.local_trials,
            sigma_ghz=self.sigma_ghz,
            seed=seed_for("freq-alloc", self.seed, qubit),
        )
        designed_batch = np.repeat(base[None, :], len(candidates), axis=0)
        designed_batch[:, qubit_index] = candidates
        estimates = simulator.estimate_batch(designed_batch, local_pair_idx, local_triple_idx)

        # The PR's documented tie-break, applied to the frozen machinery:
        # yields within 1e-12 of the best are tied; the tied candidate
        # closest to mid-band wins, lower frequency first.
        yields = np.array([estimate.yield_rate for estimate in estimates])
        tie_set = np.flatnonzero(yields >= yields.max() - 1e-12)
        mid = middle_frequency()
        distance = np.abs(
            np.rint((candidates - mid) / self.frequency_step_ghz)
        ).astype(int)
        return float(candidates[tie_set[np.argmin(distance[tie_set])]])

    def _local_region(self, qubit, assigned, pairs, triples):
        known = set(assigned) | {qubit}
        local_pairs = [
            (a, b)
            for a, b in pairs
            if qubit in (a, b) and a in known and b in known
        ]
        local_triples = [
            (j, i, k)
            for j, i, k in triples
            if qubit in (j, i, k) and j in known and i in known and k in known
        ]
        region: Set[int] = {qubit}
        for a, b in local_pairs:
            region.update((a, b))
        for j, i, k in local_triples:
            region.update((j, i, k))
        return local_pairs, local_triples, region


class _ReferenceDesignFlow:
    """The original DesignFlow: per-instance caching, per-budget selection."""

    def __init__(self, circuit, bus_strategy="filtered", frequency_strategy="optimized",
                 local_trials=2000, random_bus_seed=None):
        self.circuit = circuit
        self.bus_strategy = bus_strategy
        self.frequency_strategy = frequency_strategy
        self.local_trials = local_trials
        self.random_bus_seed = random_bus_seed
        self._profile = None
        self._layout = None

    @property
    def profile(self):
        if self._profile is None:
            self._profile = profile_circuit(self.circuit)
        return self._profile

    @property
    def layout(self):
        if self._layout is None:
            self._layout = design_layout(self.profile)
        return self._layout

    def max_four_qubit_buses(self) -> int:
        return select_four_qubit_buses(self.layout.lattice, self.profile, None).max_available

    def design(self, max_buses: int = 0, name: Optional[str] = None):
        if self.bus_strategy == "random":
            selection = select_random_buses(
                self.layout.lattice, max_buses, seed=self.random_bus_seed
            )
        else:
            selection = select_four_qubit_buses(self.layout.lattice, self.profile, max_buses)
        architecture = Architecture.from_layout(
            name=name or self._default_name(len(selection.selected_squares)),
            lattice=self.layout.lattice,
            four_qubit_squares=selection.selected_squares,
            logical_to_physical=self.layout.logical_to_physical,
        )
        if self.frequency_strategy == "five_frequency":
            architecture.frequencies = five_frequency_scheme(architecture.coordinates())
        else:
            allocator = _ReferenceFrequencyAllocator(local_trials=self.local_trials)
            architecture.frequencies = allocator.allocate(architecture)
        return architecture

    def design_series(self, max_buses: Optional[int] = None):
        limit = self.max_four_qubit_buses() if max_buses is None else int(max_buses)
        series = []
        for k in range(limit + 1):
            architecture = self.design(k)
            if series and len(architecture.four_qubit_buses()) == len(
                series[-1].four_qubit_buses()
            ):
                continue
            series.append(architecture)
        return series

    def _default_name(self, num_buses: int) -> str:
        strategy = "rd" if self.bus_strategy == "random" else "eff"
        freq = "5freq" if self.frequency_strategy == "five_frequency" else "optfreq"
        return f"{strategy}_{self.circuit.name}_{num_buses}x4qbus_{freq}"


def _reference_architectures(circuit, config, seeds, local_trials):
    """The pre-refactor per-configuration generation loops, verbatim."""
    if config is ExperimentConfig.EFF_FULL:
        return _ReferenceDesignFlow(circuit, local_trials=local_trials).design_series()
    if config is ExperimentConfig.EFF_5_FREQ:
        return _ReferenceDesignFlow(
            circuit, frequency_strategy="five_frequency", local_trials=local_trials
        ).design_series()
    if config is ExperimentConfig.EFF_RD_BUS:
        architectures = []
        max_buses = _ReferenceDesignFlow(circuit).max_four_qubit_buses()
        for seed in seeds:
            flow = _ReferenceDesignFlow(
                circuit, bus_strategy="random", random_bus_seed=seed,
                local_trials=local_trials,
            )
            previous = -1
            for num_buses in range(1, max_buses + 1):
                arch = flow.design(num_buses)
                actual = len(arch.four_qubit_buses())
                if actual == previous:
                    continue
                previous = actual
                arch.name = f"{arch.name}_seed{seed}"
                architectures.append(arch)
        return architectures
    if config is ExperimentConfig.EFF_LAYOUT_ONLY:
        flow = _ReferenceDesignFlow(
            circuit, frequency_strategy="five_frequency", local_trials=local_trials
        )
        minimal = flow.design(0, name=f"layout_only_{circuit.name}_2qbus")
        maximal = flow.design(
            flow.max_four_qubit_buses(), name=f"layout_only_{circuit.name}_max4qbus"
        )
        for arch in (minimal, maximal):
            arch.frequencies = five_frequency_scheme(arch.coordinates())
        return [minimal, maximal]
    raise ValueError(f"unexpected config {config!r}")


# ---------------------------------------------------------------------------
# The benchmark harness.
# ---------------------------------------------------------------------------


def _fingerprint(architecture) -> Tuple:
    """Everything the identity check compares, per architecture."""
    return (
        architecture.name,
        tuple(sorted(bus.square.origin for bus in architecture.four_qubit_buses())),
        tuple(sorted(architecture.coupling_edges())),
        tuple(sorted(architecture.frequencies.items())),
    )


def _generate_reference(benchmarks, seeds, local_trials):
    return {
        (name, config.value): _reference_architectures(
            get_benchmark(name), config, seeds, local_trials
        )
        for name in benchmarks
        for config in EFF_CONFIGS
    }


def _generate_engine(benchmarks, seeds, local_trials, engine):
    return {
        (name, config.value): architectures_for_config(
            get_benchmark(name), config,
            random_bus_seeds=seeds,
            frequency_local_trials=local_trials,
            engine=engine,
        )
        for name in benchmarks
        for config in EFF_CONFIGS
    }


def run_bench(smoke: bool = False, repeats: int = 2) -> dict:
    """Run the DSE session with both pipelines; return the comparison record.

    One *session* generates the four-configuration grid twice — the
    access pattern of ``sweep`` followed by ``evaluate`` (or of any
    repeated sweep over the same benchmarks).  The reference re-runs the
    flow from scratch both times; the engine's second pass replays from
    its stage caches.
    """
    benchmarks = SMOKE_BENCHMARKS if smoke else FULL_BENCHMARKS
    seeds = SMOKE_SEEDS if smoke else FULL_SEEDS
    local_trials = SMOKE_LOCAL_TRIALS if smoke else FULL_LOCAL_TRIALS

    reference_time = float("inf")
    reference_grid = None
    for _repeat in range(repeats):
        start = time.perf_counter()
        first = _generate_reference(benchmarks, seeds, local_trials)
        _second = _generate_reference(benchmarks, seeds, local_trials)
        reference_time = min(reference_time, time.perf_counter() - start)
        if reference_grid is None:
            reference_grid = first

    engine_time = float("inf")
    engine_grid = None
    cold_time = warm_time = None
    stats = None
    for _repeat in range(repeats):
        engine = DesignEngine()
        start = time.perf_counter()
        first = _generate_engine(benchmarks, seeds, local_trials, engine)
        mid = time.perf_counter()
        _second = _generate_engine(benchmarks, seeds, local_trials, engine)
        stop = time.perf_counter()
        if stop - start < engine_time:
            engine_time = stop - start
            cold_time = mid - start
            warm_time = stop - mid
            stats = engine.stats()
        if engine_grid is None:
            engine_grid = first

    rows = []
    all_identical = True
    for name in benchmarks:
        for config in EFF_CONFIGS:
            ref = reference_grid[(name, config.value)]
            new = engine_grid[(name, config.value)]
            identical = (
                len(ref) == len(new)
                and all(_fingerprint(a) == _fingerprint(b) for a, b in zip(ref, new))
            )
            all_identical &= identical
            rows.append({
                "benchmark": name,
                "config": config.value,
                "architectures": len(new),
                "reference_architectures": len(ref),
                "identical": identical,
            })

    return {
        "bench": "design",
        "smoke": smoke,
        "repeats": repeats,
        "benchmarks": list(benchmarks),
        "random_bus_seeds": list(seeds),
        "frequency_local_trials": local_trials,
        "reference_session_time_s": round(reference_time, 4),
        "engine_session_time_s": round(engine_time, 4),
        "engine_cold_pass_s": round(cold_time, 4),
        "engine_warm_pass_s": round(warm_time, 6),
        "session_speedup": round(reference_time / engine_time, 2),
        "cold_speedup": round((reference_time / 2.0) / cold_time, 2),
        "warm_speedup": round((reference_time / 2.0) / warm_time, 1) if warm_time else None,
        "all_identical": all_identical,
        "stage_stats": stats,
        "rows": rows,
    }


def render_table(record: dict) -> str:
    lines = [
        "Design engine vs pre-refactor design flow "
        f"({len(record['benchmarks'])} benchmarks x {len(EFF_CONFIGS)} configurations, "
        f"two generation passes, best of {record['repeats']})",
        "",
        f"{'benchmark':<16} {'configuration':<16} {'architectures':>13} {'identical':>9}",
    ]
    for row in record["rows"]:
        lines.append(
            f"{row['benchmark']:<16} {row['config']:<16} "
            f"{row['architectures']:>13} {str(row['identical']):>9}"
        )
    stage = record["stage_stats"]
    lines += [
        "",
        f"reference flow (2 passes) : {record['reference_session_time_s'] * 1e3:9.1f} ms",
        f"design engine (2 passes)  : {record['engine_session_time_s'] * 1e3:9.1f} ms "
        f"({record['session_speedup']:.1f}x)",
        f"  cold first pass         : {record['engine_cold_pass_s'] * 1e3:9.1f} ms "
        f"({record['cold_speedup']:.1f}x vs one reference pass)",
        f"  cached second pass      : {record['engine_warm_pass_s'] * 1e3:9.2f} ms "
        f"({record['warm_speedup']}x vs one reference pass)",
        "stage caches: " + ", ".join(
            f"{name} {data['hits']}h/{data['misses']}m" for name, data in stage.items()
        ),
    ]
    return "\n".join(lines)


def check_record(record: dict, min_speedup: float = MIN_SPEEDUP) -> None:
    """The acceptance assertions shared by the test and script entry points."""
    broken = [row for row in record["rows"] if not row["identical"]]
    assert not broken, f"architectures differ from the pre-refactor flow: {broken}"
    assert record["session_speedup"] >= min_speedup, (
        f"design-flow session speedup {record['session_speedup']:.2f}x "
        f"below the {min_speedup}x bar"
    )


def _write_json(record: dict, path: Optional[Path]) -> Path:
    path = path or (RESULTS_DIR / "BENCH_design.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def test_design_speedup_and_identity():
    """Pytest entry: smoke grid, same assertions as the CI smoke job."""
    record = run_bench(smoke=True)
    write_result("table_design_speedup", render_table(record))
    _write_json(record, None)
    check_record(record, min_speedup=CI_MIN_SPEEDUP)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid (CI smoke job)")
    parser.add_argument("--json", type=Path, default=None,
                        help="JSON output path (default benchmarks/results/BENCH_design.json)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of repeats per timing (default 2)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help=f"speedup assertion floor (default {MIN_SPEEDUP}; "
                             f"CI uses {CI_MIN_SPEEDUP} to tolerate noisy shared runners)")
    args = parser.parse_args(argv)
    record = run_bench(smoke=args.smoke, repeats=args.repeats)
    write_result("table_design_speedup", render_table(record))
    json_path = _write_json(record, args.json)
    print(f"\nJSON record: {json_path}")
    check_record(record, min_speedup=args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
