"""Section 5.4.3 — effect of the frequency-allocation subroutine.

Compares ``eff-full`` against ``eff-5-freq`` at matched bus counts: the
only difference is Algorithm 3 vs IBM's regular 5-frequency scheme.  The
paper reports ~10x average yield improvement, smaller when the
5-frequency yield is already high (sym6, UCCSD).
"""

from repro.benchmarks import benchmark_suite
from repro.evaluation import (
    ExperimentConfig,
    evaluate_suite,
    frequency_allocation_gain,
)
from repro.evaluation.analysis import geometric_mean_yield_ratio

from _bench_utils import active_benchmarks, active_settings, write_result

CONFIGS = (ExperimentConfig.EFF_FULL, ExperimentConfig.EFF_5_FREQ)


def test_section543_frequency_allocation_gain(benchmark):
    settings = active_settings()
    circuits = benchmark_suite(list(active_benchmarks()))

    results = benchmark.pedantic(
        evaluate_suite,
        args=(circuits,),
        kwargs={"configs": CONFIGS, "settings": settings},
        rounds=1,
        iterations=1,
    )

    comparisons = frequency_allocation_gain(results, trials=settings.yield_trials)
    lines = ["Section 5.4.3 -- frequency allocation effect "
             "(eff-full vs eff-5-freq at matched bus counts)", ""]
    lines.append(f"{'benchmark':<18} {'4Q buses':>8} {'optimized yield':>16} "
                 f"{'5-freq yield':>13} {'ratio':>8}")
    for comparison in comparisons:
        lines.append(
            f"{comparison.benchmark:<18} {comparison.ours.num_four_qubit_buses:>8} "
            f"{comparison.ours.yield_rate:>16.2e} {comparison.baseline.yield_rate:>13.2e} "
            f"{comparison.yield_ratio:>8.1f}"
        )
    ratio = geometric_mean_yield_ratio(comparisons)
    lines.append("")
    lines.append(f"geometric-mean yield improvement: {ratio:.1f}x (paper: ~10x)")
    write_result("table_section543_frequency", "\n".join(lines))

    # The optimized allocation must improve yield on average, by a clear margin.
    assert ratio > 1.5
    # Performance is untouched by the frequency plan (same layout and buses).
    assert all(comparison.performance_change == 0 for comparison in comparisons)
