"""Yield-model studies: sigma sweep and Monte Carlo convergence.

Two ablations of the yield substrate:

* **Sigma sweep** — reproduces the paper's motivation (Section 1 /
  Section 5.1): at IBM's current fabrication precision (sigma =
  130-150 MHz) a 16+ qubit chip yields well below 1%, while the paper's
  projected sigma = 30 MHz makes useful yields reachable.
* **Trial-count convergence** — shows that the 10,000-trial setting used
  by the paper estimates yield with a standard error well below the
  effect sizes the evaluation relies on.
"""

import numpy as np

from repro.collision import YieldSimulator
from repro.hardware import ibm_16q_2x8, ibm_20q_4x5

from _bench_utils import active_settings, write_result

SIGMAS_GHZ = (0.010, 0.030, 0.060, 0.100, 0.130, 0.150)


def test_yield_vs_fabrication_precision(benchmark):
    settings = active_settings()
    architectures = {
        "ibm_16q_2x8_2qbus": ibm_16q_2x8(False),
        "ibm_16q_2x8_4qbus": ibm_16q_2x8(True),
        "ibm_20q_4x5_4qbus": ibm_20q_4x5(True),
    }

    def sweep():
        table = {}
        for name, arch in architectures.items():
            table[name] = [
                YieldSimulator(trials=settings.yield_trials, sigma_ghz=sigma, seed=7)
                .estimate(arch).yield_rate
                for sigma in SIGMAS_GHZ
            ]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Yield vs fabrication precision sigma (IBM baselines, 5-frequency scheme)", ""]
    header = f"{'architecture':<22}" + "".join(f"{int(s * 1000):>9} MHz" for s in SIGMAS_GHZ)
    lines.append(header)
    for name, yields in table.items():
        lines.append(f"{name:<22}" + "".join(f"{y:>13.2e}" for y in yields))
    write_result("table_yield_sigma_sweep", "\n".join(lines))

    # Monotone: yield never improves as fabrication noise grows.
    for yields in table.values():
        assert all(a >= b - 1e-9 for a, b in zip(yields, yields[1:]))
    # Paper motivation: at sigma >= 130 MHz the 16-qubit 4-qubit-bus chip is below 1%.
    assert table["ibm_16q_2x8_4qbus"][SIGMAS_GHZ.index(0.130)] < 0.01


def test_monte_carlo_convergence(benchmark):
    arch = ibm_16q_2x8(False)

    def estimates():
        return {
            trials: YieldSimulator(trials=trials, seed=seed).estimate(arch).yield_rate
            for trials in (1000, 10_000)
            for seed in (1,)
        }

    benchmark.pedantic(estimates, rounds=1, iterations=1)

    reference = YieldSimulator(trials=40_000, seed=99).estimate(arch)
    samples = [
        YieldSimulator(trials=10_000, seed=seed).estimate(arch).yield_rate for seed in range(5)
    ]
    spread = float(np.std(samples))
    lines = [
        "Monte Carlo convergence (ibm_16q_2x8_2qbus, sigma = 30 MHz)",
        "",
        f"reference yield (40,000 trials): {reference.yield_rate:.4f}",
        f"10,000-trial samples: {', '.join(f'{s:.4f}' for s in samples)}",
        f"sample standard deviation: {spread:.5f}",
    ]
    write_result("table_monte_carlo_convergence", "\n".join(lines))

    # The 10,000-trial spread is far below the order-of-magnitude effects studied.
    assert spread < 0.01
    assert abs(np.mean(samples) - reference.yield_rate) < 0.01
