"""Mapping substrate benchmark — post-mapping gate counts per architecture.

Not a figure of its own in the paper, but the performance axis of every
figure: this bench measures the SABRE-style router on representative
benchmarks against the IBM baselines and the generated designs, reporting
SWAP counts and total gate counts (the Section 5.1 metric) and the
router's wall-clock cost.
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.design import DesignFlow, DesignOptions
from repro.hardware import ibm_16q_2x8, ibm_20q_4x5
from repro.mapping import route_circuit
from repro.profiling import profile_circuit

from _bench_utils import write_result

MAPPING_BENCHMARKS = ("z4_268", "adr4_197", "qft_16")


@pytest.mark.parametrize("benchmark_name", MAPPING_BENCHMARKS)
def test_post_mapping_gate_counts(benchmark, benchmark_name):
    circuit = get_benchmark(benchmark_name)
    profile = profile_circuit(circuit)
    targets = {
        "ibm_16q_2x8_2qbus": ibm_16q_2x8(False),
        "ibm_16q_2x8_4qbus": ibm_16q_2x8(True),
        "ibm_20q_4x5_4qbus": ibm_20q_4x5(True),
        "eff_0_buses": DesignFlow(circuit, DesignOptions(local_trials=300)).design(0),
    }
    # Skip targets that cannot host the benchmark.
    targets = {
        name: arch for name, arch in targets.items() if arch.num_qubits >= circuit.num_qubits
    }

    # Time a single routing run on the 16-qubit baseline (the common case).
    benchmark.pedantic(
        route_circuit,
        args=(circuit, targets["ibm_16q_2x8_2qbus"]),
        kwargs={"profile": profile, "keep_routed_circuit": False},
        rounds=1,
        iterations=1,
    )

    lines = [f"Post-mapping gate counts ({benchmark_name}, "
             f"{len(circuit)} original gates, {circuit.num_two_qubit_gates} two-qubit)", ""]
    lines.append(f"{'architecture':<22} {'connections':>11} {'swaps':>7} {'total gates':>12} "
                 f"{'overhead':>9}")
    counts = {}
    for name, arch in targets.items():
        result = route_circuit(circuit, arch, profile, keep_routed_circuit=False)
        counts[name] = result.total_gates
        lines.append(f"{name:<22} {arch.num_connections():>11} {result.num_swaps:>7} "
                     f"{result.total_gates:>12} {result.overhead_ratio:>9.1%}")
    write_result(f"table_mapping_{benchmark_name}", "\n".join(lines))

    # Denser baseline coupling never costs performance by more than a whisker.
    assert counts["ibm_16q_2x8_4qbus"] <= counts["ibm_16q_2x8_2qbus"] * 1.05
    # Every total includes at least the original gates.
    assert all(total >= len(circuit) for total in counts.values())
