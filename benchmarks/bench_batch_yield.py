"""Batched yield engine: batch-vs-loop speedup and allocation identity.

Two claims about :meth:`YieldSimulator.estimate_batch` are regenerated
here:

* **Speedup** — scoring a candidate set through one batched call is
  several times faster than the equivalent sequential
  ``estimate_from_arrays`` loop, on both the Algorithm 3 local-region
  workload (many candidates, a handful of qubits) and a whole-chip
  workload (IBM 16-qubit baseline).
* **Identity** — the batched engine returns exactly the estimates the
  sequential loop returns (common random numbers, same seed), and the
  batch-rewritten Algorithm 3 produces exactly the allocation the
  pre-rewrite sequential inner loop produced.
"""

import time

import numpy as np

from repro.benchmarks import get_benchmark
from repro.collision import YieldSimulator
from repro.collision.conditions import pair_collision_mask, triple_collision_mask
from repro.design import DesignFlow, DesignOptions
from repro.design.frequency_allocation import FrequencyAllocator
from repro.hardware import ibm_16q_2x8
from repro.hardware.frequency import candidate_frequencies, middle_frequency
from repro.utils.rng import seed_for

from _bench_utils import write_result

#: Candidate counts exercised by the speedup table (the acceptance bar is
#: the >= 32 row).
CANDIDATE_COUNTS = (32, 64)

MIN_SPEEDUP = 3.0


def _best_time(fn, repeats=9):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _local_region_workload(num_candidates):
    """An Algorithm 3 local region: one centre qubit against four neighbours."""
    pairs = [(0, 1), (0, 2), (0, 3), (0, 4)]
    triples = [(0, 1, 2), (0, 1, 3), (0, 1, 4), (0, 2, 3), (0, 2, 4), (0, 3, 4)]
    base = np.array([middle_frequency(), 5.05, 5.21, 5.10, 5.30])
    grid = candidate_frequencies()
    batch = np.repeat(base[None, :], num_candidates, axis=0)
    batch[:, 0] = np.resize(grid, num_candidates)
    return batch, pairs, triples


def _chip_workload(num_candidates):
    """Whole-chip candidate plans: perturbations of the IBM 16-qubit baseline."""
    arch = ibm_16q_2x8()
    qubits = arch.qubits
    frequencies = np.array([arch.frequencies[q] for q in qubits])
    index_of = {q: i for i, q in enumerate(qubits)}
    pairs = [(index_of[a], index_of[b]) for a, b in arch.collision_pairs()]
    triples = [
        (index_of[j], index_of[i], index_of[k]) for j, i, k in arch.collision_triples()
    ]
    rng = np.random.default_rng(2020)
    batch = frequencies[None, :] + rng.normal(0.0, 0.01, size=(num_candidates, len(qubits)))
    return batch, pairs, triples


def test_batch_vs_sequential_loop(benchmark):
    simulator = YieldSimulator(trials=2000, sigma_ghz=0.030, seed=7)
    workloads = {
        "local_region_5q": _local_region_workload,
        "chip_ibm_16q": _chip_workload,
    }

    lines = [
        "estimate_batch vs sequential estimate_from_arrays loop "
        "(2000 trials, common random numbers)",
        "",
        f"{'workload':<18} {'candidates':>10} {'loop ms':>9} {'batch ms':>9} {'speedup':>8}",
    ]
    speedups = {}
    for name, build in workloads.items():
        for num_candidates in CANDIDATE_COUNTS:
            batch, pairs, triples = build(num_candidates)
            sequential = [
                simulator.estimate_from_arrays(row, pairs, triples) for row in batch
            ]
            batched = simulator.estimate_batch(batch, pairs, triples)
            assert batched == sequential, (
                f"batched estimates diverge from the sequential loop on {name}"
            )
            loop_s = _best_time(
                lambda: [simulator.estimate_from_arrays(row, pairs, triples) for row in batch]
            )
            batch_s = _best_time(lambda: simulator.estimate_batch(batch, pairs, triples))
            speedups[(name, num_candidates)] = loop_s / batch_s
            lines.append(
                f"{name:<18} {num_candidates:>10} {loop_s * 1e3:>9.2f} "
                f"{batch_s * 1e3:>9.2f} {loop_s / batch_s:>7.1f}x"
            )

    benchmark.pedantic(
        lambda: simulator.estimate_batch(*_local_region_workload(64)), rounds=1, iterations=1
    )
    write_result("table_batch_yield_speedup", "\n".join(lines))

    for (name, num_candidates), speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{name} with {num_candidates} candidates: batch only {speedup:.1f}x faster"
        )


class _SequentialReferenceAllocator(FrequencyAllocator):
    """Algorithm 3 with the pre-rewrite sequential inner loop.

    Byte-for-byte the candidate scoring that ``FrequencyAllocator`` used
    before ``estimate_batch`` existed: one mask evaluation per candidate
    against a shared noise draw.  Kept as the ground truth the batched
    rewrite must reproduce exactly.
    """

    def _best_frequency(self, qubit, assigned, pairs, triples, candidates):
        local_pairs, local_triples, region = self._local_region(
            qubit, assigned, pairs, triples
        )
        if not local_pairs and not local_triples:
            return middle_frequency()
        region_order = sorted(region)
        index_of = {q: i for i, q in enumerate(region_order)}
        qubit_index = index_of[qubit]
        base = np.array([assigned.get(q, 0.0) for q in region_order])
        pair_idx = np.array(
            [[index_of[a], index_of[b]] for a, b in local_pairs], dtype=int
        ).reshape(-1, 2)
        triple_idx = np.array(
            [[index_of[j], index_of[i], index_of[k]] for j, i, k in local_triples],
            dtype=int,
        ).reshape(-1, 3)
        rng = np.random.default_rng(seed_for("freq-alloc", self.seed, qubit))
        noise = rng.normal(0.0, self.sigma_ghz, size=(self.local_trials, len(region_order)))
        best_candidate = float(candidates[0])
        best_yield = -1.0
        for candidate in candidates:
            designed = base.copy()
            designed[qubit_index] = candidate
            sampled = designed[None, :] + noise
            failed = pair_collision_mask(
                sampled, pair_idx[:, 0], pair_idx[:, 1], self.delta_ghz, self.thresholds
            ) | triple_collision_mask(
                sampled,
                triple_idx[:, 0],
                triple_idx[:, 1],
                triple_idx[:, 2],
                self.delta_ghz,
                self.thresholds,
            )
            local_yield = 1.0 - failed.mean()
            if local_yield > best_yield + 1e-12:
                best_yield = local_yield
                best_candidate = float(candidate)
        return best_candidate


def test_frequency_allocation_identical_to_sequential_reference(benchmark):
    circuit = get_benchmark("sym6_145")
    flow = DesignFlow(circuit, DesignOptions(local_trials=500))
    architecture = flow.design(max_four_qubit_buses=1)

    batched = FrequencyAllocator(local_trials=800, seed=2020)
    reference = _SequentialReferenceAllocator(local_trials=800, seed=2020)

    batched_alloc = benchmark.pedantic(
        lambda: batched.allocate(architecture), rounds=1, iterations=1
    )
    reference_alloc = reference.allocate(architecture)
    assert batched_alloc == reference_alloc

    lines = [
        "Algorithm 3 allocation: batched inner loop vs sequential reference (sym6_145)",
        "",
        f"qubits allocated: {len(batched_alloc)}",
        f"identical to pre-rewrite sequential loop: {batched_alloc == reference_alloc}",
    ]
    write_result("table_batch_allocation_identity", "\n".join(lines))
