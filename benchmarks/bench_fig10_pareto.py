"""Figure 10 — yield vs normalized reciprocal post-mapping gate count.

The paper's main result: for each benchmark, all five experiment
configurations are evaluated and plotted on the (performance, yield)
plane.  This bench regenerates the data series of every subfigure (one
table + ASCII scatter per benchmark) and asserts the headline qualitative
property — the application-specific ``eff-full`` series reaches strictly
higher yield than every IBM baseline while staying within a few percent
of the best baseline performance.

By default a representative subset of benchmarks is evaluated with
reduced Monte Carlo settings; set ``REPRO_BENCH_FULL=1`` for the full
twelve-benchmark, 10,000-trial sweep (several minutes).
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.evaluation import ExperimentConfig, evaluate_benchmark
from repro.evaluation.figures import format_figure10_table
from repro.visualization import render_pareto_scatter

from _bench_utils import active_benchmarks, active_settings, write_result


@pytest.mark.parametrize("benchmark_name", active_benchmarks())
def test_fig10_yield_vs_performance(benchmark, benchmark_name):
    settings = active_settings()
    circuit = get_benchmark(benchmark_name)

    result = benchmark.pedantic(
        evaluate_benchmark,
        args=(circuit,),
        kwargs={"settings": settings},
        rounds=1,
        iterations=1,
    )

    table = format_figure10_table(result)
    scatter = render_pareto_scatter(result)
    write_result(f"fig10_{benchmark_name}", table + "\n\n" + scatter)

    eff_full = result.by_config(ExperimentConfig.EFF_FULL)
    ibm = result.by_config(ExperimentConfig.IBM)
    assert eff_full and ibm

    # Yield: the best generated design clearly beats the resource-comparable
    # baselines (the 4-qubit-bus designs (2) and (4), which is where the paper
    # quotes its >100x / >1000x improvements).  Against the sparse 2-qubit-bus
    # baselines the generated designs must stay at least competitive; for a few
    # dense benchmarks the regular 2x8 chip with the hand-tuned 5-frequency
    # scheme retains a small yield edge over the greedy Algorithm 3 on an
    # irregular layout, which the paper's averages smooth over.
    best_generated_yield = max(point.yield_rate for point in eff_full)
    from repro.profiling import CouplingPattern, classify_pattern, profile_circuit

    uniform_pattern = classify_pattern(profile_circuit(circuit)) is CouplingPattern.UNIFORM
    for point in ibm:
        if point.num_four_qubit_buses > 0:
            assert best_generated_yield > point.yield_rate
        elif not uniform_pattern:
            # Uniform-pattern programs (qft) are the paper's own worst case:
            # their profiling carries no exploitable structure, so the
            # compact generated layout can trail the elongated 2x8 baseline
            # on the yield axis (Section 5.4.2).  All other programs must
            # stay at least competitive with the sparse baselines.
            assert best_generated_yield > 0.5 * point.yield_rate

    # Every baseline is improved upon on at least one axis by some generated design.
    for baseline in ibm:
        assert any(
            point.yield_rate > baseline.yield_rate or point.total_gates < baseline.total_gates
            for point in eff_full
        )

    # Performance: the best generated design is within 25% of the best baseline
    # (the paper reports parity to a few percent on average; individual small
    # benchmarks can deviate more because the baselines have many spare qubits).
    best_generated_gates = min(point.total_gates for point in eff_full)
    best_baseline_gates = min(point.total_gates for point in ibm)
    assert best_generated_gates <= best_baseline_gates * 1.25
