"""Ablation — greedy Algorithm 3 vs coordinate-descent refinement.

The paper's Discussion section notes that the centre-out greedy frequency
search is sub-optimal and suggests global optimization as future work.
This ablation runs the design flow with 0 (the paper's algorithm), 1, and
2 refinement sweeps on two benchmarks and reports the resulting yields,
so the cost/benefit of the extension is documented next to the main
results.  The yields typically move by at most a few relative percent —
the greedy pass already sits close to a local optimum — which is why the
refinement is off by default.
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.collision import YieldSimulator
from repro.design import DesignFlow, DesignOptions

from _bench_utils import active_settings, write_result

ABLATION_BENCHMARKS = ("z4_268", "adr4_197")
REFINEMENT_PASSES = (0, 1, 2)


@pytest.mark.parametrize("benchmark_name", ABLATION_BENCHMARKS)
def test_frequency_refinement_ablation(benchmark, benchmark_name):
    settings = active_settings()
    circuit = get_benchmark(benchmark_name)
    simulator = YieldSimulator(trials=settings.yield_trials, seed=7)

    def run_ablation():
        yields = {}
        for passes in REFINEMENT_PASSES:
            options = DesignOptions(
                local_trials=settings.frequency_local_trials,
                frequency_refinement_passes=passes,
            )
            architecture = DesignFlow(circuit, options).design(0)
            yields[passes] = simulator.estimate(architecture).yield_rate
        return yields

    yields = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    lines = [f"Ablation -- frequency allocation refinement ({benchmark_name}, 0 four-qubit buses)",
             ""]
    lines.append(f"{'refinement passes':>18} {'yield':>12}")
    for passes, value in sorted(yields.items()):
        suffix = "  (paper's Algorithm 3)" if passes == 0 else ""
        lines.append(f"{passes:>18} {value:>12.2e}{suffix}")
    write_result(f"table_ablation_refinement_{benchmark_name}", "\n".join(lines))

    # The refined allocations must never be catastrophically worse than the
    # greedy baseline (they re-optimize the same objective).
    assert all(value > 0 for value in yields.values())
    assert max(yields.values()) <= yields[0] * 5 + 1.0
