"""Screening-engine benchmark: the cold Algorithm 3 path vs the PR 4 scorer.

Regenerates the evidence for the exact interval-count screening engine's
claims on the evaluation grid's frequency-allocation workload:

* **Identity** — for every unique collision structure of the grid (the
  ``eff-full`` bus series plus the ``eff-rd-bus`` seed clouds, deduped
  exactly as the design engine's frequency stage dedups them), the
  screened scorer with its shared ranking caches produces **bit-identical**
  frequency plans to a faithful replica of the PR 4 scorer (full joint
  Monte Carlo kernel on every candidate, per-allocation noise draws, no
  cross-architecture sharing).  Byte-identical sweep outputs for
  screening on vs off are asserted separately at the generation level.
* **Joint-kernel elimination** — the screen decides almost every
  candidate from exact per-event interval counts: the joint Monte Carlo
  kernel runs on only a few percent of candidate rows (reported as
  ``joint_kernel_row_fraction``), and the pruned-candidate fraction —
  candidates provably discarded without ever touching the joint kernel —
  is recorded alongside it.
* **Cold-path speedup** — the cold session (process caches cleared) runs
  at least ``MIN_SPEEDUP`` times faster than the PR 4 replica: ~4.4x
  measured on the reference machine's full grid with the fused merge
  kernel (native backend), up from ~2.4x before fusion (the pre-fusion
  record is kept in ``benchmarks/baselines/``).  The ratio composes the
  fused single-pass merge kernel (in-band packed endpoints, one sweep
  for both widened and narrowed counts), cross-qubit batched rankings
  over each BFS wave, the process-wide CRN noise-tensor cache, and the
  cross-architecture ranking memo.  The JSON record carries the active
  screening backend and the pack/merge/dispute/joint phase breakdown so
  the perf trajectory can attribute drift to a phase.

Run styles:

* ``python benchmarks/bench_screening.py [--smoke] [--json PATH]`` —
  standalone; writes a text table to ``benchmarks/results/`` and a JSON
  record (default ``benchmarks/results/BENCH_screening.json``) for the
  CI perf-trajectory artifact.
* ``python -m pytest benchmarks/bench_screening.py`` — same run wrapped
  in a test with the identity/elimination/speedup assertions.
"""

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).parent))

from repro.benchmarks import get_benchmark
from repro.collision import active_backend, reset_screening_stats, screening_stats
from repro.collision.screening import PHASE_KEYS
from repro.design import DesignEngine, FrequencyAllocator, reset_shared_caches
from repro.design.engine import (
    BusStrategy,
    DesignOptions,
    FrequencyStrategy,
    architecture_collision_key,
)

from _bench_utils import RESULTS_DIR, write_result

#: Minimum acceptable cold-path speedup over the PR 4 scorer replica on
#: the full grid (~4.4x on the reference machine with the fused native
#: merge kernel).
MIN_SPEEDUP = 4.0

#: Full-grid floor when the native kernel is unavailable or disabled:
#: the pure-numpy fallback runs the same fused algorithm without the
#: C row sweep (~2x on the reference machine).
FALLBACK_MIN_SPEEDUP = 1.5

#: Relaxed floor used for the smoke grid and shared CI runners — the
#: smoke grid shares fewer rankings (fewer seeds and benchmarks), CI
#: runners are noisy, and the forced-numpy fallback leg gives up the
#: native kernel's edge; the JSON artifact records the true ratio
#: either way, so the perf trajectory catches slow drift.
CI_MIN_SPEEDUP = 1.25

#: Ceiling on the fraction of candidate rows the joint kernel may still
#: score under screening (PR 4 scored 100% of them).
MAX_JOINT_ROW_FRACTION = 0.10

SMOKE_BENCHMARKS = ("sym6_145", "z4_268")
FULL_BENCHMARKS = SMOKE_BENCHMARKS + ("adr4_197", "qft_16", "ising_model_16")

SMOKE_SEEDS = (1, 2)
FULL_SEEDS = (1, 2, 3, 4, 5)

SMOKE_LOCAL_TRIALS = 800
FULL_LOCAL_TRIALS = 2000


def _clear_process_caches() -> None:
    """Reset the allocator's process-wide caches: a true cold session."""
    reset_shared_caches()


def grid_structures(benchmarks, seeds):
    """Unique collision structures of the eff-full + eff-rd-bus grid.

    Deduplication by :func:`architecture_collision_key` mirrors the
    design engine's frequency stage: both the new and the PR 4 flow run
    Algorithm 3 once per unique structure, so timing these allocations
    is exactly timing the grid's cold Algorithm 3 path.
    """
    engine = DesignEngine()
    structures = {}
    for name in benchmarks:
        circuit = get_benchmark(name)
        limit = engine.max_four_qubit_buses(circuit)
        cheap = DesignOptions(frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY)
        for buses in range(limit + 1):
            arch = engine.design(circuit, buses, cheap)
            structures.setdefault(architecture_collision_key(arch), arch)
        for seed in seeds:
            options = DesignOptions(
                bus_strategy=BusStrategy.RANDOM,
                random_bus_seed=seed,
                frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY,
            )
            for buses in range(1, limit + 1):
                arch = engine.design(circuit, buses, options)
                structures.setdefault(architecture_collision_key(arch), arch)
    return list(structures.values())


def run_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Time the cold screened scorer against the PR 4 replica."""
    benchmarks = SMOKE_BENCHMARKS if smoke else FULL_BENCHMARKS
    seeds = SMOKE_SEEDS if smoke else FULL_SEEDS
    local_trials = SMOKE_LOCAL_TRIALS if smoke else FULL_LOCAL_TRIALS

    structures = grid_structures(benchmarks, seeds)
    screened_allocator = FrequencyAllocator(local_trials=local_trials)
    replica_allocator = FrequencyAllocator(
        local_trials=local_trials, screening=False, shared_caches=False
    )

    # Identity first (also warms nothing: each repeat below starts cold).
    _clear_process_caches()
    screened_plans = [screened_allocator.allocate(a) for a in structures]
    replica_plans = [replica_allocator.allocate(a) for a in structures]
    identical = screened_plans == replica_plans

    screened_time = float("inf")
    stats = {}
    for _repeat in range(repeats):
        _clear_process_caches()
        reset_screening_stats()
        start = time.perf_counter()
        for architecture in structures:
            screened_allocator.allocate(architecture)
        elapsed = time.perf_counter() - start
        if elapsed < screened_time:
            screened_time = elapsed
            stats = screening_stats()

    replica_time = float("inf")
    for _repeat in range(repeats):
        start = time.perf_counter()
        for architecture in structures:
            replica_allocator.allocate(architecture)
        replica_time = min(replica_time, time.perf_counter() - start)

    candidates = max(1, stats.get("candidates", 0))
    phase_ns = {key: stats.get(key, 0) for key in PHASE_KEYS}
    screen_ns = max(1, sum(phase_ns.values()))
    return {
        "bench": "screening",
        "smoke": smoke,
        "repeats": repeats,
        "screening_backend": stats.get("backend"),
        "screening_phase_ns": phase_ns,
        "screening_phase_fraction": {
            key: round(value / screen_ns, 4) for key, value in phase_ns.items()
        },
        "benchmarks": list(benchmarks),
        "random_bus_seeds": list(seeds),
        "frequency_local_trials": local_trials,
        "unique_structures": len(structures),
        "all_identical": identical,
        "cold_screened_time_s": round(screened_time, 4),
        "pr4_replica_time_s": round(replica_time, 4),
        "cold_speedup": round(replica_time / screened_time, 2) if screened_time else None,
        "screened_ranking_calls": stats.get("calls", 0),
        "screened_candidates": stats.get("candidates", 0),
        "pruned_candidates": stats.get("pruned", 0),
        "pruned_candidate_fraction": round(stats.get("pruned", 0) / candidates, 4),
        "bound_decided_fraction": round(
            (stats.get("pruned", 0) + stats.get("exact", 0)) / candidates, 4
        ),
        "joint_kernel_rows": stats.get("verified", 0),
        "joint_kernel_row_fraction": round(stats.get("verified", 0) / candidates, 4),
    }


def render_table(record: dict) -> str:
    lines = [
        "Cold Algorithm 3: screened scorer vs PR 4 joint-kernel replica "
        f"({len(record['benchmarks'])} benchmarks, "
        f"{record['unique_structures']} unique structures, "
        f"best of {record['repeats']})",
        "",
        f"bit-identical plans            : {record['all_identical']}",
        f"cold screened session          : {record['cold_screened_time_s'] * 1e3:9.1f} ms",
        f"PR 4 scorer replica            : {record['pr4_replica_time_s'] * 1e3:9.1f} ms",
        f"cold-path speedup              : {record['cold_speedup']}x",
        f"screening backend              : {record['screening_backend']}",
        "phase breakdown                : " + "  ".join(
            f"{key[:-3]} {record['screening_phase_ns'][key] / 1e6:.1f}ms"
            f" ({record['screening_phase_fraction'][key]:.0%})"
            for key in record["screening_phase_ns"]
        ),
        "",
        f"screened ranking calls         : {record['screened_ranking_calls']}",
        f"candidates entering the screen : {record['screened_candidates']}",
        f"pruned by bounds (never scored): {record['pruned_candidates']} "
        f"({record['pruned_candidate_fraction']:.1%})",
        f"decided by bounds overall      : {record['bound_decided_fraction']:.1%}",
        f"joint-kernel candidate rows    : {record['joint_kernel_rows']} "
        f"({record['joint_kernel_row_fraction']:.1%}; the PR 4 scorer ran 100%)",
    ]
    return "\n".join(lines)


def check_record(record: dict, min_speedup: float = MIN_SPEEDUP) -> None:
    """The acceptance assertions shared by the test and script entry points."""
    assert record["all_identical"], (
        "screened frequency plans differ from the PR 4 scorer replica — "
        "winner preservation is broken"
    )
    assert record["screened_candidates"] > 0, "the screen never ran"
    assert record["joint_kernel_row_fraction"] <= MAX_JOINT_ROW_FRACTION, (
        f"the joint kernel still scored "
        f"{record['joint_kernel_row_fraction']:.1%} of candidate rows "
        f"(ceiling {MAX_JOINT_ROW_FRACTION:.0%})"
    )
    assert record["cold_speedup"] >= min_speedup, (
        f"cold-path speedup {record['cold_speedup']:.2f}x "
        f"below the {min_speedup}x floor"
    )


def _write_json(record: dict, path: Optional[Path]) -> Path:
    path = path or (RESULTS_DIR / "BENCH_screening.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def test_screening_cold_path():
    """Pytest entry: smoke grid, same assertions as the CI smoke job."""
    record = run_bench(smoke=True)
    write_result("table_screening", render_table(record))
    _write_json(record, None)
    check_record(record, min_speedup=CI_MIN_SPEEDUP)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid (CI smoke job)")
    parser.add_argument("--json", type=Path, default=None,
                        help="JSON output path "
                             "(default benchmarks/results/BENCH_screening.json)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per scorer (default 3)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help=f"speedup assertion floor (default {MIN_SPEEDUP}, "
                             f"or {CI_MIN_SPEEDUP} with --smoke; CI uses the "
                             "smoke floor to tolerate noisy shared runners)")
    args = parser.parse_args(argv)
    if args.min_speedup is None:
        if args.smoke:
            args.min_speedup = CI_MIN_SPEEDUP
        elif active_backend() == "native":
            args.min_speedup = MIN_SPEEDUP
        else:
            args.min_speedup = FALLBACK_MIN_SPEEDUP
    record = run_bench(smoke=args.smoke, repeats=args.repeats)
    write_result("table_screening", render_table(record))
    json_path = _write_json(record, args.json)
    print(render_table(record))
    print(f"\nJSON record: {json_path}")
    check_record(record, min_speedup=args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
