"""Extension ablation — analytic yield approximation vs Monte Carlo.

The closed-form estimator (:mod:`repro.collision.analytic`) treats the
collision events as independent, so it is biased but deterministic and
orders of magnitude faster than the Monte Carlo simulator.  This bench
quantifies both the accuracy and the speedup on the IBM baselines and one
generated design, documenting when the approximation is safe to use
(candidate screening, optimization loops) and when the Monte Carlo
reference should be preferred (reported numbers).
"""

from repro.benchmarks import get_benchmark
from repro.collision import YieldSimulator, estimate_yield_analytic
from repro.design import DesignFlow, DesignOptions
from repro.hardware import ibm_16q_2x8, ibm_20q_4x5

from _bench_utils import active_settings, write_result


def test_analytic_vs_monte_carlo(benchmark):
    settings = active_settings()
    designed = DesignFlow(
        get_benchmark("z4_268"), DesignOptions(local_trials=settings.frequency_local_trials)
    ).design(0)
    targets = {
        "ibm_16q_2x8_2qbus": ibm_16q_2x8(False),
        "ibm_16q_2x8_4qbus": ibm_16q_2x8(True),
        "ibm_20q_4x5_2qbus": ibm_20q_4x5(False),
        "eff_z4_268_0_buses": designed,
    }
    simulator = YieldSimulator(trials=max(settings.yield_trials, 20_000), seed=31)

    # Time the analytic estimator (the point of the extension is its speed).
    benchmark(estimate_yield_analytic, targets["ibm_16q_2x8_2qbus"])

    lines = ["Extension -- analytic yield approximation vs Monte Carlo (sigma = 30 MHz)", ""]
    lines.append(f"{'architecture':<22} {'analytic':>12} {'monte carlo':>12} {'abs error':>10}")
    errors = {}
    for name, arch in targets.items():
        analytic = estimate_yield_analytic(arch).yield_rate
        monte_carlo = simulator.estimate(arch).yield_rate
        errors[name] = abs(analytic - monte_carlo)
        lines.append(f"{name:<22} {analytic:>12.4e} {monte_carlo:>12.4e} {errors[name]:>10.4f}")
    write_result("table_analytic_vs_montecarlo", "\n".join(lines))

    # The approximation must stay within a small absolute error of the
    # Monte Carlo reference for every architecture studied here.
    assert all(error < 0.02 for error in errors.values())
