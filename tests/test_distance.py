"""Tests for the coupling-graph distance matrix."""


from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.mapping import DistanceMatrix


def chain(n):
    return Architecture.from_layout("chain", Lattice.rectangle(1, n))


class TestDistanceMatrix:
    def test_adjacent_distance_is_one(self):
        distances = DistanceMatrix(chain(4))
        assert distances.distance(0, 1) == 1

    def test_chain_end_to_end_distance(self):
        distances = DistanceMatrix(chain(5))
        assert distances.distance(0, 4) == 4

    def test_distance_is_symmetric(self):
        distances = DistanceMatrix(ibm_16q_2x8())
        for a in range(0, 16, 5):
            for b in range(0, 16, 3):
                assert distances.distance(a, b) == distances.distance(b, a)

    def test_self_distance_zero(self):
        assert DistanceMatrix(chain(3)).distance(2, 2) == 0

    def test_grid_distance_matches_manhattan(self):
        arch = ibm_16q_2x8()
        distances = DistanceMatrix(arch)
        coords = arch.coordinates()
        # With only nearest-neighbour 2-qubit buses, graph distance equals
        # Manhattan distance on the grid.
        for a in (0, 5, 11):
            for b in (3, 9, 15):
                manhattan = abs(coords[a][0] - coords[b][0]) + abs(coords[a][1] - coords[b][1])
                assert distances.distance(a, b) == manhattan

    def test_four_qubit_bus_shortens_diagonal_distance(self):
        from repro.hardware import ibm_16q_2x8 as base

        sparse = DistanceMatrix(base(use_four_qubit_buses=False))
        dense = DistanceMatrix(base(use_four_qubit_buses=True))
        # Qubits 0 and 9 are diagonal corners of the first square (coords (0,0),(1,1)).
        assert dense.distance(0, 9) == 1
        assert sparse.distance(0, 9) == 2

    def test_connectivity_detection(self):
        connected = DistanceMatrix(chain(4))
        assert connected.is_connected()
        disconnected = DistanceMatrix(
            Architecture(
                name="disc",
                lattice=Lattice.from_coordinates({0: (0, 0), 1: (5, 5)}),
                buses=[],
            )
        )
        assert not disconnected.is_connected()

    def test_diameter(self):
        assert DistanceMatrix(chain(6)).diameter() == 5

    def test_as_array_is_a_copy(self):
        distances = DistanceMatrix(chain(3))
        array = distances.as_array()
        array[0, 1] = 99
        assert distances.distance(0, 1) == 1

    def test_qubit_order_preserved(self):
        distances = DistanceMatrix(chain(3))
        assert distances.qubits == [0, 1, 2]
