"""Tests for the runtime metrics registry and the --metrics-out schema."""

import json

import pytest

from repro.runtime.metrics import (
    METRICS_FORMAT,
    METRICS_VERSION,
    MetricsRegistry,
    diff_snapshots,
    empty_snapshot,
    merge_snapshots,
    metrics_report,
    validate_metrics,
    validate_metrics_file,
    write_metrics,
)


class TestRegistry:
    def test_counters_start_at_zero_and_accumulate(self):
        registry = MetricsRegistry()
        assert registry.counter("routing/routes") == 0
        registry.increment("routing/routes")
        registry.increment("routing/routes", 4)
        assert registry.counter("routing/routes") == 5

    def test_timers_record_count_and_total(self):
        registry = MetricsRegistry()
        registry.observe("design/allocate", 0.5)
        registry.observe("design/allocate", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["timers"]["design/allocate"] == {"count": 2, "total_s": 2.0}

    def test_timer_context_manager_observes_once(self):
        registry = MetricsRegistry()
        with registry.timer("yield/estimate"):
            pass
        entry = registry.snapshot()["timers"]["yield/estimate"]
        assert entry["count"] == 1
        assert entry["total_s"] >= 0.0

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.increment("a", 1)
        snapshot = registry.snapshot()
        snapshot["counters"]["a"] = 999
        assert registry.counter("a") == 1

    def test_clear_empties_everything(self):
        registry = MetricsRegistry()
        registry.increment("a")
        registry.observe("b", 1.0)
        registry.clear()
        assert registry.snapshot() == empty_snapshot()


class TestSnapshotAlgebra:
    A = {"counters": {"x": 3, "y": 1}, "timers": {"t": {"count": 1, "total_s": 0.5}}}
    B = {"counters": {"x": 2}, "timers": {"t": {"count": 2, "total_s": 1.0},
                                          "u": {"count": 1, "total_s": 0.1}}}
    C = {"counters": {"z": 7}, "timers": {}}

    def test_merge_is_keywise_sum(self):
        merged = merge_snapshots(self.A, self.B)
        assert merged["counters"] == {"x": 5, "y": 1}
        assert merged["timers"]["t"] == {"count": 3, "total_s": 1.5}
        assert merged["timers"]["u"] == {"count": 1, "total_s": 0.1}

    def test_merge_is_associative_and_commutative(self):
        """Worker deltas merge to the same totals in any completion order
        — the property that makes --jobs N metrics deterministic."""
        import itertools

        reference = merge_snapshots(self.A, self.B, self.C)
        for order in itertools.permutations((self.A, self.B, self.C)):
            assert merge_snapshots(*order) == reference
        # Associativity: (A + B) + C == A + (B + C).
        assert merge_snapshots(merge_snapshots(self.A, self.B), self.C) == reference
        assert merge_snapshots(self.A, merge_snapshots(self.B, self.C)) == reference

    def test_diff_then_merge_round_trips(self):
        """baseline + diff(current, baseline) == current."""
        current = merge_snapshots(self.A, self.B)
        delta = diff_snapshots(current, self.A)
        assert merge_snapshots(self.A, delta) == current

    def test_diff_drops_unchanged_entries(self):
        delta = diff_snapshots(self.A, self.A)
        assert delta == empty_snapshot()


class TestReportSchema:
    def _report(self):
        snapshot = {
            "counters": {
                "routing/cache/hits": 6, "routing/cache/misses": 2,
                "routing/routes": 2, "routing/swaps": 10,
                "screening/candidates": 100, "screening/pruned": 80,
            },
            "timers": {"routing/route": {"count": 2, "total_s": 0.25}},
        }
        return metrics_report(snapshot, command="evaluate",
                              config_digest="abc123", jobs=2)

    def test_report_envelope(self):
        report = self._report()
        assert report["format"] == METRICS_FORMAT
        assert report["version"] == METRICS_VERSION
        assert report["command"] == "evaluate"
        assert report["jobs"] == 2
        validate_metrics(report)

    def test_derived_ratios_recomputed_from_counters(self):
        derived = self._report()["derived"]
        assert derived["routing/cache/hit_rate"] == pytest.approx(0.75)
        assert derived["screening/prune_fraction"] == pytest.approx(0.8)
        assert derived["routing/swaps_per_route"] == pytest.approx(5.0)

    def test_validate_rejects_missing_keys(self):
        report = self._report()
        del report["counters"]
        with pytest.raises(ValueError, match="missing keys"):
            validate_metrics(report)

    def test_validate_rejects_unknown_keys(self):
        report = self._report()
        report["extra"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            validate_metrics(report)

    def test_validate_rejects_wrong_format_and_version(self):
        report = self._report()
        report["format"] = "nope"
        with pytest.raises(ValueError, match="bad metrics format"):
            validate_metrics(report)
        report = self._report()
        report["version"] = 99
        with pytest.raises(ValueError, match="unsupported metrics version"):
            validate_metrics(report)

    def test_validate_rejects_bad_counter_values(self):
        for bad in (-1, True, 1.5, "3"):
            report = self._report()
            report["counters"]["routing/routes"] = bad
            with pytest.raises(ValueError, match="routing/routes"):
                validate_metrics(report)

    def test_validate_rejects_bad_timer_entries(self):
        report = self._report()
        report["timers"]["routing/route"] = {"count": 1}
        with pytest.raises(ValueError, match="routing/route"):
            validate_metrics(report)
        report = self._report()
        report["timers"]["routing/route"] = {"count": 1, "total_s": -0.1}
        with pytest.raises(ValueError, match="total_s"):
            validate_metrics(report)

    def test_write_and_validate_file_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        report = self._report()
        write_metrics(path, report)
        loaded = validate_metrics_file(path)
        assert loaded == report
        # Deterministic serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == report

    def test_write_refuses_invalid_report(self, tmp_path):
        report = self._report()
        report["counters"]["bad"] = -1
        with pytest.raises(ValueError):
            write_metrics(tmp_path / "metrics.json", report)
        assert not (tmp_path / "metrics.json").exists()
