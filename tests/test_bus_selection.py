"""Tests for the 4-qubit bus selection subroutine (Algorithm 2)."""

import pytest

from repro.circuit import QuantumCircuit, cx
from repro.design import (
    cross_coupling_weights,
    design_layout,
    select_four_qubit_buses,
    select_random_buses,
)
from repro.hardware.lattice import Lattice, Square
from repro.profiling import profile_circuit


@pytest.fixture
def grid_circuit():
    """A 9-qubit circuit with heavy coupling on one diagonal of a 3x3 grid layout.

    The circuit is designed so that, after the standard row-major placement
    on a 3x3 grid, the square at (0, 0) has a much larger cross-coupling
    weight than any other square.
    """
    circuit = QuantumCircuit(9, name="grid9")
    # Strong diagonal coupling between q0 and q4 (diagonal of square (0,0)).
    for _ in range(10):
        circuit.append(cx(0, 4))
    # Mild coupling elsewhere.
    circuit.append(cx(1, 2))
    circuit.append(cx(5, 7))
    circuit.append(cx(2, 4))
    return circuit


@pytest.fixture
def grid_lattice():
    return Lattice.rectangle(3, 3)


class TestCrossCouplingWeights:
    def test_weights_cover_all_candidate_squares(self, grid_circuit, grid_lattice):
        weights = cross_coupling_weights(grid_lattice, profile_circuit(grid_circuit))
        assert set(weights) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_diagonal_weight_counted(self, grid_circuit, grid_lattice):
        weights = cross_coupling_weights(grid_lattice, profile_circuit(grid_circuit))
        # Square (0,0) has corners q0,q1,q3,q4: diagonals (0,4) weight 10 and (1,3) weight 0.
        assert weights[(0, 0)] == 10

    def test_three_qubit_square_counts_single_diagonal(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (1, 0), 2: (0, 1)})
        circuit = QuantumCircuit(3).extend([cx(1, 2), cx(1, 2), cx(0, 1)])
        weights = cross_coupling_weights(lattice, profile_circuit(circuit))
        # The occupied diagonal is (q1, q2) with weight 2.
        assert weights[(0, 0)] == 2


class TestFilteredWeightSelection:
    def test_selects_highest_weight_square(self, grid_circuit, grid_lattice):
        result = select_four_qubit_buses(grid_lattice, profile_circuit(grid_circuit), 1)
        assert result.selected_squares[0].origin == (0, 0)

    def test_respects_prohibited_condition(self, grid_circuit, grid_lattice):
        result = select_four_qubit_buses(grid_lattice, profile_circuit(grid_circuit), None)
        squares = result.selected_squares
        for i in range(len(squares)):
            for j in range(i + 1, len(squares)):
                assert not squares[i].is_adjacent_to(squares[j])

    def test_max_buses_limits_selection(self, grid_circuit, grid_lattice):
        profile = profile_circuit(grid_circuit)
        assert len(select_four_qubit_buses(grid_lattice, profile, 1).selected_squares) == 1
        assert len(select_four_qubit_buses(grid_lattice, profile, 0).selected_squares) == 0

    def test_selection_stops_when_no_square_available(self, grid_circuit, grid_lattice):
        result = select_four_qubit_buses(grid_lattice, profile_circuit(grid_circuit), 100)
        # On a 3x3 grid at most 2 non-adjacent squares exist (diagonal corners).
        assert len(result.selected_squares) <= 2

    def test_max_available_on_rectangles(self):
        profile = profile_circuit(QuantumCircuit(16))
        result = select_four_qubit_buses(Lattice.rectangle(2, 8), profile, None)
        assert result.max_available == 4
        result20 = select_four_qubit_buses(Lattice.rectangle(4, 5), profile_circuit(QuantumCircuit(20)), None)
        assert result20.max_available == 6

    def test_negative_bus_count_rejected(self, grid_circuit, grid_lattice):
        from repro.design.flow import DesignFlow

        flow = DesignFlow(grid_circuit)
        with pytest.raises(ValueError):
            flow.design(max_four_qubit_buses=-1)

    def test_deterministic(self, grid_circuit, grid_lattice):
        profile = profile_circuit(grid_circuit)
        first = select_four_qubit_buses(grid_lattice, profile, None).selected_squares
        second = select_four_qubit_buses(grid_lattice, profile, None).selected_squares
        assert first == second


class TestRandomSelection:
    def test_random_selection_respects_prohibition(self, grid_lattice):
        result = select_random_buses(grid_lattice, 5, seed=3)
        squares = result.selected_squares
        for i in range(len(squares)):
            for j in range(i + 1, len(squares)):
                assert not squares[i].is_adjacent_to(squares[j])

    def test_random_selection_is_seeded(self, grid_lattice):
        first = select_random_buses(grid_lattice, 2, seed=5).selected_squares
        second = select_random_buses(grid_lattice, 2, seed=5).selected_squares
        assert first == second

    def test_random_selection_count(self, grid_lattice):
        assert len(select_random_buses(grid_lattice, 1, seed=1).selected_squares) == 1

    def test_different_seeds_can_differ(self, grid_lattice):
        picks = {
            tuple(sq.origin for sq in select_random_buses(grid_lattice, 1, seed=s).selected_squares)
            for s in range(10)
        }
        assert len(picks) > 1
