"""Tests for the parallel design-space sweep executor."""

import pytest

from repro.evaluation import (
    EvaluationSettings,
    ExperimentConfig,
    SweepExecutor,
    evaluate_benchmark,
    run_sweep,
    sweep_point_seed,
)

FAST_SETTINGS = EvaluationSettings(
    yield_trials=300,
    frequency_local_trials=80,
    random_bus_seeds=(1,),
)
FAST_CONFIGS = (ExperimentConfig.EFF_FULL, ExperimentConfig.EFF_LAYOUT_ONLY)


def point_fingerprint(result):
    return [
        (p.config.value, p.architecture_name, p.yield_rate, p.total_gates,
         p.num_swaps, p.normalized_reciprocal_gates)
        for p in result.points
    ]


class TestSweepDeterminism:
    def test_jobs_do_not_change_results(self):
        serial = run_sweep(
            ["sym6_145"], jobs=1, settings=FAST_SETTINGS, configs=FAST_CONFIGS
        )
        parallel = run_sweep(
            ["sym6_145"], jobs=3, settings=FAST_SETTINGS, configs=FAST_CONFIGS
        )
        assert point_fingerprint(serial["sym6_145"]) == point_fingerprint(
            parallel["sym6_145"]
        )
        assert len(serial["sym6_145"].points) > 0

    def test_point_seeds_depend_only_on_point_identity(self):
        seed = sweep_point_seed(7, "sym6_145", "eff-full", 2)
        assert seed == sweep_point_seed(7, "sym6_145", "eff-full", 2)
        assert seed != sweep_point_seed(7, "sym6_145", "eff-full", 3)
        assert seed != sweep_point_seed(8, "sym6_145", "eff-full", 2)
        assert seed != sweep_point_seed(7, "qft_16", "eff-full", 2)

    def test_repeated_runs_are_reproducible(self):
        executor = SweepExecutor(settings=FAST_SETTINGS, configs=FAST_CONFIGS, jobs=1)
        first = executor.run(["sym6_145"])
        second = executor.run(["sym6_145"])
        assert point_fingerprint(first["sym6_145"]) == point_fingerprint(
            second["sym6_145"]
        )


class TestSweepStructure:
    def test_enumerate_points_covers_configs_in_order(self):
        executor = SweepExecutor(settings=FAST_SETTINGS, configs=FAST_CONFIGS, jobs=1)
        points = executor.enumerate_points(["sym6_145"])
        assert points, "sweep enumerated no points"
        config_order = [p.config for p in points]
        # Points arrive grouped by configuration, in the requested order.
        seen = []
        for config in config_order:
            if not seen or seen[-1] is not config:
                seen.append(config)
        assert seen == list(FAST_CONFIGS)
        for point in points:
            assert point.benchmark == "sym6_145"
            assert point.architecture.num_qubits >= 7

    def test_matches_evaluate_benchmark_structure(self):
        """The sweep covers the same architectures as the serial harness."""
        from repro.benchmarks import get_benchmark

        sweep = run_sweep(
            ["sym6_145"], jobs=1, settings=FAST_SETTINGS, configs=FAST_CONFIGS
        )["sym6_145"]
        serial = evaluate_benchmark(
            get_benchmark("sym6_145"), configs=FAST_CONFIGS, settings=FAST_SETTINGS
        )
        assert [p.architecture_name for p in sweep.points] == [
            p.architecture_name for p in serial.points
        ]
        assert [p.total_gates for p in sweep.points] == [
            p.total_gates for p in serial.points
        ]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)

    def test_aliased_and_repeated_names_collapse_to_one_result(self):
        results = run_sweep(
            ["SYM6_145", "sym6_145"], jobs=1, settings=FAST_SETTINGS, configs=FAST_CONFIGS
        )
        assert list(results) == ["sym6_145"]
        reference = run_sweep(
            ["sym6_145"], jobs=1, settings=FAST_SETTINGS, configs=FAST_CONFIGS
        )
        assert point_fingerprint(results["sym6_145"]) == point_fingerprint(
            reference["sym6_145"]
        )


class TestRoutingCachePersistence:
    def test_in_process_sweep_persists_and_reuses_routing_results(self, tmp_path):
        from repro.evaluation.parallel import save_worker_routing_cache

        path = tmp_path / "routing_cache.json"
        settings = EvaluationSettings(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            routing_cache_path=str(path),
        )
        first = run_sweep(["sym6_145"], jobs=1, settings=settings,
                          configs=FAST_CONFIGS)
        # The per-task in-worker merges already persisted everything; the
        # end-of-sweep call reports nothing left to merge.
        assert path.exists()
        assert save_worker_routing_cache(settings) is None

        # A later invocation warm-loads the persisted results and produces
        # byte-identical output.
        second = run_sweep(["sym6_145"], jobs=1, settings=settings,
                           configs=FAST_CONFIGS)
        assert point_fingerprint(first["sym6_145"]) == point_fingerprint(
            second["sym6_145"]
        )

    def test_multi_worker_sweep_leaves_complete_routing_cache(self, tmp_path):
        """Evaluation tasks merge their routing results from inside the
        workers, so a --jobs 2 sweep leaves a cache file that serves a
        subsequent serial run without a single routing miss — the old
        '--jobs 1 refresh pass' is gone."""
        from repro.evaluation import parallel

        path = tmp_path / "routing_cache.json"
        settings = EvaluationSettings(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            routing_cache_path=str(path),
        )
        sharded = run_sweep(["sym6_145"], jobs=2, settings=settings,
                            configs=FAST_CONFIGS)
        assert path.exists()

        # A fresh process's serial run (simulated by dropping the
        # process-local sessions) warm-loads the file and routes nothing.
        parallel.reset_worker_state()
        serial = run_sweep(["sym6_145"], jobs=1, settings=settings,
                           configs=FAST_CONFIGS)
        engine = parallel._worker_engine(settings)
        assert engine.cache.misses == 0
        assert engine.cache.hits > 0
        assert point_fingerprint(sharded["sym6_145"]) == point_fingerprint(
            serial["sym6_145"]
        )

    def test_cache_path_does_not_change_results(self, tmp_path):
        cached_settings = EvaluationSettings(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            routing_cache_path=str(tmp_path / "cache.json"),
        )
        plain = run_sweep(["sym6_145"], jobs=1, settings=FAST_SETTINGS,
                          configs=FAST_CONFIGS)
        cached = run_sweep(["sym6_145"], jobs=1, settings=cached_settings,
                           configs=FAST_CONFIGS)
        assert point_fingerprint(plain["sym6_145"]) == point_fingerprint(
            cached["sym6_145"]
        )


class TestAllocationStrategyAblation:
    def test_strategy_reaches_the_sweep(self):
        """analytic-guided actually changes the designed frequency plans
        (it is not bit-identical to the paper-exact search), so identical
        output would mean the setting never reached the allocator."""
        base = run_sweep(["sym6_145"], jobs=1, settings=FAST_SETTINGS,
                         configs=(ExperimentConfig.EFF_FULL,))
        ablation_settings = EvaluationSettings(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            allocation_strategy="analytic-guided",
        )
        ablation = run_sweep(["sym6_145"], jobs=1, settings=ablation_settings,
                             configs=(ExperimentConfig.EFF_FULL,))
        assert point_fingerprint(base["sym6_145"]) != point_fingerprint(
            ablation["sym6_145"]
        )

    def test_ablation_sweep_is_jobs_invariant(self):
        settings = EvaluationSettings(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            allocation_strategy="analytic-guided",
        )
        serial = run_sweep(["sym6_145"], jobs=1, settings=settings,
                           configs=FAST_CONFIGS)
        parallel = run_sweep(["sym6_145"], jobs=4, settings=settings,
                             configs=FAST_CONFIGS)
        assert point_fingerprint(serial["sym6_145"]) == point_fingerprint(
            parallel["sym6_145"]
        )

    def test_unknown_strategy_rejected_before_workers_fork(self):
        with pytest.raises(ValueError, match="unknown allocation strategy"):
            EvaluationSettings(allocation_strategy="nope")


class TestScreeningIdentity:
    """--no-screening byte-identity: the interval screen is provably
    winner-preserving, so whole sweeps agree bit for bit.

    Every process-level cache whose keys deliberately exclude the
    screening flag (the worker design engines' frequency stage, the
    allocator's ranking memo and noise tensors) is dropped between the
    two runs — otherwise the unscreened sweep would be served from the
    screened sweep's results and the comparison would test nothing.
    """

    def _settings(self, screening):
        return EvaluationSettings(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            screening=screening,
        )

    @staticmethod
    def _drop_process_caches():
        from repro.design import reset_shared_caches
        from repro.evaluation import parallel

        parallel.reset_worker_state()
        reset_shared_caches()

    def test_screening_off_is_byte_identical_serial(self):
        from repro.design import allocation_call_count, reset_allocation_call_count

        self._drop_process_caches()
        on = run_sweep(["sym6_145"], jobs=1, settings=self._settings(True),
                       configs=FAST_CONFIGS)
        self._drop_process_caches()
        reset_allocation_call_count()
        off = run_sweep(["sym6_145"], jobs=1, settings=self._settings(False),
                        configs=FAST_CONFIGS)
        # The unscreened side really recomputed its plans.
        assert allocation_call_count() > 0
        assert point_fingerprint(on["sym6_145"]) == point_fingerprint(
            off["sym6_145"]
        )

    def test_screening_off_is_byte_identical_sharded(self):
        self._drop_process_caches()
        on = run_sweep(["sym6_145"], jobs=3, settings=self._settings(True),
                       configs=FAST_CONFIGS)
        self._drop_process_caches()
        off = run_sweep(["sym6_145"], jobs=3, settings=self._settings(False),
                        configs=FAST_CONFIGS)
        assert point_fingerprint(on["sym6_145"]) == point_fingerprint(
            off["sym6_145"]
        )


class TestDesignCachePersistence:
    def _settings(self, path, **overrides):
        values = dict(
            yield_trials=300,
            frequency_local_trials=80,
            random_bus_seeds=(1,),
            design_cache_path=str(path),
        )
        values.update(overrides)
        return EvaluationSettings(**values)

    def test_in_process_sweep_persists_design_cache(self, tmp_path):
        from repro.design import allocation_call_count, reset_allocation_call_count
        from repro.evaluation import parallel

        path = tmp_path / "design_cache.json"
        settings = self._settings(path)
        first = run_sweep(["sym6_145"], jobs=1, settings=settings,
                          configs=FAST_CONFIGS)
        assert path.exists()

        # A warm second invocation — simulated as a fresh process by
        # dropping the process-local engines — re-derives identical points
        # with zero Algorithm 3 Monte Carlo searches.
        parallel.reset_worker_state()
        reset_allocation_call_count()
        second = run_sweep(["sym6_145"], jobs=1, settings=settings,
                           configs=FAST_CONFIGS)
        assert allocation_call_count() == 0
        assert point_fingerprint(first["sym6_145"]) == point_fingerprint(
            second["sym6_145"]
        )

    def test_multi_process_sweep_persists_design_cache(self, tmp_path):
        """Generation tasks merge their plans from inside the workers, so
        even --jobs N leaves a complete cache file behind."""
        from repro.design import DesignCache

        path = tmp_path / "design_cache.json"
        settings = self._settings(path)
        parallel = run_sweep(["sym6_145"], jobs=3, settings=settings,
                             configs=FAST_CONFIGS)
        assert path.exists()
        merged = DesignCache()
        assert merged.load(path) > 0

        # The file warms a subsequent serial run to identical output.
        serial = run_sweep(["sym6_145"], jobs=1, settings=settings,
                           configs=FAST_CONFIGS)
        assert point_fingerprint(parallel["sym6_145"]) == point_fingerprint(
            serial["sym6_145"]
        )

    def test_design_cache_does_not_change_results(self, tmp_path):
        cached = run_sweep(
            ["sym6_145"], jobs=1, settings=self._settings(tmp_path / "dc.json"),
            configs=FAST_CONFIGS,
        )
        plain = run_sweep(["sym6_145"], jobs=1, settings=FAST_SETTINGS,
                          configs=FAST_CONFIGS)
        assert point_fingerprint(cached["sym6_145"]) == point_fingerprint(
            plain["sym6_145"]
        )

    def test_warm_cache_with_ablation_strategy_is_jobs_invariant(self, tmp_path):
        """The acceptance-criteria grid: a warm design cache plus the
        analytic-guided ablation stays byte-identical for jobs 1 vs 4."""
        path = tmp_path / "design_cache.json"
        settings = self._settings(path, allocation_strategy="analytic-guided")
        run_sweep(["sym6_145"], jobs=1, settings=settings, configs=FAST_CONFIGS)
        assert path.exists()
        warm_serial = run_sweep(["sym6_145"], jobs=1, settings=settings,
                                configs=FAST_CONFIGS)
        warm_parallel = run_sweep(["sym6_145"], jobs=4, settings=settings,
                                  configs=FAST_CONFIGS)
        assert point_fingerprint(warm_serial["sym6_145"]) == point_fingerprint(
            warm_parallel["sym6_145"]
        )
