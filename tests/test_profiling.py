"""Tests for the program profiler (paper Section 3, Figure 4)."""

import numpy as np

from repro.circuit import QuantumCircuit, cx, h, measure
from repro.profiling import (
    coupling_degree_list,
    coupling_degrees,
    coupling_graph,
    coupling_strength_matrix,
    profile_circuit,
)


class TestPaperFigure4Example:
    """The worked example of the paper's Figure 4."""

    def test_strength_matrix_matches_figure(self, paper_example_circuit):
        matrix = coupling_strength_matrix(paper_example_circuit)
        expected = np.array(
            [
                [0, 1, 0, 0, 2],
                [1, 0, 0, 0, 1],
                [0, 0, 0, 0, 1],
                [0, 0, 0, 0, 1],
                [2, 1, 1, 1, 0],
            ]
        )
        assert (matrix == expected).all()

    def test_degree_list_matches_figure(self, paper_example_circuit):
        degrees = coupling_degree_list(paper_example_circuit)
        assert degrees[0] == (4, 5)
        assert degrees[1] == (0, 3)
        assert degrees[2] == (1, 2)
        assert dict(degrees)[2] == 1
        assert dict(degrees)[3] == 1

    def test_coupling_graph_edges(self, paper_example_circuit):
        graph = coupling_graph(paper_example_circuit)
        assert set(graph.edges()) == {(0, 1), (0, 4), (1, 4), (2, 4), (3, 4)}
        assert graph[0][4]["weight"] == 2

    def test_single_qubit_gates_and_measurements_ignored(self, paper_example_circuit):
        only_two_qubit = QuantumCircuit(5)
        for gate in paper_example_circuit:
            if gate.is_two_qubit:
                only_two_qubit.append(gate)
        full = coupling_strength_matrix(paper_example_circuit)
        reduced = coupling_strength_matrix(only_two_qubit)
        assert (full == reduced).all()


class TestCouplingMatrix:
    def test_matrix_is_symmetric(self, line_circuit):
        matrix = coupling_strength_matrix(line_circuit)
        assert (matrix == matrix.T).all()

    def test_diagonal_is_zero(self, line_circuit):
        assert (np.diag(coupling_strength_matrix(line_circuit)) == 0).all()

    def test_direction_of_cnot_is_irrelevant(self):
        forward = QuantumCircuit(2).extend([cx(0, 1)])
        backward = QuantumCircuit(2).extend([cx(1, 0)])
        assert (
            coupling_strength_matrix(forward) == coupling_strength_matrix(backward)
        ).all()

    def test_total_equals_twice_two_qubit_gate_count(self, line_circuit):
        matrix = coupling_strength_matrix(line_circuit)
        assert matrix.sum() == 2 * line_circuit.num_two_qubit_gates

    def test_empty_circuit_gives_zero_matrix(self):
        matrix = coupling_strength_matrix(QuantumCircuit(4))
        assert matrix.shape == (4, 4)
        assert matrix.sum() == 0

    def test_degrees_are_row_sums(self, line_circuit):
        matrix = coupling_strength_matrix(line_circuit)
        assert (coupling_degrees(line_circuit) == matrix.sum(axis=1)).all()


class TestDegreeList:
    def test_descending_order(self, line_circuit):
        degrees = [degree for _qubit, degree in coupling_degree_list(line_circuit)]
        assert degrees == sorted(degrees, reverse=True)

    def test_ties_broken_by_qubit_index(self):
        circuit = QuantumCircuit(4).extend([cx(0, 1), cx(2, 3)])
        assert coupling_degree_list(circuit) == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_every_qubit_appears_once(self, line_circuit):
        qubits = [qubit for qubit, _degree in coupling_degree_list(line_circuit)]
        assert sorted(qubits) == list(range(line_circuit.num_qubits))

    def test_isolated_qubit_has_zero_degree(self):
        circuit = QuantumCircuit(3).extend([cx(0, 1)])
        assert dict(coupling_degree_list(circuit))[2] == 0


class TestCircuitProfile:
    def test_profile_fields(self, paper_example_circuit):
        profile = profile_circuit(paper_example_circuit)
        assert profile.num_qubits == 5
        assert profile.num_two_qubit_gates == 6
        assert profile.num_gates == len(paper_example_circuit)
        assert profile.circuit_name == "figure4_example"

    def test_strength_accessor(self, paper_example_circuit):
        profile = profile_circuit(paper_example_circuit)
        assert profile.strength(0, 4) == 2
        assert profile.strength(4, 0) == 2
        assert profile.strength(2, 3) == 0

    def test_degree_accessor(self, paper_example_circuit):
        profile = profile_circuit(paper_example_circuit)
        assert profile.degree(4) == 5

    def test_neighbors(self, paper_example_circuit):
        profile = profile_circuit(paper_example_circuit)
        assert profile.neighbors(4) == [0, 1, 2, 3]
        assert profile.neighbors(2) == [4]

    def test_coupled_pairs_sorted_and_unique(self, paper_example_circuit):
        pairs = profile_circuit(paper_example_circuit).coupled_pairs()
        assert pairs == sorted(pairs)
        assert all(a < b for a, b in pairs)

    def test_max_strength(self, paper_example_circuit):
        assert profile_circuit(paper_example_circuit).max_strength == 2

    def test_graph_includes_isolated_vertices(self):
        circuit = QuantumCircuit(4).extend([cx(0, 1)])
        profile = profile_circuit(circuit)
        assert set(profile.graph.nodes()) == {0, 1, 2, 3}

    def test_summary_keys(self, paper_example_circuit):
        summary = profile_circuit(paper_example_circuit).summary()
        assert summary["num_coupled_pairs"] == 5
        assert summary["max_pair_strength"] == 2
