"""Tests for the benchmark circuit generators."""

import pytest

from repro.benchmarks import (
    BENCHMARK_NAMES,
    ReversibleSpec,
    benchmark_info,
    benchmark_suite,
    get_benchmark,
    ising_model_circuit,
    qft_circuit,
    reversible_circuit,
    uccsd_ansatz_circuit,
)
from repro.circuit.gates import ONE_QUBIT_GATES
from repro.profiling import profile_circuit

#: Qubit counts published in the paper's Figure 10 captions.
PAPER_QUBIT_COUNTS = {
    "adr4_197": 13,
    "rd84_142": 15,
    "misex1_241": 15,
    "square_root_7": 15,
    "radd_250": 13,
    "cm152a_212": 12,
    "dc1_220": 11,
    "z4_268": 11,
    "sym6_145": 7,
    "UCCSD_ansatz_8": 8,
    "ising_model_16": 16,
    "qft_16": 16,
}


def in_basis(circuit):
    """True when the circuit contains only CNOTs, single-qubit gates, and measurements."""
    return all(
        g.name in ONE_QUBIT_GATES or g.name in ("cx", "measure", "barrier") for g in circuit
    )


class TestLibrary:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 12

    @pytest.mark.parametrize("name", list(PAPER_QUBIT_COUNTS))
    def test_qubit_counts_match_paper(self, name):
        assert get_benchmark(name).num_qubits == PAPER_QUBIT_COUNTS[name]

    @pytest.mark.parametrize("name", list(PAPER_QUBIT_COUNTS))
    def test_benchmarks_in_cnot_basis(self, name):
        assert in_basis(get_benchmark(name))

    @pytest.mark.parametrize("name", list(PAPER_QUBIT_COUNTS))
    def test_benchmarks_are_deterministic(self, name):
        assert get_benchmark(name).gates == get_benchmark(name).gates

    @pytest.mark.parametrize("name", list(PAPER_QUBIT_COUNTS))
    def test_benchmarks_have_two_qubit_gates(self, name):
        assert get_benchmark(name).num_two_qubit_gates > 0

    def test_case_insensitive_lookup(self):
        assert get_benchmark("QFT_16").name == "qft_16"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("not_a_benchmark")

    def test_benchmark_info(self):
        info = benchmark_info("misex1_241")
        assert info.num_qubits == 15
        assert info.synthetic
        assert not benchmark_info("qft_16").synthetic

    def test_benchmark_suite_subset(self):
        suite = benchmark_suite(["qft_16", "sym6_145"])
        assert set(suite) == {"qft_16", "sym6_145"}

    def test_benchmark_suite_full(self):
        assert len(benchmark_suite()) == 12


class TestQft:
    def test_uniform_weight_two(self):
        profile = profile_circuit(qft_circuit(6))
        for i in range(6):
            for j in range(i + 1, 6):
                assert profile.strength(i, j) == 2

    def test_two_qubit_gate_count(self):
        n = 8
        circuit = qft_circuit(n, include_measurements=False)
        assert circuit.num_two_qubit_gates == n * (n - 1)

    def test_measurement_flag(self):
        assert qft_circuit(4, include_measurements=False).num_measurements == 0
        assert qft_circuit(4, include_measurements=True).num_measurements == 4

    def test_undecomposed_keeps_cp_gates(self):
        circuit = qft_circuit(4, decomposed=False)
        assert any(g.name == "cp" for g in circuit)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            qft_circuit(0)


class TestIsing:
    def test_chain_coupling_only(self):
        profile = profile_circuit(ising_model_circuit(10))
        assert all(j == i + 1 for i, j in profile.coupled_pairs())

    def test_uniform_chain_weights(self):
        profile = profile_circuit(ising_model_circuit(10, trotter_steps=4))
        weights = {profile.strength(i, i + 1) for i in range(9)}
        assert weights == {8}  # 2 CNOTs per ZZ per step * 4 steps

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ising_model_circuit(1)
        with pytest.raises(ValueError):
            ising_model_circuit(4, trotter_steps=0)


class TestUccsd:
    def test_chain_weights_dominate(self):
        profile = profile_circuit(uccsd_ansatz_circuit(8))
        adjacent = min(profile.strength(i, i + 1) for i in range(7))
        non_adjacent = max(
            profile.strength(i, j) for i in range(8) for j in range(i + 2, 8)
        )
        assert adjacent > non_adjacent

    def test_hartree_fock_preparation_present(self):
        circuit = uccsd_ansatz_circuit(8, num_occupied=4)
        x_gates = [g for g in circuit.gates[:4] if g.name == "x"]
        assert len(x_gates) == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            uccsd_ansatz_circuit(2)
        with pytest.raises(ValueError):
            uccsd_ansatz_circuit(8, num_occupied=8)


class TestReversible:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReversibleSpec(name="bad", num_qubits=4, num_inputs=4, num_terms=10)
        with pytest.raises(ValueError):
            ReversibleSpec(name="bad", num_qubits=4, num_inputs=2, num_terms=0)

    def test_same_spec_gives_same_circuit(self):
        spec = ReversibleSpec(name="test", num_qubits=6, num_inputs=3, num_terms=20)
        assert reversible_circuit(spec).gates == reversible_circuit(spec).gates

    def test_different_names_give_different_circuits(self):
        spec_a = ReversibleSpec(name="a", num_qubits=6, num_inputs=3, num_terms=20)
        spec_b = ReversibleSpec(name="b", num_qubits=6, num_inputs=3, num_terms=20)
        assert reversible_circuit(spec_a).gates != reversible_circuit(spec_b).gates

    def test_measurements_on_output_qubits_only(self):
        spec = ReversibleSpec(name="m", num_qubits=6, num_inputs=3, num_terms=10)
        circuit = reversible_circuit(spec)
        measured = {g.qubits[0] for g in circuit if g.name == "measure"}
        assert measured == {3, 4, 5}

    def test_clustered_pattern_not_uniform(self):
        profile = profile_circuit(get_benchmark("misex1_241"))
        strengths = [profile.strength(a, b) for a, b in profile.coupled_pairs()]
        assert max(strengths) > 3 * (sum(strengths) / len(strengths))
