"""Tests for the Monte Carlo yield simulator (paper Section 4.3.1)."""

import numpy as np
import pytest

from repro.collision import YieldSimulator, estimate_yield
from repro.hardware import Architecture, Lattice, ibm_16q_2x8, ibm_20q_4x5
from repro.hardware.frequency import five_frequency_scheme


def chain_architecture(num_qubits, frequencies=None):
    """A 1 x num_qubits chain with optional explicit frequencies."""
    lattice = Lattice.rectangle(1, num_qubits)
    return Architecture.from_layout("chain", lattice, frequencies=frequencies or {})


class TestBasicBehaviour:
    def test_zero_noise_good_design_yields_one(self):
        arch = chain_architecture(3, {0: 5.05, 1: 5.17, 2: 5.29})
        estimate = YieldSimulator(trials=500, sigma_ghz=0.0, seed=1).estimate(arch)
        assert estimate.yield_rate == 1.0
        assert estimate.successes == 500

    def test_zero_noise_colliding_design_yields_zero(self):
        arch = chain_architecture(2, {0: 5.10, 1: 5.11})
        estimate = YieldSimulator(trials=200, sigma_ghz=0.0, seed=1).estimate(arch)
        assert estimate.yield_rate == 0.0

    def test_missing_frequencies_rejected(self):
        arch = chain_architecture(3)
        with pytest.raises(ValueError):
            YieldSimulator(trials=10).estimate(arch)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            YieldSimulator(trials=0)
        with pytest.raises(ValueError):
            YieldSimulator(sigma_ghz=-1.0)

    def test_seeded_runs_are_reproducible(self):
        arch = ibm_16q_2x8()
        first = YieldSimulator(trials=2000, seed=42).estimate(arch)
        second = YieldSimulator(trials=2000, seed=42).estimate(arch)
        assert first.yield_rate == second.yield_rate

    def test_estimate_fields_consistent(self):
        arch = chain_architecture(4, {0: 5.04, 1: 5.16, 2: 5.28, 3: 5.08})
        estimate = YieldSimulator(trials=1000, seed=3).estimate(arch)
        assert estimate.trials == 1000
        assert estimate.successes == round(estimate.yield_rate * 1000)
        assert 0.0 <= estimate.failure_rate <= 1.0
        assert estimate.standard_error() >= 0.0

    def test_estimate_yield_convenience_wrapper(self):
        arch = chain_architecture(3, {0: 5.05, 1: 5.17, 2: 5.29})
        assert estimate_yield(arch, trials=200, sigma_ghz=0.0).yield_rate == 1.0


class TestPhysicalTrends:
    """Directional checks that mirror the paper's qualitative claims."""

    def test_more_noise_means_lower_yield(self):
        arch = chain_architecture(5, {0: 5.04, 1: 5.16, 2: 5.28, 3: 5.08, 4: 5.20})
        low_noise = YieldSimulator(trials=4000, sigma_ghz=0.010, seed=5).estimate(arch)
        high_noise = YieldSimulator(trials=4000, sigma_ghz=0.060, seed=5).estimate(arch)
        assert low_noise.yield_rate > high_noise.yield_rate

    def test_more_connections_mean_lower_yield(self):
        sparse = ibm_16q_2x8(use_four_qubit_buses=False)
        dense = ibm_16q_2x8(use_four_qubit_buses=True)
        simulator = YieldSimulator(trials=6000, seed=9)
        assert simulator.estimate(sparse).yield_rate > simulator.estimate(dense).yield_rate

    def test_larger_chip_has_lower_yield(self):
        simulator = YieldSimulator(trials=6000, seed=9)
        yield_16 = simulator.estimate(ibm_16q_2x8()).yield_rate
        yield_20 = simulator.estimate(ibm_20q_4x5()).yield_rate
        assert yield_20 <= yield_16

    def test_paper_motivation_low_yield_at_current_precision(self):
        """Section 1: at sigma ~ 130 MHz a 16+ qubit chip yields below 1%."""
        arch = ibm_16q_2x8(use_four_qubit_buses=True)
        estimate = YieldSimulator(trials=4000, sigma_ghz=0.130, seed=2).estimate(arch)
        assert estimate.yield_rate < 0.01

    def test_isolated_qubits_always_yield(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (5, 5)})
        arch = Architecture(
            name="no-connections", lattice=lattice, buses=[], frequencies={0: 5.1, 1: 5.1}
        )
        estimate = YieldSimulator(trials=500, sigma_ghz=0.05, seed=1).estimate(arch)
        assert estimate.yield_rate == 1.0


class TestEstimateFromArrays:
    def test_local_region_interface(self):
        simulator = YieldSimulator(trials=2000, sigma_ghz=0.0, seed=1)
        estimate = simulator.estimate_from_arrays(
            np.array([5.05, 5.17, 5.29]), pairs=[(0, 1), (1, 2)], triples=[(1, 0, 2)]
        )
        assert estimate.yield_rate == 1.0

    def test_collision_mask_shape(self):
        simulator = YieldSimulator(trials=10, seed=1)
        sampled = np.full((10, 3), 5.1)
        mask = simulator.collision_mask(sampled, pairs=[(0, 1)], triples=[])
        assert mask.shape == (10,)
        assert mask.all()  # identical frequencies always collide (condition 1)
