"""Tests for the Monte Carlo yield simulator (paper Section 4.3.1)."""

import numpy as np
import pytest

from repro.collision import YieldSimulator, estimate_yield
from repro.hardware import Architecture, Lattice, ibm_16q_2x8, ibm_20q_4x5


def chain_architecture(num_qubits, frequencies=None):
    """A 1 x num_qubits chain with optional explicit frequencies."""
    lattice = Lattice.rectangle(1, num_qubits)
    return Architecture.from_layout("chain", lattice, frequencies=frequencies or {})


class TestBasicBehaviour:
    def test_zero_noise_good_design_yields_one(self):
        arch = chain_architecture(3, {0: 5.05, 1: 5.17, 2: 5.29})
        estimate = YieldSimulator(trials=500, sigma_ghz=0.0, seed=1).estimate(arch)
        assert estimate.yield_rate == 1.0
        assert estimate.successes == 500

    def test_zero_noise_colliding_design_yields_zero(self):
        arch = chain_architecture(2, {0: 5.10, 1: 5.11})
        estimate = YieldSimulator(trials=200, sigma_ghz=0.0, seed=1).estimate(arch)
        assert estimate.yield_rate == 0.0

    def test_missing_frequencies_rejected(self):
        arch = chain_architecture(3)
        with pytest.raises(ValueError):
            YieldSimulator(trials=10).estimate(arch)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            YieldSimulator(trials=0)
        with pytest.raises(ValueError):
            YieldSimulator(sigma_ghz=-1.0)

    def test_seeded_runs_are_reproducible(self):
        arch = ibm_16q_2x8()
        first = YieldSimulator(trials=2000, seed=42).estimate(arch)
        second = YieldSimulator(trials=2000, seed=42).estimate(arch)
        assert first.yield_rate == second.yield_rate

    def test_estimate_fields_consistent(self):
        arch = chain_architecture(4, {0: 5.04, 1: 5.16, 2: 5.28, 3: 5.08})
        estimate = YieldSimulator(trials=1000, seed=3).estimate(arch)
        assert estimate.trials == 1000
        assert estimate.successes == round(estimate.yield_rate * 1000)
        assert 0.0 <= estimate.failure_rate <= 1.0
        assert estimate.standard_error() >= 0.0

    def test_estimate_yield_convenience_wrapper(self):
        arch = chain_architecture(3, {0: 5.05, 1: 5.17, 2: 5.29})
        assert estimate_yield(arch, trials=200, sigma_ghz=0.0).yield_rate == 1.0


class TestPhysicalTrends:
    """Directional checks that mirror the paper's qualitative claims."""

    def test_more_noise_means_lower_yield(self):
        arch = chain_architecture(5, {0: 5.04, 1: 5.16, 2: 5.28, 3: 5.08, 4: 5.20})
        low_noise = YieldSimulator(trials=4000, sigma_ghz=0.010, seed=5).estimate(arch)
        high_noise = YieldSimulator(trials=4000, sigma_ghz=0.060, seed=5).estimate(arch)
        assert low_noise.yield_rate > high_noise.yield_rate

    def test_more_connections_mean_lower_yield(self):
        sparse = ibm_16q_2x8(use_four_qubit_buses=False)
        dense = ibm_16q_2x8(use_four_qubit_buses=True)
        simulator = YieldSimulator(trials=6000, seed=9)
        assert simulator.estimate(sparse).yield_rate > simulator.estimate(dense).yield_rate

    def test_larger_chip_has_lower_yield(self):
        simulator = YieldSimulator(trials=6000, seed=9)
        yield_16 = simulator.estimate(ibm_16q_2x8()).yield_rate
        yield_20 = simulator.estimate(ibm_20q_4x5()).yield_rate
        assert yield_20 <= yield_16

    def test_paper_motivation_low_yield_at_current_precision(self):
        """Section 1: at sigma ~ 130 MHz a 16+ qubit chip yields below 1%."""
        arch = ibm_16q_2x8(use_four_qubit_buses=True)
        estimate = YieldSimulator(trials=4000, sigma_ghz=0.130, seed=2).estimate(arch)
        assert estimate.yield_rate < 0.01

    def test_isolated_qubits_always_yield(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (5, 5)})
        arch = Architecture(
            name="no-connections", lattice=lattice, buses=[], frequencies={0: 5.1, 1: 5.1}
        )
        estimate = YieldSimulator(trials=500, sigma_ghz=0.05, seed=1).estimate(arch)
        assert estimate.yield_rate == 1.0


class TestEstimateFromArrays:
    def test_local_region_interface(self):
        simulator = YieldSimulator(trials=2000, sigma_ghz=0.0, seed=1)
        estimate = simulator.estimate_from_arrays(
            np.array([5.05, 5.17, 5.29]), pairs=[(0, 1), (1, 2)], triples=[(1, 0, 2)]
        )
        assert estimate.yield_rate == 1.0

    def test_collision_mask_shape(self):
        simulator = YieldSimulator(trials=10, seed=1)
        sampled = np.full((10, 3), 5.1)
        mask = simulator.collision_mask(sampled, pairs=[(0, 1)], triples=[])
        assert mask.shape == (10,)
        assert mask.all()  # identical frequencies always collide (condition 1)


class TestDegenerateInputs:
    """Regression tests: empty pair/triple lists and single-qubit regions."""

    def test_collision_mask_with_no_pairs_or_triples_is_all_success(self):
        simulator = YieldSimulator(trials=8, seed=1)
        sampled = np.full((8, 3), 5.1)
        mask = simulator.collision_mask(sampled, pairs=[], triples=[])
        assert mask.shape == (8,)
        assert not mask.any()

    def test_estimate_from_arrays_single_qubit_always_succeeds(self):
        simulator = YieldSimulator(trials=500, sigma_ghz=0.1, seed=3)
        estimate = simulator.estimate_from_arrays(np.array([5.17]), pairs=[], triples=[])
        assert estimate.yield_rate == 1.0
        assert estimate.successes == 500

    def test_estimate_batch_single_qubit_always_succeeds(self):
        simulator = YieldSimulator(trials=300, sigma_ghz=0.1, seed=3)
        batch = np.array([[5.05], [5.17], [5.29]])
        estimates = simulator.estimate_batch(batch, pairs=[], triples=[])
        assert len(estimates) == 3
        assert all(e.successes == 300 for e in estimates)

    def test_single_qubit_architecture_estimate(self):
        arch = chain_architecture(1, {0: 5.17})
        estimate = YieldSimulator(trials=100, sigma_ghz=0.1, seed=5).estimate(arch)
        assert estimate.yield_rate == 1.0


class TestEstimateBatch:
    def chain(self):
        pairs = [(0, 1), (1, 2), (2, 3)]
        triples = [(1, 0, 2), (2, 1, 3)]
        return pairs, triples

    def test_batch_of_one_matches_estimate_from_arrays(self):
        pairs, triples = self.chain()
        frequencies = np.array([5.04, 5.16, 5.28, 5.08])
        simulator = YieldSimulator(trials=1500, seed=21)
        single = simulator.estimate_from_arrays(frequencies, pairs, triples)
        assert simulator.estimate_batch(frequencies[None, :], pairs, triples) == [single]

    def test_batch_matches_sequential_loop(self):
        pairs, triples = self.chain()
        rng = np.random.default_rng(4)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(40, 4))
        simulator = YieldSimulator(trials=800, seed=9)
        sequential = [simulator.estimate_from_arrays(row, pairs, triples) for row in batch]
        assert simulator.estimate_batch(batch, pairs, triples) == sequential

    def test_chunking_preserves_results(self):
        pairs, triples = self.chain()
        rng = np.random.default_rng(4)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(17, 4))
        simulator = YieldSimulator(trials=300, seed=9)
        reference = simulator.estimate_batch(batch, pairs, triples)
        assert simulator.estimate_batch(
            batch, pairs, triples, max_chunk_elements=1
        ) == reference

    def test_one_dimensional_input_treated_as_batch_of_one(self):
        pairs, triples = self.chain()
        frequencies = np.array([5.04, 5.16, 5.28, 5.08])
        simulator = YieldSimulator(trials=400, seed=2)
        assert simulator.estimate_batch(frequencies, pairs, triples) == [
            simulator.estimate_from_arrays(frequencies, pairs, triples)
        ]

    def test_single_candidate_matches_chunked_batch_kernel(self):
        """Regression: a batch of one must run through the same chunked
        kernel as larger batches — bit-identical to its row inside any
        batch — instead of the old divergent ``estimate_from_arrays``
        special case."""
        pairs, triples = self.chain()
        rng = np.random.default_rng(12)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(2, 4))
        simulator = YieldSimulator(trials=900, seed=13)
        alone = simulator.estimate_batch(batch[:1], pairs, triples)
        together = simulator.estimate_batch(batch, pairs, triples)
        assert alone[0] == together[0]
        # And the raw counts agree with failure_counts directly.
        counts = simulator.failure_counts(batch[:1], pairs, triples)
        assert alone[0].successes == simulator.trials - int(counts[0])

    def test_chunk_smaller_than_one_candidate_row(self):
        """max_chunk_elements below trials x qubits still yields one-row
        chunks with unchanged results."""
        pairs, triples = self.chain()
        rng = np.random.default_rng(5)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(6, 4))
        simulator = YieldSimulator(trials=250, seed=8)
        reference = simulator.failure_counts(batch, pairs, triples)
        tiny = simulator.failure_counts(batch, pairs, triples, max_chunk_elements=1)
        assert (tiny == reference).all()

    def test_chunk_exactly_one_candidate_row(self):
        pairs, triples = self.chain()
        rng = np.random.default_rng(6)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(5, 4))
        trials = 250
        simulator = YieldSimulator(trials=trials, seed=8)
        reference = simulator.failure_counts(batch, pairs, triples)
        one_row = simulator.failure_counts(
            batch, pairs, triples, max_chunk_elements=trials * batch.shape[1]
        )
        assert (one_row == reference).all()

    def test_chunk_not_dividing_candidate_count(self):
        """7 candidates in chunks of 3 (3 + 3 + 1) match the unchunked run."""
        pairs, triples = self.chain()
        rng = np.random.default_rng(7)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(7, 4))
        trials = 301  # a trial count that divides nothing in sight
        simulator = YieldSimulator(trials=trials, seed=8)
        reference = simulator.failure_counts(batch, pairs, triples)
        chunked = simulator.failure_counts(
            batch, pairs, triples, max_chunk_elements=3 * trials * batch.shape[1]
        )
        assert (chunked == reference).all()
        estimates = simulator.estimate_batch(
            batch, pairs, triples, max_chunk_elements=3 * trials * batch.shape[1]
        )
        assert [trials - e.successes for e in estimates] == [int(c) for c in reference]

    def test_exotic_thresholds_fall_back_to_generic_kernel(self):
        from repro.collision import CollisionThresholds

        # Thresholds wider than |delta| defeat the folded interval kernel;
        # the generic fallback must still match the sequential loop.
        wide = CollisionThresholds(condition_3_ghz=0.5)
        simulator = YieldSimulator(trials=200, seed=6, thresholds=wide)
        assert not simulator._foldable_thresholds()
        pairs, triples = self.chain()
        rng = np.random.default_rng(8)
        batch = 5.17 + rng.normal(0.0, 0.05, size=(5, 4))
        sequential = [simulator.estimate_from_arrays(row, pairs, triples) for row in batch]
        assert simulator.estimate_batch(batch, pairs, triples) == sequential
