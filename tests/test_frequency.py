"""Tests for frequency schemes and constants."""

import numpy as np
import pytest

from repro.hardware.frequency import (
    ALLOWED_FREQUENCY_MAX_GHZ,
    ALLOWED_FREQUENCY_MIN_GHZ,
    FIVE_FREQUENCY_VALUES_GHZ,
    candidate_frequencies,
    five_frequency_label,
    five_frequency_scheme,
    middle_frequency,
    validate_frequencies,
)
from repro.hardware.lattice import Lattice


class TestConstants:
    def test_allowed_band(self):
        assert ALLOWED_FREQUENCY_MIN_GHZ == pytest.approx(5.00)
        assert ALLOWED_FREQUENCY_MAX_GHZ == pytest.approx(5.34)

    def test_five_frequency_values_are_arithmetic_progression(self):
        values = np.array(FIVE_FREQUENCY_VALUES_GHZ)
        steps = np.diff(values)
        assert np.allclose(steps, steps[0])
        assert values[0] == pytest.approx(5.00)
        assert values[-1] == pytest.approx(5.27)

    def test_middle_frequency(self):
        assert middle_frequency() == pytest.approx(5.17)


class TestCandidateFrequencies:
    def test_default_grid_has_35_points(self):
        candidates = candidate_frequencies()
        assert len(candidates) == 35
        assert candidates[0] == pytest.approx(5.00)
        assert candidates[-1] == pytest.approx(5.34)

    def test_custom_step(self):
        candidates = candidate_frequencies(0.02)
        assert len(candidates) == 18

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            candidate_frequencies(0)


class TestFiveFrequencyScheme:
    def test_labels_follow_figure9_pattern(self):
        # Row 0 advances by one label per column; row 1 is offset by two.
        assert [five_frequency_label((x, 0)) for x in range(5)] == [0, 1, 2, 3, 4]
        assert [five_frequency_label((x, 1)) for x in range(5)] == [2, 3, 4, 0, 1]

    def test_adjacent_nodes_never_share_a_label(self):
        for x in range(6):
            for y in range(6):
                label = five_frequency_label((x, y))
                assert label != five_frequency_label((x + 1, y))
                assert label != five_frequency_label((x, y + 1))

    def test_scheme_assigns_every_qubit(self):
        lattice = Lattice.rectangle(4, 5)
        scheme = five_frequency_scheme(lattice.coordinates())
        assert set(scheme) == set(lattice.qubits)
        assert set(scheme.values()) <= set(FIVE_FREQUENCY_VALUES_GHZ)

    def test_scheme_within_allowed_band(self):
        lattice = Lattice.rectangle(2, 8)
        assert validate_frequencies(five_frequency_scheme(lattice.coordinates())) == []


class TestValidation:
    def test_out_of_band_detected(self):
        problems = validate_frequencies({0: 4.9, 1: 5.2})
        assert len(problems) == 1
        assert "qubit 0" in problems[0]

    def test_all_in_band_passes(self):
        assert validate_frequencies({0: 5.0, 1: 5.34}) == []
