"""Tests for the exact interval-count screening engine.

Covers three layers:

* the raw bound kernel (:mod:`repro.collision.screening`) — validity and
  tightness of the per-candidate joint-count bounds against the joint
  Monte Carlo kernel on randomized local regions;
* the screen-then-verify entry point
  (:meth:`~repro.collision.yield_simulator.YieldSimulator.screened_failure_counts`)
  — the winner-preservation contract: every minimum-count candidate is
  known with its exact joint count;
* the allocator integration — Algorithm 3 produces bit-identical plans
  with screening (and the shared ranking caches) on or off, for every
  allocation strategy.
"""

import numpy as np
import pytest

from repro.collision import (
    CollisionThresholds,
    YieldSimulator,
    reset_screening_stats,
    screening_applicable,
    screening_stats,
)
from repro.design import ALLOCATION_STRATEGIES, FrequencyAllocator
from repro.hardware import Architecture, Lattice
from repro.hardware.frequency import candidate_frequencies


def random_region(rng, num_qubits=None):
    """A randomized local region shaped like the allocator's: every pair
    and triple involves the scanned qubit (column ``q``)."""
    n = int(num_qubits if num_qubits is not None else rng.integers(2, 7))
    q = int(rng.integers(0, n))
    base = np.round(rng.uniform(5.0, 5.34, size=n), 2)
    others = [i for i in range(n) if i != q]
    pairs = [((q, o) if rng.random() < 0.5 else (o, q))
             for o in others if rng.random() < 0.8]
    triples = []
    if n >= 3:
        for _ in range(int(rng.integers(0, 6))):
            i, k = rng.choice(others, size=2, replace=False)
            role = rng.random()
            if role < 0.34:
                triples.append((q, int(i), int(k)))
            elif role < 0.67:
                triples.append((int(i), q, int(k)))
            else:
                triples.append((int(i), int(k), q))
    return q, base, pairs, triples


class TestScreeningApplicable:
    def test_paper_constants_are_applicable(self):
        simulator = YieldSimulator(trials=100, seed=1)
        assert screening_applicable(simulator.delta_ghz, simulator.thresholds)
        assert simulator.screening_enabled()

    def test_positive_anharmonicity_rejected(self):
        assert not screening_applicable(0.34, CollisionThresholds())

    def test_overlapping_interval_geometry_rejected(self):
        # A condition-3 threshold wider than |delta| merges the carve-outs;
        # this also defeats the folded joint kernel.
        wide = CollisionThresholds(condition_3_ghz=0.5)
        assert not screening_applicable(-0.34, wide)
        assert not YieldSimulator(trials=100, seed=1, thresholds=wide).screening_enabled()

    def test_bounds_refused_when_not_applicable(self):
        simulator = YieldSimulator(
            trials=100, seed=1, thresholds=CollisionThresholds(condition_3_ghz=0.5)
        )
        with pytest.raises(ValueError, match="not applicable"):
            simulator.candidate_failure_bounds(
                candidate_frequencies(), 0, np.array([0.0, 5.1]), [(0, 1)], []
            )

    def test_unsorted_candidates_rejected(self):
        simulator = YieldSimulator(trials=100, seed=1)
        descending = candidate_frequencies()[::-1]
        with pytest.raises(ValueError, match="ascending"):
            simulator.candidate_failure_bounds(
                descending, 0, np.array([0.0, 5.1]), [(0, 1)], []
            )
        with pytest.raises(ValueError, match="ascending"):
            simulator.screened_failure_counts(
                descending, 0, np.array([0.0, 5.1]), [(0, 1)], []
            )


class TestBoundValidity:
    """The bounds sandwich the joint kernel's counts on random regions."""

    TRIALS = 700

    def test_bounds_contain_joint_counts(self):
        rng = np.random.default_rng(7)
        simulator = YieldSimulator(trials=self.TRIALS, sigma_ghz=0.03, seed=3)
        candidates = candidate_frequencies()
        checked = 0
        for case in range(60):
            q, base, pairs, triples = random_region(rng)
            if not pairs and not triples:
                continue
            noise = np.random.default_rng(case).normal(
                0.0, 0.03, size=(self.TRIALS, base.shape[0])
            )
            batch = np.repeat(base[None, :], candidates.shape[0], axis=0)
            batch[:, q] = candidates
            exact = simulator.failure_counts(batch, pairs, triples, noise=noise)
            bounds = simulator.candidate_failure_bounds(
                candidates, q, base, pairs, triples, noise=noise
            )
            assert (bounds.lower <= exact).all()
            assert (bounds.upper >= exact).all()
            checked += 1
        assert checked > 30

    def test_single_event_regions_are_pinned_exactly(self):
        """One pair connection: the interval counts are the joint counts."""
        simulator = YieldSimulator(trials=self.TRIALS, sigma_ghz=0.03, seed=3)
        candidates = candidate_frequencies()
        base = np.array([0.0, 5.13])
        noise = np.random.default_rng(5).normal(0.0, 0.03, size=(self.TRIALS, 2))
        batch = np.repeat(base[None, :], candidates.shape[0], axis=0)
        batch[:, 0] = candidates
        exact = simulator.failure_counts(batch, [(0, 1)], [], noise=noise)
        bounds = simulator.candidate_failure_bounds(
            candidates, 0, base, [(0, 1)], [], noise=noise
        )
        assert (bounds.lower == exact).all()
        assert (bounds.upper == exact).all()
        assert bounds.exact.all()

    def test_candidate_subset_supported(self):
        """Pruning strategies rank ascending subsets of the grid."""
        simulator = YieldSimulator(trials=self.TRIALS, sigma_ghz=0.03, seed=3)
        subset = candidate_frequencies()[::3]
        base = np.array([0.0, 5.08, 5.2])
        pairs, triples = [(0, 1), (0, 2)], [(0, 1, 2)]
        noise = np.random.default_rng(9).normal(0.0, 0.03, size=(self.TRIALS, 3))
        batch = np.repeat(base[None, :], subset.shape[0], axis=0)
        batch[:, 0] = subset
        exact = simulator.failure_counts(batch, pairs, triples, noise=noise)
        bounds = simulator.candidate_failure_bounds(
            subset, 0, base, pairs, triples, noise=noise
        )
        assert (bounds.lower <= exact).all()
        assert (bounds.upper >= exact).all()


class TestScreenedCounts:
    """The screen-then-verify contract of ``screened_failure_counts``."""

    TRIALS = 700

    def test_minimum_candidates_always_known_and_exact(self):
        rng = np.random.default_rng(11)
        simulator = YieldSimulator(trials=self.TRIALS, sigma_ghz=0.03, seed=3)
        candidates = candidate_frequencies()
        for case in range(40):
            q, base, pairs, triples = random_region(rng)
            if not pairs and not triples:
                continue
            noise = np.random.default_rng(1000 + case).normal(
                0.0, 0.03, size=(self.TRIALS, base.shape[0])
            )
            batch = np.repeat(base[None, :], candidates.shape[0], axis=0)
            batch[:, q] = candidates
            exact = simulator.failure_counts(batch, pairs, triples, noise=noise)
            screened = simulator.screened_failure_counts(
                candidates, q, base, pairs, triples, noise=noise
            )
            minimum = exact.min()
            # Every minimum-count candidate is known, with the exact count.
            assert screened.known[exact == minimum].all()
            assert (screened.counts[screened.known] == exact[screened.known]).all()
            assert screened.counts[screened.known].min() == minimum

    def test_no_connections_all_zero_and_known(self):
        simulator = YieldSimulator(trials=200, sigma_ghz=0.03, seed=3)
        screened = simulator.screened_failure_counts(
            candidate_frequencies(), 0, np.array([0.0]), [], []
        )
        assert (screened.counts == 0).all()
        assert screened.known.all()
        assert screened.pruned == 0

    def test_degrades_to_joint_kernel_on_exotic_thresholds(self):
        simulator = YieldSimulator(
            trials=200, sigma_ghz=0.03, seed=3,
            thresholds=CollisionThresholds(condition_3_ghz=0.5),
        )
        candidates = candidate_frequencies()
        base = np.array([0.0, 5.13])
        screened = simulator.screened_failure_counts(
            candidates, 0, base, [(0, 1)], []
        )
        batch = np.repeat(base[None, :], candidates.shape[0], axis=0)
        batch[:, 0] = candidates
        exact = simulator.failure_counts(batch, [(0, 1)], [])
        assert screened.known.all()
        assert (screened.counts == exact).all()
        assert screened.bounds is None

    def test_stats_accumulate_and_reset(self):
        simulator = YieldSimulator(trials=200, sigma_ghz=0.03, seed=3)
        reset_screening_stats()
        simulator.screened_failure_counts(
            candidate_frequencies(), 0, np.array([0.0, 5.13]), [(0, 1)], []
        )
        stats = screening_stats()
        assert stats["calls"] == 1
        assert stats["candidates"] == candidate_frequencies().shape[0]
        previous = reset_screening_stats()
        assert previous == stats
        assert screening_stats()["calls"] == 0


class TestSessionScreeningStats:
    """Phase counters reset coherently and stay session-scoped."""

    PHASE_KEYS = ("pack_ns", "merge_ns", "dispute_ns", "joint_ns")

    def _run_screen(self):
        simulator = YieldSimulator(trials=200, sigma_ghz=0.03, seed=3)
        simulator.screened_failure_counts(
            candidate_frequencies(), 0, np.array([0.0, 5.13]), [(0, 1)], []
        )

    def test_phase_counters_reset_with_the_logical_counters(self):
        reset_screening_stats()
        self._run_screen()
        stats = screening_stats()
        assert stats["pack_ns"] > 0
        for key in self.PHASE_KEYS:
            assert stats[key] >= 0
        previous = reset_screening_stats()
        assert previous == stats
        cleared = screening_stats()
        for key in ("calls",) + self.PHASE_KEYS:
            assert cleared[key] == 0
        assert cleared["backend"] == stats["backend"]

    def test_new_session_starts_from_zero_counts(self):
        from repro.runtime.session import Session

        reset_screening_stats()
        stale = Session()
        self._run_screen()
        assert stale.screening_stats()["calls"] == 1
        fresh = Session()
        fresh_stats = fresh.screening_stats()
        assert fresh_stats["calls"] == 0
        for key in self.PHASE_KEYS:
            assert fresh_stats[key] == 0
        self._run_screen()
        assert fresh.screening_stats()["calls"] == 1
        assert stale.screening_stats()["calls"] == 2

    def test_global_reset_after_construction_clamps_to_current(self):
        from repro.runtime.session import Session

        reset_screening_stats()
        self._run_screen()
        self._run_screen()
        session = Session()  # watermark: calls == 2
        reset_screening_stats()
        self._run_screen()
        # Raw count (1) sits below the watermark (2): the session reports
        # the post-reset count instead of a negative delta.
        assert session.screening_stats()["calls"] == 1


class TestAllocatorIdentity:
    """Screening and the shared ranking caches never change a plan."""

    def grid(self, rows, cols):
        return Architecture.from_layout(f"g{rows}x{cols}", Lattice.rectangle(rows, cols))

    @pytest.mark.parametrize("strategy", sorted(ALLOCATION_STRATEGIES))
    def test_screening_is_bit_identical_per_strategy(self, strategy):
        # shared_caches off on both sides: the ranking memo's keys
        # deliberately exclude the screening flag, so leaving it on would
        # serve the second run from the first and compare nothing.
        arch = self.grid(2, 4)
        screened = FrequencyAllocator(
            local_trials=500, seed=11, strategy=strategy,
            screening=True, shared_caches=False,
        ).allocate(arch)
        direct = FrequencyAllocator(
            local_trials=500, seed=11, strategy=strategy,
            screening=False, shared_caches=False,
        ).allocate(arch)
        assert screened == direct

    def test_shared_caches_are_bit_identical(self):
        from repro.design import reset_shared_caches

        arch = self.grid(3, 3)
        reset_shared_caches()  # the default path computes fresh, via screening
        cached = FrequencyAllocator(local_trials=500, seed=7).allocate(arch)
        uncached = FrequencyAllocator(
            local_trials=500, seed=7, screening=False, shared_caches=False
        ).allocate(arch)
        assert cached == uncached

    def test_ranking_memo_serves_repeat_allocations_identically(self):
        arch = self.grid(2, 3)
        allocator = FrequencyAllocator(local_trials=400, seed=11)
        first = allocator.allocate(arch)
        # The second allocation is served almost entirely from the
        # process-wide ranking memo; it must not drift.
        second = allocator.allocate(arch)
        assert first == second

    def test_zero_sigma_tie_break_unchanged(self):
        """sigma = 0 collapses the noise; the documented mid-band
        tie-break must survive the screened path."""
        from repro.hardware.frequency import middle_frequency

        arch = Architecture.from_layout("chain", Lattice.rectangle(1, 2))
        frequencies = FrequencyAllocator(sigma_ghz=0.0, local_trials=10).allocate(arch)
        center = arch.lattice.central_qubit()
        other = (set(arch.qubits) - {center}).pop()
        assert frequencies[center] == pytest.approx(middle_frequency())
        assert frequencies[other] == pytest.approx(5.15)
