"""Tests for the evaluation harness: configurations, experiment, Pareto, analysis."""

import pytest

from repro.benchmarks import get_benchmark
from repro.evaluation import (
    EvaluationSettings,
    ExperimentConfig,
    architectures_for_config,
    evaluate_benchmark,
    evaluate_suite,
    figure5_data,
    figure10_rows,
    format_figure10_table,
    frequency_allocation_gain,
    headline_comparisons,
    is_dominated,
    layout_effect_gain,
    pareto_front,
)
from repro.evaluation.analysis import (
    compare_points,
    geometric_mean_yield_ratio,
    mean_performance_change,
)
from repro.evaluation.experiment import DataPoint
from repro.evaluation.figures import figure10_series
from repro.evaluation.pareto import dominates_all

FAST_SETTINGS = EvaluationSettings(
    yield_trials=500, frequency_local_trials=200, random_bus_seeds=(1,)
)


@pytest.fixture(scope="module")
def sym6_result():
    """Shared evaluation result for the smallest benchmark (fast settings)."""
    return evaluate_benchmark(get_benchmark("sym6_145"), settings=FAST_SETTINGS)


def make_point(yield_rate, gates, config=ExperimentConfig.EFF_FULL, buses=0, name="p"):
    return DataPoint(
        benchmark="b",
        config=config,
        architecture_name=name,
        num_qubits=7,
        num_connections=10,
        num_four_qubit_buses=buses,
        yield_rate=yield_rate,
        total_gates=gates,
    )


class TestConfigurations:
    def test_ibm_config_has_four_architectures(self):
        circuit = get_benchmark("sym6_145")
        assert len(architectures_for_config(circuit, ExperimentConfig.IBM)) == 4

    def test_eff_full_series_length(self):
        circuit = get_benchmark("sym6_145")
        archs = architectures_for_config(
            circuit, ExperimentConfig.EFF_FULL, frequency_local_trials=200
        )
        buses = [len(a.four_qubit_buses()) for a in archs]
        assert buses == list(range(len(buses)))

    def test_eff_layout_only_has_two_designs(self):
        circuit = get_benchmark("sym6_145")
        archs = architectures_for_config(circuit, ExperimentConfig.EFF_LAYOUT_ONLY)
        assert len(archs) == 2
        assert archs[0].num_connections() <= archs[1].num_connections()

    def test_eff_rd_bus_respects_seeds(self):
        circuit = get_benchmark("sym6_145")
        archs = architectures_for_config(
            circuit,
            ExperimentConfig.EFF_RD_BUS,
            random_bus_seeds=(1, 2),
            frequency_local_trials=200,
        )
        assert all("seed" in arch.name for arch in archs)

    def test_all_generated_architectures_are_valid(self):
        circuit = get_benchmark("sym6_145")
        for config in ExperimentConfig:
            for arch in architectures_for_config(
                circuit, config, random_bus_seeds=(1,), frequency_local_trials=200
            ):
                assert arch.is_valid(), (config, arch.validate())


class TestExperiment:
    def test_result_contains_all_configs(self, sym6_result):
        configs = {point.config for point in sym6_result.points}
        assert configs == set(ExperimentConfig)

    def test_normalization_puts_worst_at_one(self, sym6_result):
        worst = min(point.normalized_reciprocal_gates for point in sym6_result.points)
        assert worst == pytest.approx(1.0)

    def test_normalized_value_reciprocal_relation(self, sym6_result):
        worst_gates = max(point.total_gates for point in sym6_result.points)
        for point in sym6_result.points:
            assert point.normalized_reciprocal_gates == pytest.approx(
                worst_gates / point.total_gates
            )

    def test_yield_rates_in_unit_interval(self, sym6_result):
        assert all(0.0 <= point.yield_rate <= 1.0 for point in sym6_result.points)

    def test_by_config_filters(self, sym6_result):
        ibm_points = sym6_result.by_config(ExperimentConfig.IBM)
        assert len(ibm_points) == 4
        assert all(point.config is ExperimentConfig.IBM for point in ibm_points)

    def test_best_yield_and_best_performance(self, sym6_result):
        best_yield = sym6_result.best_yield()
        best_perf = sym6_result.best_performance()
        assert best_yield.yield_rate == max(p.yield_rate for p in sym6_result.points)
        assert best_perf.total_gates == min(p.total_gates for p in sym6_result.points)

    def test_too_small_architectures_skipped(self):
        """A 16-qubit benchmark cannot run on smaller generated layouts only."""
        circuit = get_benchmark("qft_16")
        result = evaluate_benchmark(
            circuit, configs=[ExperimentConfig.IBM], settings=FAST_SETTINGS
        )
        assert all(point.num_qubits >= 16 for point in result.points)

    def test_evaluate_suite_keys(self):
        circuits = {"sym6_145": get_benchmark("sym6_145")}
        results = evaluate_suite(
            circuits, configs=[ExperimentConfig.EFF_FULL], settings=FAST_SETTINGS
        )
        assert set(results) == {"sym6_145"}


class TestPareto:
    def test_dominated_point_detected(self):
        good = make_point(0.5, 100)
        bad = make_point(0.1, 200)
        assert is_dominated(bad, [good, bad])
        assert not is_dominated(good, [good, bad])

    def test_equal_points_do_not_dominate_each_other(self):
        a = make_point(0.5, 100, name="a")
        b = make_point(0.5, 100, name="b")
        assert not is_dominated(a, [a, b])

    def test_pareto_front_extraction(self):
        points = [
            make_point(0.5, 100, name="a"),
            make_point(0.8, 150, name="b"),
            make_point(0.1, 120, name="c"),  # dominated by a
        ]
        front = pareto_front(points)
        assert {p.architecture_name for p in front} == {"a", "b"}

    def test_front_sorted_by_gates(self):
        points = [make_point(0.8, 150, name="b"), make_point(0.5, 100, name="a")]
        assert [p.architecture_name for p in pareto_front(points)] == ["a", "b"]

    def test_dominates_all(self):
        ours = [make_point(0.5, 100), make_point(0.9, 150)]
        baselines = [make_point(0.05, 160), make_point(0.4, 110)]
        assert dominates_all(ours, baselines)
        assert not dominates_all(baselines, ours)


class TestAnalysis:
    def test_compare_points_ratio_and_change(self):
        ours = make_point(0.2, 110)
        baseline = make_point(0.02, 100)
        comparison = compare_points(ours, baseline, trials=1000)
        assert comparison.yield_ratio == pytest.approx(10.0)
        assert comparison.performance_change == pytest.approx(0.10)

    def test_zero_yield_uses_floor(self):
        ours = make_point(0.1, 100)
        baseline = make_point(0.0, 100)
        comparison = compare_points(ours, baseline, trials=1000)
        assert comparison.yield_ratio == pytest.approx(0.1 / (1.0 / 1000))

    def test_geometric_mean(self):
        comparisons = [
            compare_points(make_point(0.4, 100), make_point(0.1, 100), 1000),
            compare_points(make_point(0.9, 100), make_point(0.1, 100), 1000),
        ]
        assert geometric_mean_yield_ratio(comparisons) == pytest.approx(6.0, rel=1e-6)

    def test_mean_performance_change(self):
        comparisons = [
            compare_points(make_point(0.4, 110), make_point(0.1, 100), 1000),
            compare_points(make_point(0.4, 90), make_point(0.1, 100), 1000),
        ]
        assert mean_performance_change(comparisons) == pytest.approx(0.0)

    def test_headline_comparisons_structure(self, sym6_result):
        headline = headline_comparisons({"sym6_145": sym6_result}, trials=500)
        assert set(headline) == {"simplest_vs_ibm1", "simplest_vs_ibm2", "max_vs_ibm4"}
        assert len(headline["simplest_vs_ibm1"]) == 1

    def test_layout_and_frequency_gains_positive(self, sym6_result):
        layout = layout_effect_gain({"sym6_145": sym6_result}, trials=500)
        frequency = frequency_allocation_gain({"sym6_145": sym6_result}, trials=500)
        assert layout and frequency
        assert geometric_mean_yield_ratio(layout) > 1.0
        assert geometric_mean_yield_ratio(frequency) >= 1.0


class TestFigures:
    def test_figure5_matrices_shapes(self):
        data = figure5_data()
        assert data["UCCSD_ansatz_8"].shape == (8, 8)
        assert data["misex1_241"].shape == (15, 15)

    def test_figure10_rows_cover_all_points(self, sym6_result):
        rows = figure10_rows(sym6_result)
        assert len(rows) == len(sym6_result.points)
        assert all("yield_rate" in row for row in rows)

    def test_format_figure10_table_mentions_configs(self, sym6_result):
        table = format_figure10_table(sym6_result)
        assert "eff-full" in table
        assert "ibm" in table
        assert "sym6_145" in table

    def test_figure10_series_sorted_by_performance(self, sym6_result):
        xs, ys = figure10_series(sym6_result, ExperimentConfig.EFF_FULL)
        assert xs == sorted(xs)
        assert len(xs) == len(ys)
