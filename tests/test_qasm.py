"""Unit tests for OpenQASM 2.0 import/export."""

import math

import pytest

from repro.circuit import QuantumCircuit, circuit_from_qasm, circuit_to_qasm, cx, h, measure
from repro.circuit.gates import rz
from repro.circuit.qasm import QasmError


class TestExport:
    def test_header_and_registers(self):
        text = circuit_to_qasm(QuantumCircuit(3))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "creg c[3];" in text

    def test_gate_lines(self):
        circuit = QuantumCircuit(2).extend([h(0), cx(0, 1), measure(1)])
        text = circuit_to_qasm(circuit)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "measure q[1] -> c[1];" in text

    def test_parameterised_gate_exported(self):
        text = circuit_to_qasm(QuantumCircuit(1).extend([rz(0.25, 0)]))
        assert "rz(0.25) q[0];" in text


class TestImport:
    def test_simple_roundtrip(self):
        original = QuantumCircuit(3, name="rt").extend([h(0), cx(0, 1), cx(1, 2), measure(2)])
        recovered = circuit_from_qasm(circuit_to_qasm(original))
        assert recovered.num_qubits == 3
        assert [g.name for g in recovered] == [g.name for g in original]
        assert [g.qubits for g in recovered] == [g.qubits for g in original]

    def test_roundtrip_preserves_parameters(self):
        original = QuantumCircuit(1).extend([rz(1.234, 0)])
        recovered = circuit_from_qasm(circuit_to_qasm(original))
        assert recovered[0].params[0] == pytest.approx(1.234)

    def test_pi_expression(self):
        text = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nrz(pi/2) q[0];\n'
        circuit = circuit_from_qasm(text)
        assert circuit[0].params[0] == pytest.approx(math.pi / 2)

    def test_multiple_registers_are_concatenated(self):
        text = (
            "OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a[1],b[0];\n"
        )
        circuit = circuit_from_qasm(text)
        assert circuit.num_qubits == 4
        assert circuit[0].qubits == (1, 2)

    def test_comments_are_ignored(self):
        text = "OPENQASM 2.0;\n// a comment\nqreg q[1];\nh q[0]; // trailing\n"
        assert len(circuit_from_qasm(text)) == 1

    def test_ccx_is_decomposed_on_import(self):
        text = "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];\n"
        circuit = circuit_from_qasm(text)
        assert all(g.name == "cx" or not g.is_two_qubit for g in circuit)
        assert circuit.num_two_qubit_gates == 6

    def test_barrier_with_register_argument(self):
        text = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nbarrier q;\nh q[1];\n"
        circuit = circuit_from_qasm(text)
        assert any(g.name == "barrier" for g in circuit)

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nqreg q[1];\nh r[0];\n")

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_unsafe_parameter_rejected(self):
        with pytest.raises(QasmError):
            circuit_from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];\n")


class TestBenchmarkRoundTrip:
    def test_qft_roundtrip_preserves_two_qubit_structure(self):
        from repro.benchmarks import qft_circuit
        from repro.profiling import coupling_strength_matrix

        original = qft_circuit(5)
        recovered = circuit_from_qasm(circuit_to_qasm(original))
        assert (coupling_strength_matrix(original) == coupling_strength_matrix(recovered)).all()
