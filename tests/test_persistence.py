"""Tests for the shared cache-file machinery (``repro.persistence``)."""

import json
import threading
import time

import pytest

from repro import persistence


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.json"
        persistence.atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        persistence.atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_leaves_no_temporary_files(self, tmp_path):
        path = tmp_path / "out.json"
        persistence.atomic_write_text(path, "x" * 4096)
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.json"
        persistence.atomic_write_text(path, "ok")
        assert path.read_text() == "ok"


class TestCacheFileEnvelope:
    FMT = "repro-test-cache"

    def test_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        entries = [{"key": [1, 2], "value": 3.5}]
        assert persistence.write_cache_file(path, self.FMT, 1, entries) == 1
        assert persistence.read_cache_entries(path, self.FMT, 1) == entries

    def test_missing_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert persistence.read_cache_entries(
            missing, self.FMT, 1, missing_ok=True
        ) is None
        with pytest.raises(FileNotFoundError):
            persistence.read_cache_entries(missing, self.FMT, 1)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "version": 1, "entries": []}')
        with pytest.raises(ValueError, match="not a repro-test-cache"):
            persistence.read_cache_entries(path, self.FMT, 1)

    def test_unknown_version_rejected(self, tmp_path):
        """A future version-2 file must fail loudly, never be half-parsed."""
        path = tmp_path / "future.json"
        persistence.write_cache_file(path, self.FMT, 2, [{"new-schema": True}])
        with pytest.raises(ValueError, match="unsupported .* version 2"):
            persistence.read_cache_entries(path, self.FMT, 1)

    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "unversioned.json"
        path.write_text(json.dumps({"format": self.FMT, "entries": []}))
        with pytest.raises(ValueError, match="unsupported"):
            persistence.read_cache_entries(path, self.FMT, 1)

    def test_kind_names_error_messages(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "x", "version": 1, "entries": []}')
        with pytest.raises(ValueError, match="not a widget cache file"):
            persistence.read_cache_entries(path, self.FMT, 1, kind="widget cache")


class TestKeyCodecs:
    def test_round_trip_nested_tuples(self):
        key = ((1, 2), ((3, 4), (5, 6)), "name", 7.5)
        encoded = persistence.listify(key)
        assert encoded == [[1, 2], [[3, 4], [5, 6]], "name", 7.5]
        assert persistence.tuplify(json.loads(json.dumps(encoded))) == key

    def test_scalars_pass_through(self):
        assert persistence.listify(3) == 3
        assert persistence.tuplify("abc") == "abc"


class _DictCache:
    """Minimal cache speaking the save/merge protocol, for merge tests."""

    FMT = "repro-test-cache"

    def __init__(self, entries=None):
        self.entries = dict(entries or {})

    def _records(self):
        return [{"key": k, "value": v} for k, v in self.entries.items()]

    def save(self, path):
        return persistence.write_cache_file(path, self.FMT, 1, self._records())

    def merge_save(self, path):
        return persistence.union_merge_save(
            path, self.FMT, 1, self._records(), lambda record: record["key"]
        )

    def load(self, path, missing_ok=False):
        records = persistence.read_cache_entries(
            path, self.FMT, 1, missing_ok=missing_ok
        )
        if records is None:
            return 0
        loaded = 0
        for record in records:
            if record["key"] not in self.entries:
                self.entries[record["key"]] = record["value"]
                loaded += 1
        return loaded


class TestMergeLocking:
    def test_merge_save_extends_existing_file(self, tmp_path):
        path = tmp_path / "cache.json"
        _DictCache({"a": 1}).save(path)
        assert _DictCache({"b": 2}).merge_save(path) == 2
        merged = _DictCache()
        merged.load(path)
        assert merged.entries == {"a": 1, "b": 2}

    def test_merge_save_prefers_new_records_under_equal_keys(self, tmp_path):
        path = tmp_path / "cache.json"
        _DictCache({"a": 1, "b": 2}).save(path)
        _DictCache({"b": 20, "c": 30}).merge_save(path)
        merged = _DictCache()
        merged.load(path)
        assert merged.entries == {"a": 1, "b": 20, "c": 30}

    def test_merge_save_never_shrinks_to_the_producer(self, tmp_path):
        """The union happens at the file level: a producer holding only a
        few entries must not truncate a file holding many."""
        path = tmp_path / "cache.json"
        _DictCache({f"old-{i}": i for i in range(50)}).save(path)
        _DictCache({"new": 1}).merge_save(path)
        merged = _DictCache()
        assert merged.load(path) == 51

    def test_concurrent_merges_lose_no_entries(self, tmp_path):
        """The satellite regression: unlocked load-then-save merges let
        concurrent writers sharing one path silently drop each other's
        entries; the locked cycle must keep the union."""
        path = tmp_path / "cache.json"
        workers = 8
        barrier = threading.Barrier(workers)
        errors = []

        def merge(index):
            try:
                barrier.wait(timeout=10)
                _DictCache({f"worker-{index}": index}).merge_save(path)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=merge, args=(index,)) for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = _DictCache()
        final.load(path)
        assert final.entries == {f"worker-{i}": i for i in range(workers)}

    def test_lock_key_resolves_path_spellings(self, tmp_path, monkeypatch):
        """The regression: lock identity must be the *resolved* path, so
        ``./cache.json``, ``cache.json``, an absolute spelling, and a
        symlinked alias all contend on one lock instead of racing."""
        from repro.persistence.store import _lock_key

        monkeypatch.chdir(tmp_path)
        target = tmp_path / "cache.json"
        target.write_text("{}")
        link = tmp_path / "alias.json"
        link.symlink_to(target)
        spellings = ["cache.json", "./cache.json", str(target), link]
        assert {_lock_key(spelling) for spelling in spellings} == {str(target)}

    def test_lock_serializes_symlinked_aliases(self, tmp_path):
        """Behavioral version of the lock-key fix: writers locking the real
        path and a symlinked alias must never hold the lock together."""
        target = tmp_path / "cache.json"
        target.write_text("{}")
        link = tmp_path / "alias.json"
        link.symlink_to(target)
        active = []
        overlaps = []

        def critical(path, index):
            with persistence.cache_file_lock(path):
                active.append(index)
                time.sleep(0.002)  # widen the window a broken lock would race in
                if len(active) > 1:
                    overlaps.append(tuple(active))
                active.remove(index)

        threads = [
            threading.Thread(target=critical, args=(path, index))
            for index, path in enumerate([target, link] * 4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not overlaps

    def test_lock_serializes_threads(self, tmp_path):
        path = tmp_path / "cache.json"
        active = []
        overlaps = []

        def critical(index):
            with persistence.cache_file_lock(path):
                active.append(index)
                if len(active) > 1:
                    overlaps.append(tuple(active))
                active.remove(index)

        threads = [threading.Thread(target=critical, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not overlaps
