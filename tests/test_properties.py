"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.circuit.gates import cx, h
from repro.collision.conditions import check_pair_collisions, check_triple_collisions
from repro.design import design_layout, select_four_qubit_buses
from repro.hardware import Architecture, Lattice
from repro.hardware.frequency import five_frequency_label
from repro.hardware.lattice import Square, manhattan_distance
from repro.mapping import DistanceMatrix, initial_mapping, route_circuit
from repro.profiling import coupling_degree_list, coupling_strength_matrix, profile_circuit

pytestmark = pytest.mark.property

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NODES = st.tuples(st.integers(-6, 6), st.integers(-6, 6))


@st.composite
def random_circuits(draw, max_qubits=8, max_gates=40):
    """Circuits made of CNOTs and Hadamards on a small register."""
    num_qubits = draw(st.integers(2, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(num_gates):
        if draw(st.booleans()):
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 1))
            if a != b:
                circuit.append(cx(a, b))
        else:
            circuit.append(h(draw(st.integers(0, num_qubits - 1))))
    return circuit


@st.composite
def connected_circuits(draw, max_qubits=7, max_extra_gates=30):
    """Circuits whose coupling graph is connected (a chain plus random extras)."""
    num_qubits = draw(st.integers(2, max_qubits))
    circuit = QuantumCircuit(num_qubits, name="connected")
    for qubit in range(num_qubits - 1):
        circuit.append(cx(qubit, qubit + 1))
    for _ in range(draw(st.integers(0, max_extra_gates))):
        a = draw(st.integers(0, num_qubits - 1))
        b = draw(st.integers(0, num_qubits - 1))
        if a != b:
            circuit.append(cx(a, b))
    return circuit


# ---------------------------------------------------------------------------
# Profiling invariants
# ---------------------------------------------------------------------------


class TestProfilingProperties:
    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_strength_matrix_symmetric_nonnegative_zero_diagonal(self, circuit):
        matrix = coupling_strength_matrix(circuit)
        assert (matrix == matrix.T).all()
        assert (matrix >= 0).all()
        assert (np.diag(matrix) == 0).all()

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_matrix_total_is_twice_gate_count(self, circuit):
        assert coupling_strength_matrix(circuit).sum() == 2 * circuit.num_two_qubit_gates

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_degree_list_is_sorted_and_complete(self, circuit):
        degrees = coupling_degree_list(circuit)
        values = [d for _q, d in degrees]
        assert values == sorted(values, reverse=True)
        assert sorted(q for q, _d in degrees) == list(range(circuit.num_qubits))

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_gate_count(self, circuit):
        degrees = coupling_degree_list(circuit)
        assert sum(d for _q, d in degrees) == 2 * circuit.num_two_qubit_gates


# ---------------------------------------------------------------------------
# Layout and bus selection invariants
# ---------------------------------------------------------------------------


class TestLayoutProperties:
    @given(random_circuits(max_qubits=7, max_gates=25))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_layout_places_every_qubit_once(self, circuit):
        result = design_layout(profile_circuit(circuit))
        coords = result.lattice.coordinates()
        assert sorted(coords) == list(range(circuit.num_qubits))
        assert len(set(coords.values())) == circuit.num_qubits

    @given(random_circuits(max_qubits=7, max_gates=25))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_layout_patch_is_lattice_connected(self, circuit):
        result = design_layout(profile_circuit(circuit))
        lattice = result.lattice
        if lattice.num_qubits == 1:
            return
        # BFS over lattice adjacency must reach every placed qubit.
        start = lattice.qubits[0]
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in lattice.neighbors_of_qubit(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(lattice.qubits)

    @given(connected_circuits(), st.integers(0, 6))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_bus_selection_never_violates_prohibition(self, circuit, max_buses):
        profile = profile_circuit(circuit)
        layout = design_layout(profile)
        squares = select_four_qubit_buses(layout.lattice, profile, max_buses).selected_squares
        assert len(squares) <= max_buses
        for i in range(len(squares)):
            for j in range(i + 1, len(squares)):
                assert not squares[i].is_adjacent_to(squares[j])

    @given(connected_circuits(), st.integers(0, 4))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_architectures_always_valid(self, circuit, max_buses):
        profile = profile_circuit(circuit)
        layout = design_layout(profile)
        squares = select_four_qubit_buses(layout.lattice, profile, max_buses).selected_squares
        arch = Architecture.from_layout("prop", layout.lattice, four_qubit_squares=squares)
        assert arch.is_valid(), arch.validate()


# ---------------------------------------------------------------------------
# Collision condition invariants
# ---------------------------------------------------------------------------

FREQS = st.floats(min_value=4.8, max_value=5.6, allow_nan=False)


class TestCollisionProperties:
    @given(FREQS, FREQS)
    @settings(max_examples=200, deadline=None)
    def test_pair_conditions_symmetric_under_swap(self, f1, f2):
        assert set(check_pair_collisions(f1, f2)) == set(check_pair_collisions(f2, f1))

    @given(FREQS, FREQS, FREQS)
    @settings(max_examples=200, deadline=None)
    def test_triple_conditions_symmetric_in_spectators(self, fj, fi, fk):
        assert set(check_triple_collisions(fj, fi, fk)) == set(
            check_triple_collisions(fj, fk, fi)
        )

    @given(FREQS)
    @settings(max_examples=100, deadline=None)
    def test_identical_frequencies_always_collide(self, f):
        from repro.collision.conditions import CollisionCondition

        assert CollisionCondition.SAME_FREQUENCY in check_pair_collisions(f, f)


# ---------------------------------------------------------------------------
# Lattice / frequency-scheme invariants
# ---------------------------------------------------------------------------


class TestHardwareProperties:
    @given(NODES, NODES)
    @settings(max_examples=100, deadline=None)
    def test_manhattan_distance_is_a_metric(self, a, b):
        assert manhattan_distance(a, b) >= 0
        assert manhattan_distance(a, b) == manhattan_distance(b, a)
        assert (manhattan_distance(a, b) == 0) == (a == b)

    @given(NODES, NODES, NODES)
    @settings(max_examples=100, deadline=None)
    def test_manhattan_triangle_inequality(self, a, b, c):
        assert manhattan_distance(a, c) <= manhattan_distance(a, b) + manhattan_distance(b, c)

    @given(NODES)
    @settings(max_examples=100, deadline=None)
    def test_five_frequency_adjacent_labels_differ(self, node):
        square = Square(node)
        label = five_frequency_label(node)
        x, y = node
        assert label != five_frequency_label((x + 1, y))
        assert label != five_frequency_label((x, y + 1))
        assert 0 <= label < 5
        assert len(square.corners) == 4


# ---------------------------------------------------------------------------
# Routing invariants
# ---------------------------------------------------------------------------


class TestRoutingProperties:
    @given(connected_circuits(max_qubits=6, max_extra_gates=15))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_routing_preserves_gates_and_respects_coupling(self, circuit):
        profile = profile_circuit(circuit)
        layout = design_layout(profile)
        arch = Architecture.from_layout("route-prop", layout.lattice)
        result = route_circuit(circuit, arch, profile)
        # route_circuit internally verifies the routed circuit; check the counts here.
        non_swap = [g for g in result.routed_circuit if g.name != "swap"]
        assert len(non_swap) == len(circuit)
        assert result.total_gates == len(circuit) + 3 * result.num_swaps

    @given(connected_circuits(max_qubits=6, max_extra_gates=10))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_initial_mapping_is_always_a_bijection(self, circuit):
        profile = profile_circuit(circuit)
        layout = design_layout(profile)
        arch = Architecture.from_layout("map-prop", layout.lattice)
        mapping = initial_mapping(profile, arch)
        assert sorted(mapping) == list(range(circuit.num_qubits))
        assert len(set(mapping.values())) == circuit.num_qubits
        distances = DistanceMatrix(arch)
        assert distances.is_connected()
