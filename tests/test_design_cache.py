"""Tests for the persisted design-stage cache (``DesignCache``)."""

import json
import threading

import pytest

from repro.benchmarks import get_benchmark
from repro.design import (
    DesignCache,
    DesignEngine,
    allocation_call_count,
    reset_allocation_call_count,
)
from repro.design.engine import DesignOptions

#: Cheap allocator configuration shared by every test here.
FAST = DesignOptions(local_trials=80)


@pytest.fixture
def circuit():
    return get_benchmark("sym6_145")


def plans(series):
    return [
        (arch.name, tuple(sorted(arch.frequencies.items()))) for arch in series
    ]


class TestSaveLoadRoundTrip:
    def test_warm_engine_reproduces_series_bit_identically(self, tmp_path, circuit):
        path = tmp_path / "design_cache.json"
        producer = DesignEngine()
        series = producer.design_series(circuit, options=FAST)
        assert producer.frequency_cache.save(path) == len(series)

        consumer = DesignEngine()
        assert consumer.frequency_cache.load(path) == len(series)
        warm = consumer.design_series(circuit, options=FAST)
        assert plans(warm) == plans(series)

    def test_warm_engine_runs_zero_frequency_searches(self, tmp_path, circuit):
        """The headline guarantee: a session served from a persisted cache
        re-derives its architectures without a single Algorithm 3 Monte
        Carlo search."""
        path = tmp_path / "design_cache.json"
        producer = DesignEngine()
        producer.design_series(circuit, options=FAST)
        producer.frequency_cache.save(path)

        consumer = DesignEngine()
        consumer.frequency_cache.load(path)
        reset_allocation_call_count()
        consumer.design_series(circuit, options=FAST)
        assert allocation_call_count() == 0
        assert consumer.frequency_cache.stats()["misses"] == 0

    def test_loaded_plans_are_caller_owned(self, tmp_path, circuit):
        path = tmp_path / "design_cache.json"
        producer = DesignEngine()
        producer.design_series(circuit, options=FAST)
        producer.frequency_cache.save(path)

        consumer = DesignEngine()
        consumer.frequency_cache.load(path)
        first = consumer.design(circuit, 1, FAST)
        first.frequencies[0] = -1.0
        second = consumer.design(circuit, 1, FAST)
        assert second.frequencies[0] != -1.0

    def test_in_memory_entries_win_over_file_entries(self, tmp_path, circuit):
        path = tmp_path / "design_cache.json"
        engine = DesignEngine()
        series = engine.design_series(circuit, options=FAST)
        engine.frequency_cache.save(path)
        assert engine.frequency_cache.load(path) == 0  # nothing new merged
        assert plans(engine.design_series(circuit, options=FAST)) == plans(series)


class TestKeying:
    def test_allocator_config_participates_in_keys(self, tmp_path, circuit):
        """Plans persisted under one allocator configuration must never be
        served to another."""
        path = tmp_path / "design_cache.json"
        producer = DesignEngine()
        producer.design_series(circuit, options=FAST)
        producer.frequency_cache.save(path)

        consumer = DesignEngine()
        consumer.frequency_cache.load(path)
        reset_allocation_call_count()
        other = DesignOptions(local_trials=80, allocation_strategy="analytic-guided")
        consumer.design_series(circuit, options=other)
        assert allocation_call_count() > 0  # cache could not serve these

    def test_strategy_specific_plans_round_trip(self, tmp_path, circuit):
        path = tmp_path / "design_cache.json"
        options = DesignOptions(local_trials=80, allocation_strategy="analytic-guided")
        producer = DesignEngine()
        series = producer.design_series(circuit, options=options)
        producer.frequency_cache.save(path)

        consumer = DesignEngine()
        consumer.frequency_cache.load(path)
        reset_allocation_call_count()
        assert plans(consumer.design_series(circuit, options=options)) == plans(series)
        assert allocation_call_count() == 0


class TestFileValidation:
    def test_missing_file_handling(self, tmp_path):
        cache = DesignCache()
        missing = tmp_path / "nope.json"
        assert cache.load(missing, missing_ok=True) == 0
        with pytest.raises(FileNotFoundError):
            cache.load(missing)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "version": 1, "entries": []}')
        with pytest.raises(ValueError, match="not a design cache"):
            DesignCache().load(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        payload = {"format": DesignCache.FORMAT, "version": 2, "entries": []}
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported .* version 2"):
            DesignCache().load(path)

    def test_routing_cache_file_rejected(self, tmp_path):
        path = tmp_path / "routing.json"
        payload = {"format": "repro-routing-cache", "version": 1, "entries": []}
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="not a design cache"):
            DesignCache().load(path)


class TestMergeBeyondBound:
    def test_merge_save_preserves_entries_beyond_lru_bound(self, tmp_path, circuit):
        """A producer whose in-memory cache is smaller than the file must
        extend the file, never truncate it to its own bound — long sweeps
        outgrowing max_entries keep complete cache files."""
        path = tmp_path / "design_cache.json"
        producer = DesignEngine()
        producer.design_series(circuit, options=FAST)
        baseline = producer.frequency_cache.merge_save(path)
        assert baseline > 1

        small = DesignCache(max_entries=1)
        bounded_engine = DesignEngine(frequency_cache=small)
        bounded_engine.design(get_benchmark("qft_16"), 0, FAST)
        assert len(small) == 1
        assert small.merge_save(path) == baseline + 1

        final = DesignCache()
        assert final.load(path) == baseline + 1


class TestConcurrentMerge:
    def test_two_thread_merge_saves_lose_no_plans(self, tmp_path, circuit):
        """Concurrent workers sharing one --design-cache path must end up
        with the union of their frequency plans."""
        path = tmp_path / "design_cache.json"
        qft = get_benchmark("qft_16")
        engines = {}
        for name, circ in (("sym", circuit), ("qft", qft)):
            engine = DesignEngine()
            engine.design_series(circ, options=FAST)
            engines[name] = engine
        expected = sum(len(e.frequency_cache) for e in engines.values())

        barrier = threading.Barrier(len(engines))
        errors = []

        def merge(engine):
            try:
                barrier.wait(timeout=10)
                engine.frequency_cache.merge_save(path)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=merge, args=(engine,))
            for engine in engines.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = DesignCache()
        assert final.load(path) == expected
