"""End-to-end integration tests: the paper's pipeline on real benchmarks.

These tests exercise the whole stack (benchmark generation -> profiling ->
design flow -> yield simulation -> mapping -> evaluation) with reduced
Monte Carlo settings, asserting the qualitative relationships the paper's
evaluation is built on.
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.collision import YieldSimulator
from repro.design import DesignFlow, DesignOptions
from repro.design.flow import FrequencyStrategy
from repro.evaluation import (
    EvaluationSettings,
    ExperimentConfig,
    evaluate_benchmark,
    pareto_front,
)
from repro.hardware import ibm_16q_2x8, ibm_20q_4x5
from repro.mapping import route_circuit
from repro.profiling import profile_circuit

FAST = DesignOptions(local_trials=400)


@pytest.fixture(scope="module")
def simulator():
    return YieldSimulator(trials=4000, seed=29)


class TestDesignVersusBaselineYield:
    """Section 5.3: generated designs reach much higher yield than the baselines."""

    @pytest.mark.parametrize("benchmark_name", ["sym6_145", "z4_268", "UCCSD_ansatz_8"])
    def test_simplest_design_beats_dense_ibm_baseline(self, benchmark_name, simulator):
        circuit = get_benchmark(benchmark_name)
        ours = DesignFlow(circuit, FAST).design(0)
        baseline = ibm_16q_2x8(use_four_qubit_buses=True)
        assert simulator.estimate(ours).yield_rate > simulator.estimate(baseline).yield_rate

    def test_design_uses_fewer_connections_than_baselines(self):
        circuit = get_benchmark("adr4_197")
        ours = DesignFlow(circuit, FAST).design(0)
        assert ours.num_connections() < ibm_16q_2x8().num_connections()
        assert ours.num_connections() < ibm_20q_4x5().num_connections()


class TestTradeoffControllability:
    """Section 5.3: more 4-qubit buses -> better performance, lower yield."""

    def test_bus_count_trades_yield_for_performance(self, simulator):
        circuit = get_benchmark("z4_268")
        profile = profile_circuit(circuit)
        flow = DesignFlow(circuit, FAST)
        series = flow.design_series()
        yields = [simulator.estimate(arch).yield_rate for arch in series]
        gates = [route_circuit(circuit, arch, profile).total_gates for arch in series]
        # Yield decreases (weakly) as buses are added; the best-performing
        # design is not the bus-free one.
        assert yields[0] >= yields[-1]
        assert min(gates) < gates[0]


class TestFrequencyAllocationEffect:
    """Section 5.4.3: optimized frequencies beat the 5-frequency scheme."""

    @pytest.mark.parametrize("benchmark_name", ["sym6_145", "z4_268"])
    def test_optimized_beats_five_frequency(self, benchmark_name, simulator):
        circuit = get_benchmark(benchmark_name)
        # The candidate search needs a reasonable trial count per candidate to
        # resolve yield differences; the suite-wide FAST settings are too noisy
        # for this particular comparison.
        optimized = DesignFlow(circuit, DesignOptions(local_trials=1200)).design(0)
        five = DesignFlow(
            circuit,
            DesignOptions(frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY),
        ).design(0)
        assert (
            simulator.estimate(optimized).yield_rate
            >= simulator.estimate(five).yield_rate
        )


class TestIsingSpecialCase:
    """Section 5.3.1: the chain-structured benchmark maps perfectly and needs no buses."""

    def test_perfect_mapping_on_designed_layout(self):
        circuit = get_benchmark("ising_model_16")
        arch = DesignFlow(circuit, FAST).design(0)
        result = route_circuit(circuit, arch)
        assert result.num_swaps == 0

    def test_no_four_qubit_buses_available_or_useful(self):
        circuit = get_benchmark("ising_model_16")
        flow = DesignFlow(circuit, FAST)
        from repro.design.bus_selection import cross_coupling_weights

        weights = cross_coupling_weights(flow.layout.lattice, flow.profile)
        assert all(weight == 0 for weight in weights.values())


class TestQftSpecialCase:
    """Section 5.4.2: the uniform QFT pattern makes all squares equivalent."""

    def test_all_squares_share_the_same_weight(self):
        circuit = get_benchmark("qft_16")
        flow = DesignFlow(circuit, FAST)
        from repro.design.bus_selection import cross_coupling_weights

        weights = cross_coupling_weights(flow.layout.lattice, flow.profile)
        full_square_weights = {w for w in weights.values() if w > 0}
        # Fully occupied squares all have weight 4 (two diagonals, weight 2 each).
        assert full_square_weights == {4} or len(full_square_weights) <= 2


class TestParetoDominance:
    """The generated series should dominate the IBM baselines (the paper's main claim)."""

    def test_eff_full_points_dominate_baselines_for_small_benchmark(self):
        settings = EvaluationSettings(
            yield_trials=2000, frequency_local_trials=400, random_bus_seeds=(1,)
        )
        result = evaluate_benchmark(
            get_benchmark("sym6_145"),
            configs=[ExperimentConfig.IBM, ExperimentConfig.EFF_FULL],
            settings=settings,
        )
        ours = result.by_config(ExperimentConfig.EFF_FULL)
        baselines = result.by_config(ExperimentConfig.IBM)
        # Every IBM baseline is dominated on the yield axis by some eff-full design
        # whose performance is within a few percent (the paper's Pareto statement,
        # allowing the small-benchmark performance caveat).
        for baseline in baselines:
            assert any(
                point.yield_rate > baseline.yield_rate
                and point.total_gates <= baseline.total_gates * 1.2
                for point in ours
            )

    def test_pareto_front_contains_at_least_one_generated_design(self):
        settings = EvaluationSettings(
            yield_trials=1000, frequency_local_trials=300, random_bus_seeds=(1,)
        )
        result = evaluate_benchmark(
            get_benchmark("sym6_145"),
            configs=[ExperimentConfig.IBM, ExperimentConfig.EFF_FULL],
            settings=settings,
        )
        front = pareto_front(result.points)
        assert any(point.config is ExperimentConfig.EFF_FULL for point in front)
