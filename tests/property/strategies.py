"""Shared Hypothesis strategies for the property suite.

Every strategy here draws values from the paper's own parameter space:
frequencies inside the allowed 5.00-5.34 GHz band (Section 4.3), sigma
values around the studied fabrication precisions (Section 5.1), and
small lattice/chain topologies of the kind Algorithm 3's local regions
produce.

``max_examples`` budgets are centralized through :func:`examples` so CI
can cap the whole suite with one environment variable
(``HYPOTHESIS_MAX_EXAMPLES``).
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np
from hypothesis import strategies as st

from repro.hardware.frequency import (
    ALLOWED_FREQUENCY_MAX_GHZ,
    ALLOWED_FREQUENCY_MIN_GHZ,
    candidate_frequencies,
)

#: Global ceiling on per-test Hypothesis examples; CI sets a small value
#: so the property suite stays inside its time budget.
MAX_EXAMPLES_CAP = int(os.environ.get("HYPOTHESIS_MAX_EXAMPLES", "50"))


def examples(requested: int) -> int:
    """The example budget for one test: the requested count, CI-capped."""
    return max(1, min(requested, MAX_EXAMPLES_CAP))


# -- scalar strategies --------------------------------------------------------

#: Arbitrary in-band frequencies (continuous).
frequencies_ghz = st.floats(
    min_value=ALLOWED_FREQUENCY_MIN_GHZ,
    max_value=ALLOWED_FREQUENCY_MAX_GHZ,
    allow_nan=False,
    allow_infinity=False,
)

#: Frequencies restricted to Algorithm 3's 0.01 GHz candidate grid.
grid_frequencies_ghz = st.sampled_from([float(f) for f in candidate_frequencies()])

#: Fabrication noise magnitudes covering the paper's studied range
#: (10-150 MHz) plus the noiseless edge.
sigmas_ghz = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.001, max_value=0.15, allow_nan=False, allow_infinity=False),
)

#: Seeds for deterministic generators.
seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: Trial counts kept small so property runs stay fast.
trial_counts = st.sampled_from([50, 128, 300])

#: Small lattice dimensions (rows, cols).
lattice_dims = st.tuples(st.integers(1, 4), st.integers(1, 4))


# -- composite strategies -----------------------------------------------------


@st.composite
def frequency_vectors(draw, min_qubits: int = 1, max_qubits: int = 8, grid: bool = False):
    """A designed frequency vector of ``min_qubits``..``max_qubits`` entries."""
    source = grid_frequencies_ghz if grid else frequencies_ghz
    values = draw(
        st.lists(source, min_size=min_qubits, max_size=max_qubits)
    )
    return np.array(values, dtype=float)


def chain_topology(num_qubits: int) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, int]]]:
    """Pairs and common-neighbour triples of a 1 x N chain coupling graph."""
    pairs = [(q, q + 1) for q in range(num_qubits - 1)]
    triples = [(q, q - 1, q + 1) for q in range(1, num_qubits - 1)]
    return pairs, triples


@st.composite
def chain_regions(draw, min_qubits: int = 2, max_qubits: int = 6, grid: bool = False):
    """A chain topology plus a designed frequency vector for it."""
    num_qubits = draw(st.integers(min_qubits, max_qubits))
    frequencies = draw(frequency_vectors(num_qubits, num_qubits, grid=grid))
    pairs, triples = chain_topology(num_qubits)
    return frequencies, pairs, triples


@st.composite
def star_regions(draw, min_spokes: int = 1, max_spokes: int = 5, grid: bool = False):
    """An Algorithm 3 local region: a centre qubit coupled to every spoke."""
    num_spokes = draw(st.integers(min_spokes, max_spokes))
    frequencies = draw(frequency_vectors(num_spokes + 1, num_spokes + 1, grid=grid))
    pairs = [(0, s) for s in range(1, num_spokes + 1)]
    triples = [
        (0, a, b)
        for a in range(1, num_spokes + 1)
        for b in range(a + 1, num_spokes + 1)
    ]
    return frequencies, pairs, triples


@st.composite
def permutations_of(draw, size: int):
    """A permutation of ``range(size)`` as a numpy index array."""
    return np.array(draw(st.permutations(range(size))), dtype=int)
