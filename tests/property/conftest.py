"""Hypothesis configuration for the property suite.

The suite-wide profile removes deadlines (Monte Carlo tests have noisy
first-call timings due to numpy warm-up) and keeps Hypothesis's database
out of CI runs.  Per-test example budgets go through
:func:`strategies.examples`, which honours the ``HYPOTHESIS_MAX_EXAMPLES``
environment variable so CI can cap the whole suite at once.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro-property",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-property")
