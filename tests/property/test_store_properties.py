"""Property tests of the pluggable cache-store backends.

Invariants covered (ISSUE satellite list):

* shard routing is *total* and *stable*: every JSON-expressible key maps
  to exactly one of the 256 two-hex-digit shards, identically across
  repeated calls and across the tuple/list spellings of one key (the
  in-memory and file-loaded shapes);
* union merge is idempotent and order-independent: merging the same
  batches again, or in any order, yields the same final entry set on
  every backend;
* round-trips between backends preserve entries: any store image
  migrated sharded ⇄ single-file ⇄ sqlite carries exactly the same
  records.
"""

from __future__ import annotations

import re
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import persistence
from repro.persistence.sharded import shard_for_key
from strategies import examples

pytestmark = pytest.mark.property

FMT = "repro-test-cache"

_SHARD_ID = re.compile(r"^[0-9a-f]{2}$")

# JSON-expressible cache keys: scalars and nested tuples of them — the
# exact shapes the routing/design caches and the sweep checkpoint use.
_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
)
keys = st.recursive(
    _scalars, lambda children: st.lists(children, max_size=4).map(tuple), max_leaves=8
)


def _record(key):
    """A record whose value is a pure function of its key."""
    return {"key": persistence.listify(key), "value": persistence.canonical_key(key)}


def _key_of(record):
    return persistence.tuplify(record["key"])


def _entry_set(records):
    return {(persistence.canonical_key(_key_of(r)), r["value"]) for r in records or []}


class TestShardRouting:
    @given(key=keys)
    @settings(max_examples=examples(100))
    def test_total_and_well_formed(self, key):
        assert _SHARD_ID.match(shard_for_key(key))

    @given(key=keys)
    @settings(max_examples=examples(100))
    def test_stable_across_calls_and_key_spellings(self, key):
        shard = shard_for_key(key)
        assert shard_for_key(key) == shard
        # The file-loaded (list) and in-memory (tuple) shapes must route
        # identically, or a reloaded entry would migrate between shards.
        assert shard_for_key(persistence.listify(key)) == shard
        assert shard_for_key(persistence.tuplify(key)) == shard


def _store_paths(root):
    return [
        f"json:{root / 'store.json'}",
        f"sharded:{root / 'store-dir'}",
        f"sqlite:{root / 'store.sqlite'}",
    ]


class TestUnionMergeAlgebra:
    @given(
        batch_a=st.lists(keys, max_size=6),
        batch_b=st.lists(keys, max_size=6),
    )
    @settings(max_examples=examples(25))
    def test_idempotent_and_order_independent(self, batch_a, batch_b):
        records_a = [_record(key) for key in batch_a]
        records_b = [_record(key) for key in batch_b]
        expected = _entry_set(records_a + records_b)
        with tempfile.TemporaryDirectory() as ab_root, \
                tempfile.TemporaryDirectory() as ba_root:
            for path_ab, path_ba in zip(
                _store_paths(Path(ab_root)), _store_paths(Path(ba_root))
            ):
                persistence.union_merge_save(path_ab, FMT, 1, records_a, _key_of)
                persistence.union_merge_save(path_ab, FMT, 1, records_b, _key_of)
                # Replaying a batch must change nothing (idempotence).
                persistence.union_merge_save(path_ab, FMT, 1, records_a, _key_of)
                persistence.union_merge_save(path_ba, FMT, 1, records_b, _key_of)
                persistence.union_merge_save(path_ba, FMT, 1, records_a, _key_of)
                loaded_ab = persistence.read_cache_entries(path_ab, FMT, 1)
                loaded_ba = persistence.read_cache_entries(path_ba, FMT, 1)
                assert _entry_set(loaded_ab) == expected
                assert _entry_set(loaded_ba) == expected

    @given(batch=st.lists(keys, min_size=1, max_size=8))
    @settings(max_examples=examples(25))
    def test_merge_reports_the_union_size(self, batch):
        records = [_record(key) for key in batch]
        distinct = len({persistence.canonical_key(_key_of(r)) for r in records})
        with tempfile.TemporaryDirectory() as root:
            for path in _store_paths(Path(root)):
                count = persistence.union_merge_save(path, FMT, 1, records, _key_of)
                assert count == distinct


class TestCrossBackendRoundTrips:
    @given(batch=st.lists(keys, max_size=8))
    @settings(max_examples=examples(25))
    def test_migration_chain_preserves_entries(self, batch):
        records = [_record(key) for key in batch]
        expected = _entry_set(records)
        with tempfile.TemporaryDirectory() as root:
            json_path, sharded_path, sqlite_path = _store_paths(Path(root))
            persistence.union_merge_save(json_path, FMT, 1, records, _key_of)
            persistence.migrate_store(json_path, sharded_path, FMT, 1, _key_of)
            persistence.migrate_store(sharded_path, sqlite_path, FMT, 1, _key_of)
            round_tripped = f"json:{Path(root) / 'round-trip.json'}"
            persistence.migrate_store(sqlite_path, round_tripped, FMT, 1, _key_of)
            for path in (sharded_path, sqlite_path, round_tripped):
                assert _entry_set(
                    persistence.read_cache_entries(path, FMT, 1)
                ) == expected
