"""Property tests of the fused single-pass merge kernel backends.

Invariants covered (ISSUE satellite list):

* every enabled backend (``python``, ``numpy``, and ``native`` when a C
  toolchain is present) returns bit-identical ``(lower, upper)`` counts
  and bit-identical dispute masks (``lower != upper``) for random
  interval families, including epsilon-sandwich edge cases: endpoints
  drawn from a shared pool and jittered by sub-epsilon / epsilon-scale
  multiples, so exact coincidences and barely-separated endpoints both
  occur;
* the counts are *valid* bounds: candidates comfortably inside some
  interval are counted by ``upper``, and ``lower`` never counts a
  candidate comfortably outside every interval;
* slot batching is transparent: stacking several regions into one call
  returns each slot's counts exactly as a single-slot call would.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collision import available_backends, set_backend
from repro.collision.merge_kernel import candidate_bins, fused_union_bounds
from repro.collision.screening import SCREENING_EPSILON
from repro.hardware.frequency import candidate_frequencies
from strategies import examples

pytestmark = pytest.mark.property

EPS = SCREENING_EPSILON

CANDIDATES = candidate_frequencies()

#: Epsilon-scale endpoint jitter: exact coincidence, sub-epsilon
#: separation, and just-past-threshold gaps around shared endpoints.
_jitter = st.sampled_from(
    [-2.0 * EPS, -EPS, -0.5 * EPS, 0.0, 0.5 * EPS, EPS, 2.0 * EPS]
)

_band_floats = st.floats(min_value=4.9, max_value=5.45,
                         allow_nan=False, allow_infinity=False)


@st.composite
def interval_matrices(draw):
    """(lows, highs) float32 matrices of one region's interval families.

    Endpoints come from a small shared pool plus epsilon-scale jitter,
    so distinct intervals frequently share endpoints exactly or sit
    within the merge thresholds of each other — the regime where the
    widened/narrowed two-threshold decisions actually differ.
    """
    trials = draw(st.integers(min_value=1, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=6))
    pool = draw(st.lists(_band_floats, min_size=2, max_size=5))
    lows = np.empty((trials, cols), dtype=np.float32)
    highs = np.empty((trials, cols), dtype=np.float32)
    last = len(pool) - 1
    for row in range(trials):
        for col in range(cols):
            a = pool[draw(st.integers(0, last))] + draw(_jitter)
            b = pool[draw(st.integers(0, last))] + draw(_jitter)
            lo, hi = (a, b) if a <= b else (b, a)
            lows[row, col] = np.float32(lo)
            highs[row, col] = np.float32(hi)
    return lows, highs


def _all_backend_bounds(lows, highs, slots, num_slots):
    bins = candidate_bins(CANDIDATES)
    results = {}
    try:
        for backend in available_backends():
            set_backend(backend)
            results[backend] = fused_union_bounds(
                lows, highs, slots, num_slots, bins, EPS
            )
    finally:
        set_backend(None)
    return results


@settings(max_examples=examples(40))
@given(interval_matrices())
def test_backends_agree_exactly(matrices):
    lows, highs = matrices
    slots = np.zeros(lows.shape[0], dtype=np.int64)
    results = _all_backend_bounds(lows, highs, slots, 1)
    assert len(results) >= 2  # python + numpy always; native when built
    reference_name, (ref_lower, ref_upper) = next(iter(results.items()))
    for backend, (lower, upper) in results.items():
        assert (lower == ref_lower).all(), (backend, reference_name)
        assert (upper == ref_upper).all(), (backend, reference_name)
        assert (
            (lower != upper) == (ref_lower != ref_upper)
        ).all(), f"dispute masks differ: {backend} vs {reference_name}"


@settings(max_examples=examples(30))
@given(interval_matrices())
def test_bounds_are_valid(matrices):
    lows, highs = matrices
    slots = np.zeros(lows.shape[0], dtype=np.int64)
    for backend, (lower, upper) in _all_backend_bounds(
        lows, highs, slots, 1
    ).items():
        lower, upper = lower[0], upper[0]
        assert (lower <= upper).all(), backend
        assert (lower >= 0).all(), backend
        # Margins of 2 * epsilon clear every widen/narrow/binning edge,
        # so these memberships must be decided the obvious way.
        lo64 = lows.astype(np.float64)
        hi64 = highs.astype(np.float64)
        for index, candidate in enumerate(CANDIDATES):
            inside = (
                (lo64 + 2.0 * EPS <= candidate)
                & (candidate <= hi64 - 2.0 * EPS)
            ).any(axis=1)
            outside = ~(
                (lo64 - 2.0 * EPS <= candidate)
                & (candidate <= hi64 + 2.0 * EPS)
            ).any(axis=1)
            assert upper[index] >= inside.sum(), backend
            assert lower[index] <= lows.shape[0] - outside.sum(), backend


@settings(max_examples=examples(25))
@given(interval_matrices(), interval_matrices())
def test_slot_batching_is_transparent(first, second):
    lows_a, highs_a = first
    lows_b, highs_b = second
    width = max(lows_a.shape[1], lows_b.shape[1])
    sentinel = np.float32(3.0e38)

    def pad(matrix):
        rows, cols = matrix.shape
        out = np.full((rows, width), sentinel, dtype=np.float32)
        out[:, :cols] = matrix
        return out

    lows = np.vstack([pad(lows_a), pad(lows_b)])
    highs = np.vstack([pad(highs_a), pad(highs_b)])
    slots = np.concatenate([
        np.zeros(lows_a.shape[0], dtype=np.int64),
        np.ones(lows_b.shape[0], dtype=np.int64),
    ])
    for backend, (lower, upper) in _all_backend_bounds(
        lows, highs, slots, 2
    ).items():
        for slot, (slot_lows, slot_highs) in enumerate(
            [(lows_a, highs_a), (lows_b, highs_b)]
        ):
            alone_lower, alone_upper = _all_backend_bounds(
                slot_lows, slot_highs,
                np.zeros(slot_lows.shape[0], dtype=np.int64), 1,
            )[backend]
            assert (lower[slot] == alone_lower[0]).all(), backend
            assert (upper[slot] == alone_upper[0]).all(), backend


def test_shared_endpoint_sandwich_regression():
    """Chains glued at one endpoint: the canonical epsilon-sandwich case."""
    b = np.float32(5.17)
    cases = [
        # touching intervals (gap exactly 0: narrowed splits, widened merges)
        [(5.10, float(b)), (float(b), 5.24)],
        # overlap beyond every threshold (both spaces merge)
        [(5.10, float(b) + 4 * EPS), (float(b) - 4 * EPS, 5.24)],
        # separation past both thresholds (both spaces split)
        [(5.10, float(b) - 4 * EPS), (float(b) + 4 * EPS, 5.24)],
        # degenerate zero-width interval on a shared endpoint
        [(float(b), float(b)), (5.10, 5.24)],
    ]
    for intervals in cases:
        lows = np.array([[lo for lo, _ in intervals]], dtype=np.float32)
        highs = np.array([[hi for _, hi in intervals]], dtype=np.float32)
        slots = np.zeros(1, dtype=np.int64)
        results = _all_backend_bounds(lows, highs, slots, 1)
        reference = next(iter(results.values()))
        for backend, (lower, upper) in results.items():
            assert (lower == reference[0]).all(), (backend, intervals)
            assert (upper == reference[1]).all(), (backend, intervals)
