"""Property tests of the SWAP router and routing engine.

Invariants covered (ISSUE satellite list):

* every routed circuit passes :func:`verify_routing` — faithful dependency
  order, correct logical operands, coupled physical pairs — across random
  circuits, random connected architectures, and random router parameters
  (including bidirectional passes and seeded restarts);
* the routed circuit conserves the original gates: exactly the input
  gates plus ``num_swaps`` swap gates;
* routing is deterministic: same inputs, same routed circuit;
* the livelock escape hatch (``stall_threshold=0`` forces every blocked
  gate through ``_force_route``) still produces verifiable routings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.circuit.gates import cx, h, measure, swap
from repro.hardware import Architecture, Lattice
from repro.mapping import RoutingEngine, SabreParameters, verify_routing
from strategies import examples

pytestmark = pytest.mark.property


@st.composite
def rectangle_architectures(draw):
    """Connected rectangle-lattice architectures of 2..12 qubits."""
    rows = draw(st.integers(1, 3))
    cols = draw(st.integers(2, 4))
    return Architecture.from_layout(f"rect_{rows}x{cols}", Lattice.rectangle(rows, cols))


@st.composite
def random_circuits(draw, num_qubits: int):
    """Random CNOT + single-qubit + measurement circuits on ``num_qubits``."""
    num_gates = draw(st.integers(1, 30))
    gates = []
    for _ in range(num_gates):
        kind = draw(st.integers(0, 4))
        if kind <= 1 and num_qubits >= 2:
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            gates.append(cx(a, b))
        elif kind == 2 and num_qubits >= 2:
            # Program-level swap gates: must route like any two-qubit gate
            # and must not be mistaken for router-inserted swaps.
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            gates.append(swap(a, b))
        elif kind == 3:
            gates.append(h(draw(st.integers(0, num_qubits - 1))))
        else:
            gates.append(measure(draw(st.integers(0, num_qubits - 1))))
    circuit = QuantumCircuit(num_qubits, name="random")
    circuit.extend(gates)
    return circuit


@st.composite
def routing_cases(draw):
    architecture = draw(rectangle_architectures())
    circuit = draw(random_circuits(architecture.num_qubits))
    return architecture, circuit


router_parameters = st.builds(
    SabreParameters,
    extended_set_size=st.sampled_from([0, 5, 20]),
    passes=st.sampled_from([1, 3]),
    restarts=st.sampled_from([1, 2]),
)


class TestRoutedCircuitsAreFaithful:
    @given(case=routing_cases(), parameters=router_parameters)
    @settings(max_examples=examples(60))
    def test_routed_circuit_passes_verification(self, case, parameters):
        architecture, circuit = case
        result = RoutingEngine(parameters).route(circuit, architecture)
        verify_routing(
            circuit, result.routed_circuit, architecture, result.initial_mapping
        )

    @given(case=routing_cases())
    @settings(max_examples=examples(40))
    def test_gate_conservation(self, case):
        architecture, circuit = case
        result = RoutingEngine().route(circuit, architecture)
        routed = result.routed_circuit
        program_swaps = sum(1 for gate in circuit if gate.name == "swap")
        routed_swaps = sum(1 for gate in routed if gate.name == "swap")
        assert routed_swaps == result.num_swaps + program_swaps
        assert len(routed) == len(circuit) + result.num_swaps
        original = sorted((g.name, g.params) for g in circuit if g.name != "swap")
        mapped = sorted((g.name, g.params) for g in routed if g.name != "swap")
        assert mapped == original

    @given(case=routing_cases())
    @settings(max_examples=examples(25))
    def test_routing_is_deterministic(self, case):
        architecture, circuit = case
        first = RoutingEngine().route(circuit, architecture)
        second = RoutingEngine().route(circuit, architecture)
        assert first.num_swaps == second.num_swaps
        assert list(first.routed_circuit.gates) == list(second.routed_circuit.gates)

    @given(case=routing_cases())
    @settings(max_examples=examples(25))
    def test_force_route_only_routing_verifies(self, case):
        architecture, circuit = case
        engine = RoutingEngine(SabreParameters(stall_threshold=0))
        result = engine.route(circuit, architecture)
        verify_routing(
            circuit, result.routed_circuit, architecture, result.initial_mapping
        )
