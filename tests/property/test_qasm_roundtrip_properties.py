"""Property test: OpenQASM 2.0 round-trip over the supported gate set.

Any circuit built from the library's supported gates must survive
``circuit_to_qasm`` -> ``circuit_from_qasm`` with an identical gate
sequence (names, qubits, and exact parameter values — parameters are
emitted with ``repr`` so float round-trips are lossless).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.circuit.gates import Gate
from repro.circuit.qasm import circuit_from_qasm, circuit_to_qasm
from strategies import examples

pytestmark = pytest.mark.property

#: Parameter counts of the supported parameterised gates.
PARAMETRIC_GATES = {
    "rx": 1, "ry": 1, "rz": 1, "u1": 1, "u2": 2, "u3": 3,
    "cp": 1, "crz": 1, "rzz": 1, "rxx": 1,
}
PLAIN_ONE_QUBIT_GATES = (
    "id", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx",
)
PLAIN_TWO_QUBIT_GATES = ("cx", "cz", "swap")

#: Finite angles; repr() round-trips every float exactly.
angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def supported_gates(draw, num_qubits: int):
    """One gate from the full supported set, on valid qubit indices."""
    qubit = st.integers(0, num_qubits - 1)
    kind = draw(
        st.sampled_from(
            ["plain1", "plain2", "param1", "param2", "measure", "barrier"]
        )
    )
    if kind == "plain1":
        return Gate(draw(st.sampled_from(PLAIN_ONE_QUBIT_GATES)), (draw(qubit),))
    if kind == "param1":
        name = draw(st.sampled_from(["rx", "ry", "rz", "u1", "u2", "u3"]))
        params = tuple(draw(angles) for _ in range(PARAMETRIC_GATES[name]))
        return Gate(name, (draw(qubit),), params)
    if kind == "measure":
        return Gate("measure", (draw(qubit),))
    if kind == "barrier":
        span = draw(st.lists(qubit, min_size=1, max_size=num_qubits, unique=True))
        return Gate("barrier", tuple(span))
    # Two-qubit kinds need two distinct qubits.
    a = draw(qubit)
    b = draw(st.integers(0, num_qubits - 1).filter(lambda q: q != a))
    if kind == "plain2":
        return Gate(draw(st.sampled_from(PLAIN_TWO_QUBIT_GATES)), (a, b))
    name = draw(st.sampled_from(["cp", "crz", "rzz", "rxx"]))
    params = tuple(draw(angles) for _ in range(PARAMETRIC_GATES[name]))
    return Gate(name, (a, b), params)


@st.composite
def supported_circuits(draw, max_qubits: int = 8, max_gates: int = 30):
    num_qubits = draw(st.integers(2, max_qubits))
    circuit = QuantumCircuit(num_qubits, name="roundtrip")
    for gate in draw(st.lists(supported_gates(num_qubits), max_size=max_gates)):
        circuit.append(gate)
    return circuit


class TestQasmRoundTrip:
    @given(circuit=supported_circuits())
    @settings(max_examples=examples(60))
    def test_round_trip_preserves_gate_sequence(self, circuit):
        text = circuit_to_qasm(circuit)
        parsed = circuit_from_qasm(text, name=circuit.name)
        assert parsed.num_qubits == circuit.num_qubits
        assert list(parsed.gates) == list(circuit.gates)

    @given(circuit=supported_circuits())
    @settings(max_examples=examples(25))
    def test_round_trip_is_idempotent(self, circuit):
        once = circuit_to_qasm(circuit)
        twice = circuit_to_qasm(circuit_from_qasm(once))
        assert once == twice
