"""Property tests of the batched Monte Carlo yield engine.

Invariants covered (ISSUE satellite list):

* a batch of size 1 through ``estimate_batch`` is *exactly*
  ``estimate_from_arrays`` (same seed => identical ``YieldEstimate``);
* a batch of any size equals the sequential ``estimate_from_arrays``
  loop under common random numbers;
* yield is monotonically non-increasing as ``sigma_ghz`` grows (common
  random numbers, collision-free designs);
* the collision mask is invariant under qubit relabeling;
* connection-free (degenerate) regions always fabricate successfully.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.collision import (
    DEFAULT_THRESHOLDS,
    CollisionThresholds,
    YieldSimulator,
    find_collisions,
)
from strategies import (
    chain_regions,
    examples,
    frequency_vectors,
    grid_frequencies_ghz,
    seeds,
    sigmas_ghz,
    star_regions,
    trial_counts,
)

pytestmark = pytest.mark.property


class TestBatchMatchesSequential:
    @given(region=chain_regions(), sigma=sigmas_ghz, seed=seeds, trials=trial_counts)
    @settings(max_examples=examples(40))
    def test_batch_of_one_is_exactly_estimate_from_arrays(self, region, sigma, seed, trials):
        frequencies, pairs, triples = region
        simulator = YieldSimulator(trials=trials, sigma_ghz=sigma, seed=seed)
        single = simulator.estimate_from_arrays(frequencies, pairs, triples)
        batched = simulator.estimate_batch(frequencies[None, :], pairs, triples)
        assert len(batched) == 1
        assert batched[0] == single

    @given(
        region=star_regions(grid=True),
        candidates=st.lists(grid_frequencies_ghz, min_size=2, max_size=12),
        sigma=sigmas_ghz,
        seed=seeds,
        trials=trial_counts,
    )
    @settings(max_examples=examples(40))
    def test_batch_equals_sequential_loop(self, region, candidates, sigma, seed, trials):
        frequencies, pairs, triples = region
        batch = np.repeat(frequencies[None, :], len(candidates), axis=0)
        batch[:, 0] = candidates
        simulator = YieldSimulator(trials=trials, sigma_ghz=sigma, seed=seed)
        sequential = [simulator.estimate_from_arrays(row, pairs, triples) for row in batch]
        assert simulator.estimate_batch(batch, pairs, triples) == sequential

    @given(region=star_regions(grid=True), sigma=sigmas_ghz, seed=seeds)
    @settings(max_examples=examples(25))
    def test_chunking_never_changes_estimates(self, region, sigma, seed):
        frequencies, pairs, triples = region
        batch = np.repeat(frequencies[None, :], 9, axis=0)
        simulator = YieldSimulator(trials=128, sigma_ghz=sigma, seed=seed)
        reference = simulator.estimate_batch(batch, pairs, triples)
        tiny_chunks = simulator.estimate_batch(
            batch, pairs, triples, max_chunk_elements=1
        )
        assert tiny_chunks == reference


class TestSigmaMonotonicity:
    @given(
        region=chain_regions(grid=True, max_qubits=5),
        sigma_lo=st.floats(0.002, 0.012, allow_nan=False),
        factor=st.floats(1.25, 2.0, allow_nan=False),
        seed=seeds,
    )
    @settings(
        max_examples=examples(40),
        suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
    )
    def test_yield_non_increasing_in_sigma_under_crn(self, region, sigma_lo, factor, seed):
        """More fabrication noise never helps a *safely designed* region.

        The restriction to margin-safe designs is essential, not cosmetic:
        for a design sitting just outside a collision carve-out (e.g. a
        pair detuned by 20 MHz against the 17 MHz condition-1 threshold),
        growing sigma pushes fabrication samples *through* the carve-out
        and the yield genuinely rises — the model is only monotone once
        every designed detuning keeps a few sigma of margin from the
        nearest carve-out boundary, which is exactly how Algorithm 3's
        optimized plans look.
        """
        frequencies, pairs, triples = region
        designed = {q: float(f) for q, f in enumerate(frequencies)}
        sigma_hi = sigma_lo * factor
        margin = 2.5 * sigma_hi
        safe = CollisionThresholds(
            condition_1_ghz=DEFAULT_THRESHOLDS.condition_1_ghz + margin,
            condition_2_ghz=DEFAULT_THRESHOLDS.condition_2_ghz + margin,
            condition_3_ghz=DEFAULT_THRESHOLDS.condition_3_ghz + margin,
            condition_5_ghz=DEFAULT_THRESHOLDS.condition_5_ghz + margin,
            condition_6_ghz=DEFAULT_THRESHOLDS.condition_6_ghz + margin,
            condition_7_ghz=DEFAULT_THRESHOLDS.condition_7_ghz + margin,
        )
        assume(not find_collisions(designed, pairs, triples, thresholds=safe))
        trials = 400
        low = YieldSimulator(trials=trials, sigma_ghz=sigma_lo, seed=seed)
        high = YieldSimulator(trials=trials, sigma_ghz=sigma_hi, seed=seed)
        successes_lo = low.estimate_from_arrays(frequencies, pairs, triples).successes
        successes_hi = high.estimate_from_arrays(frequencies, pairs, triples).successes
        # Common random numbers couple the two runs trial by trial; a tiny
        # slack absorbs the rare trial that a larger kick moves *out* of a
        # carve-out interval.
        slack = trials // 50
        assert successes_hi <= successes_lo + slack


class TestRelabelingInvariance:
    @given(
        region=chain_regions(min_qubits=2, max_qubits=6),
        sigma=sigmas_ghz,
        seed=seeds,
        permutation_seed=seeds,
    )
    @settings(max_examples=examples(40))
    def test_collision_mask_invariant_under_qubit_relabeling(
        self, region, sigma, seed, permutation_seed
    ):
        frequencies, pairs, triples = region
        num_qubits = frequencies.shape[0]
        trials = 64
        rng = np.random.default_rng(seed)
        sampled = frequencies[None, :] + rng.normal(0.0, sigma, size=(trials, num_qubits))
        simulator = YieldSimulator(trials=trials, sigma_ghz=sigma, seed=seed)
        mask = simulator.collision_mask(sampled, pairs, triples)

        permutation = np.random.default_rng(permutation_seed).permutation(num_qubits)
        # Column q of the relabeled sample matrix holds the frequencies of
        # the qubit that was relabeled *to* q.
        relabeled = np.empty_like(sampled)
        relabeled[:, permutation] = sampled
        relabeled_pairs = [(int(permutation[a]), int(permutation[b])) for a, b in pairs]
        relabeled_triples = [
            (int(permutation[j]), int(permutation[i]), int(permutation[k]))
            for j, i, k in triples
        ]
        relabeled_mask = simulator.collision_mask(
            relabeled, relabeled_pairs, relabeled_triples
        )
        assert np.array_equal(mask, relabeled_mask)

class TestDegenerateRegions:
    @given(frequencies=frequency_vectors(1, 4), sigma=sigmas_ghz, seed=seeds)
    @settings(max_examples=examples(30))
    def test_connection_free_regions_always_succeed(self, frequencies, sigma, seed):
        simulator = YieldSimulator(trials=64, sigma_ghz=sigma, seed=seed)
        estimate = simulator.estimate_from_arrays(frequencies, [], [])
        assert estimate.yield_rate == 1.0
        assert estimate.successes == 64
        batched = simulator.estimate_batch(
            np.repeat(frequencies[None, :], 3, axis=0), [], []
        )
        assert all(e.yield_rate == 1.0 for e in batched)
