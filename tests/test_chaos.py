"""Chaos matrix: seeded fault schedules against real supervised sweeps.

Every scenario arms a deterministic :mod:`repro.faults` plan and runs
the full CLI sweep under supervision, then asserts the two contracts of
the fault-tolerance layer:

* **byte identity** — for every non-poisoned task the sweep output is
  byte-identical to the fault-free baseline, whatever was killed,
  hung, or demoted along the way;
* **accounting** — every retry, crash, kill, demotion, and quarantine
  shows up in the ``--metrics-out`` counters and the structured
  ``--failures-out`` report.

These tests run full (fast-settings) sweeps with real worker kills, so
they carry the ``chaos`` marker: run them alone with ``-m chaos``.  The
checkpoint-backend matrix honors ``REPRO_CHAOS_STORES`` (comma list,
default ``sharded,sqlite``) so CI can shard the matrix across jobs.
"""

import json
import os

import pytest

from repro.cli import main
from repro.design import reset_allocation_call_count, reset_shared_caches
from repro.evaluation import (
    EvaluationSettings,
    ExperimentConfig,
    SweepExecutor,
    generation_task_key,
    point_task_key,
)
from repro.evaluation import parallel
from repro.evaluation.checkpoint import SweepCheckpoint
from repro.faults import FaultPlan, FaultSpec, write_plan

pytestmark = pytest.mark.chaos

BENCHMARK = "sym6_145"
CONFIGS = (ExperimentConfig.EFF_FULL, ExperimentConfig.EFF_LAYOUT_ONLY)
FAST = [
    "--trials", "250", "--local-trials", "60",
    "--configs", "eff-full", "eff-layout-only",
]
API_SETTINGS = dict(yield_trials=250, frequency_local_trials=60)

STORES = os.environ.get("REPRO_CHAOS_STORES", "sharded,sqlite").split(",")


def _store_arg(kind, tmp_path):
    if kind == "sharded":
        return f"sharded:{tmp_path / 'ckpt'}"
    return str(tmp_path / "ckpt.sqlite")


def _clear_process_state():
    parallel.reset_worker_state()
    reset_shared_caches()
    reset_allocation_call_count()


def _plan_path(tmp_path, specs, seed=7):
    path = tmp_path / "fault-plan.json"
    write_plan(FaultPlan(seed=seed, faults=tuple(specs)), path)
    return str(path)


def _run_sweep(tmp_path, name, extra, expect=0):
    """One CLI sweep; returns (output bytes, metrics counters dict)."""
    _clear_process_state()
    out = tmp_path / f"{name}.json"
    metrics_path = tmp_path / f"{name}-metrics.json"
    rc = main([
        "sweep", BENCHMARK, *FAST, "--jobs", "2",
        "--output", str(out), "--metrics-out", str(metrics_path), *extra,
    ])
    assert rc == expect, f"sweep {name!r} exited {rc}, expected {expect}"
    report = json.loads(metrics_path.read_text(encoding="utf-8"))
    return out.read_bytes(), report["counters"], report["derived"]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free sweep's report bytes — the byte-identity oracle."""
    _clear_process_state()
    out = tmp_path_factory.mktemp("chaos-baseline") / "base.json"
    assert main(["sweep", BENCHMARK, *FAST, "--output", str(out)]) == 0
    return out.read_bytes()


@pytest.fixture(scope="module")
def task_digests():
    """Content digests for targeted fault plans, derived exactly as the
    supervisor derives them."""
    _clear_process_state()
    settings = EvaluationSettings(**API_SETTINGS)
    executor = SweepExecutor(settings=settings, configs=CONFIGS, jobs=1)
    points = executor.enumerate_points([BENCHMARK])
    return {
        "generation": generation_task_key(BENCHMARK, "eff-full", settings),
        "points": [
            point_task_key(
                p.benchmark, p.config.value, p.arch_index, p.architecture, settings,
            )
            for p in points
        ],
    }


def test_supervised_fault_free_matches_plain_executor(tmp_path, baseline):
    payload, counters, derived = _run_sweep(tmp_path, "plain", ["--supervised"])
    assert payload == baseline
    assert counters["supervisor/tasks"] == 7  # 2 generation + 5 points
    assert "supervisor/retries" not in counters
    assert derived["supervisor/quarantine_fraction"] == 0.0


def test_kill_mid_task_retries_to_identical_bytes(tmp_path, baseline):
    """SIGKILL on every task's first attempt: all retried, zero drift."""
    plan = _plan_path(tmp_path, [
        FaultSpec(site="generate:start", kind="kill"),
        FaultSpec(site="evaluate:start", kind="kill"),
    ])
    failures_out = tmp_path / "failures.json"
    payload, counters, _ = _run_sweep(tmp_path, "kill", [
        "--fault-plan", plan, "--failures-out", str(failures_out),
    ])
    assert payload == baseline
    assert counters["supervisor/worker_crashes"] == 7
    assert counters["supervisor/retries"] == 7
    assert counters["supervisor/worker_restarts"] >= 7
    assert counters["supervisor/backend_demotions"] == 7
    report = json.loads(failures_out.read_text(encoding="utf-8"))
    assert report["quarantined"] == []  # written even when empty


def test_hang_past_deadline_is_killed_and_retried(tmp_path, baseline):
    plan = _plan_path(tmp_path, [
        FaultSpec(site="evaluate:start", kind="hang", delay_s=30.0),
    ])
    payload, counters, _ = _run_sweep(tmp_path, "hang", [
        "--fault-plan", plan, "--task-deadline", "1.0",
    ])
    assert payload == baseline
    assert counters["supervisor/deadline_kills"] == 5
    assert counters["supervisor/retries"] == 5


def test_gil_holding_hang_trips_heartbeat_timeout(tmp_path, baseline, task_digests):
    """A wedge that never releases the GIL silences heartbeats too."""
    target = task_digests["points"][0][:12]
    plan = _plan_path(tmp_path, [
        FaultSpec(site="evaluate:start", kind="hang", task=target,
                  delay_s=5.0, hold_gil=True),
    ])
    payload, counters, _ = _run_sweep(tmp_path, "wedge", [
        "--fault-plan", plan, "--heartbeat-timeout", "0.8",
    ])
    assert payload == baseline
    assert counters["supervisor/heartbeat_timeouts"] == 1
    assert counters["supervisor/retries"] == 1


def test_native_kernel_abort_demotes_to_numpy(tmp_path, baseline, task_digests):
    """A segfault inside the screening kernel costs speed, never results."""
    target = task_digests["generation"][:12]
    plan = _plan_path(tmp_path, [
        FaultSpec(site="native-kernel", kind="segv", task=target),
    ])
    payload, counters, _ = _run_sweep(tmp_path, "segv", ["--fault-plan", plan])
    assert payload == baseline
    assert counters["supervisor/worker_crashes"] == 1
    assert counters["supervisor/backend_demotions"] == 1
    assert counters["supervisor/retries"] == 1


@pytest.mark.parametrize("store", STORES)
def test_poison_task_is_quarantined_with_partial_results(
    tmp_path, baseline, task_digests, store,
):
    """A task that dies on *every* attempt is quarantined, reported, and
    recomputed cleanly on the next (fault-free) resume."""
    poisoned = task_digests["points"][0]
    checkpoint = _store_arg(store, tmp_path)
    plan = _plan_path(tmp_path, [
        FaultSpec(site="evaluate:start", kind="exit", task=poisoned[:12],
                  attempts=None),
    ])
    failures_out = tmp_path / "failures.json"
    payload, counters, derived = _run_sweep(tmp_path, "poison", [
        "--fault-plan", plan, "--max-task-retries", "1",
        "--checkpoint", checkpoint, "--failures-out", str(failures_out),
    ], expect=3)
    assert payload != baseline  # one point is genuinely missing
    assert counters["supervisor/quarantined_tasks"] == 1
    assert counters["supervisor/worker_crashes"] == 2
    assert derived["supervisor/quarantine_fraction"] == pytest.approx(1 / 7)

    report = json.loads(failures_out.read_text(encoding="utf-8"))
    assert report["format"] == "repro-sweep-failures"
    (item,) = report["quarantined"]
    assert item["key"] == poisoned
    assert item["task"] == "point" and item["benchmark"] == BENCHMARK
    assert item["attempts"] == 2
    assert [f["reason"] for f in item["failures"]] == ["crash", "crash"]
    # The retry after the first crash ran demoted to the numpy backend.
    assert item["failures"][1]["backend"] == "numpy"

    # The quarantine is recorded in the checkpoint store itself.
    recorded = SweepCheckpoint(checkpoint)
    recorded.load()
    assert [f["key"] for f in recorded.failures()] == [poisoned]

    # Next run, no fault: the poisoned task recomputes and the resumed
    # sweep output is byte-identical to the never-faulted baseline.
    _clear_process_state()
    out = tmp_path / "healed.json"
    assert main([
        "sweep", BENCHMARK, *FAST, "--supervised",
        "--checkpoint", checkpoint, "--resume", "--output", str(out),
    ]) == 0
    assert out.read_bytes() == baseline


def test_torn_checkpoint_salvage_resumes_byte_identical(tmp_path, baseline):
    """A checkpoint torn mid-append is salvaged, not fatal, on --resume."""
    checkpoint = tmp_path / "ck.json"
    payload, _, _ = _run_sweep(tmp_path, "record", [
        "--supervised", "--checkpoint", str(checkpoint),
    ])
    assert payload == baseline
    intact = checkpoint.read_bytes()
    checkpoint.write_bytes(intact[:-40])  # the torn trailing record

    _clear_process_state()
    out = tmp_path / "salvaged.json"
    assert main([
        "sweep", BENCHMARK, *FAST,
        "--checkpoint", str(checkpoint), "--resume", "--output", str(out),
    ]) == 0
    assert out.read_bytes() == baseline
    quarantined = list(tmp_path.glob("ck.json.quarantine-*"))
    assert len(quarantined) == 1
    assert quarantined[0].read_bytes() == intact[:-40]
