"""Tests for the MappingResult performance metric."""

import pytest

from repro.circuit import QuantumCircuit, cx, h
from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.mapping import MappingResult, route_circuit
from repro.mapping.router import CNOTS_PER_SWAP


class TestMappingResult:
    def test_total_gates_charges_three_cnots_per_swap(self):
        result = MappingResult(
            circuit_name="c",
            architecture_name="a",
            original_gates=100,
            original_two_qubit_gates=40,
            num_swaps=7,
            initial_mapping={},
            final_mapping={},
        )
        assert result.total_gates == 100 + 3 * 7
        assert result.total_two_qubit_gates == 40 + 3 * 7
        assert result.overhead_gates == 21
        assert result.overhead_ratio == pytest.approx(0.21)

    def test_zero_original_gates_overhead_ratio(self):
        result = MappingResult("c", "a", 0, 0, 0, {}, {})
        assert result.overhead_ratio == 0.0

    def test_summary_keys(self):
        result = MappingResult("c", "a", 10, 4, 1, {}, {})
        summary = result.summary()
        assert summary["total_gates"] == 13
        assert summary["num_swaps"] == 1

    def test_cnots_per_swap_constant(self):
        assert CNOTS_PER_SWAP == 3


class TestRouteCircuit:
    def test_route_preserves_original_gate_count(self, line_circuit):
        result = route_circuit(line_circuit, ibm_16q_2x8())
        assert result.original_gates == len(line_circuit)
        assert result.original_two_qubit_gates == line_circuit.num_two_qubit_gates

    def test_total_gates_consistent_with_swaps(self, line_circuit):
        result = route_circuit(line_circuit, ibm_16q_2x8())
        assert result.total_gates == result.original_gates + 3 * result.num_swaps

    def test_keep_routed_circuit_flag(self, line_circuit):
        kept = route_circuit(line_circuit, ibm_16q_2x8(), keep_routed_circuit=True)
        dropped = route_circuit(line_circuit, ibm_16q_2x8(), keep_routed_circuit=False)
        assert kept.routed_circuit is not None
        assert dropped.routed_circuit is None
        assert kept.total_gates == dropped.total_gates

    def test_disconnected_architecture_rejected(self):
        circuit = QuantumCircuit(2).extend([cx(0, 1)])
        disconnected = Architecture(
            name="disc",
            lattice=Lattice.from_coordinates({0: (0, 0), 1: (5, 5)}),
            buses=[],
        )
        with pytest.raises(ValueError):
            route_circuit(circuit, disconnected)

    def test_architecture_smaller_than_circuit_rejected(self):
        circuit = QuantumCircuit(6).extend([cx(0, 5)])
        small = Architecture.from_layout("small", Lattice.rectangle(1, 3))
        with pytest.raises(ValueError):
            route_circuit(circuit, small)

    def test_deterministic_gate_count(self, line_circuit):
        first = route_circuit(line_circuit, ibm_16q_2x8()).total_gates
        second = route_circuit(line_circuit, ibm_16q_2x8()).total_gates
        assert first == second

    def test_result_names_recorded(self, line_circuit):
        result = route_circuit(line_circuit, ibm_16q_2x8())
        assert result.circuit_name == line_circuit.name
        assert result.architecture_name == "ibm_16q_2x8_2qbus"
