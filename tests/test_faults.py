"""Unit tests for the deterministic fault-injection layer (repro.faults).

Covers the plan format (parse/validate/round-trip), the content-addressed
matching semantics (site wildcards, digest prefixes, attempt lists, seeded
rate draws), and the injection runtime (arming, task contexts, the
``exception`` and ``corrupt`` kinds — the only ones that can fire safely
inside the test process).
"""

import json

import pytest

from repro import faults
from repro.faults import (
    FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    PLAN_FORMAT,
    PLAN_VERSION,
    write_plan,
)
from repro.runtime.metrics import global_metrics

DIGEST = "3f9a" + "0" * 60


@pytest.fixture(autouse=True)
def _disarm():
    """No fault plan leaks into (or out of) any test."""
    faults.reset()
    yield
    faults.reset()


# -- spec validation ---------------------------------------------------------


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(site="task:start", kind="meteor")


def test_empty_site_rejected():
    with pytest.raises(ValueError, match="site"):
        FaultSpec(site="", kind="kill")


def test_rate_out_of_range_rejected():
    with pytest.raises(ValueError, match="rate"):
        FaultSpec(site="task:start", kind="kill", rate=1.5)


def test_all_kinds_constructible():
    for kind in FAULT_KINDS:
        assert FaultSpec(site="task:start", kind=kind).kind == kind


# -- matching semantics ------------------------------------------------------


def test_default_spec_is_transient_first_attempt_only():
    spec = FaultSpec(site="evaluate:start", kind="kill")
    assert spec.matches("evaluate:start", DIGEST, 0)
    assert not spec.matches("evaluate:start", DIGEST, 1)


def test_null_attempts_is_poison_every_attempt():
    spec = FaultSpec(site="evaluate:start", kind="exit", attempts=None)
    for attempt in (0, 1, 2, 7):
        assert spec.matches("evaluate:start", DIGEST, attempt)


def test_site_wildcard_and_mismatch():
    spec = FaultSpec(site="*", kind="kill")
    assert spec.matches("anything:at-all", DIGEST, 0)
    named = FaultSpec(site="task:start", kind="kill")
    assert not named.matches("evaluate:start", DIGEST, 0)


def test_task_digest_prefix_targeting():
    spec = FaultSpec(site="task:start", kind="kill", task="3f9a")
    assert spec.matches("task:start", DIGEST, 0)
    assert not spec.matches("task:start", "beef" + "0" * 60, 0)


# -- plan format -------------------------------------------------------------


def test_plan_round_trips_through_json(tmp_path):
    plan = FaultPlan(seed=7, faults=(
        FaultSpec(site="evaluate:start", kind="kill", task="3f9a"),
        FaultSpec(site="task:start", kind="hang", delay_s=60.0, hold_gil=True),
        FaultSpec(site="evaluate:start", kind="exit", attempts=None, exit_code=99),
        FaultSpec(site="checkpoint:record", kind="corrupt", truncate_bytes=32),
    ))
    path = tmp_path / "plan.json"
    write_plan(plan, path)
    assert FaultPlan.load(path) == plan


def test_plan_rejects_wrong_format_and_version():
    with pytest.raises(ValueError, match="not a fault plan"):
        FaultPlan.from_mapping({"format": "something-else", "version": 1})
    with pytest.raises(ValueError, match="version"):
        FaultPlan.from_mapping({"format": PLAN_FORMAT, "version": 2})


def test_plan_rejects_unknown_spec_keys():
    with pytest.raises(ValueError, match="unknown fault spec keys"):
        FaultPlan.from_mapping({
            "format": PLAN_FORMAT, "version": PLAN_VERSION,
            "faults": [{"site": "task:start", "kind": "kill", "surprise": 1}],
        })


def test_plan_file_is_canonical_json(tmp_path):
    path = tmp_path / "plan.json"
    write_plan(FaultPlan(seed=3, faults=(FaultSpec(site="x", kind="kill"),)), path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["format"] == PLAN_FORMAT and payload["seed"] == 3


# -- seeded rate draws -------------------------------------------------------


def _fires(plan, occurrences=100):
    return {
        occ for occ in range(occurrences)
        if plan.select("task:start", DIGEST, 0, occ) is not None
    }


def test_rate_draw_is_deterministic():
    plan = FaultPlan(seed=1, faults=(
        FaultSpec(site="task:start", kind="exception", rate=0.5),
    ))
    assert _fires(plan) == _fires(plan)
    assert 10 < len(_fires(plan)) < 90  # actually thinning, not all-or-nothing


def test_rate_draw_depends_on_seed():
    mk = lambda seed: FaultPlan(seed=seed, faults=(  # noqa: E731
        FaultSpec(site="task:start", kind="exception", rate=0.5),
    ))
    assert _fires(mk(1)) != _fires(mk(2))


def test_rate_zero_never_fires():
    plan = FaultPlan(seed=1, faults=(
        FaultSpec(site="task:start", kind="exception", rate=0.0),
    ))
    assert _fires(plan) == set()


# -- injection runtime -------------------------------------------------------


def test_maybe_inject_is_noop_without_plan():
    faults.maybe_inject("task:start")  # must not raise
    assert not faults.active()


def test_armed_exception_fault_fires_and_counts():
    faults.arm(FaultPlan(faults=(
        FaultSpec(site="task:start", kind="exception", task="3f9a"),
    )))
    before = global_metrics().counter("faults/injected:exception")
    with faults.task_context(DIGEST):
        with pytest.raises(FaultInjected, match="task:start"):
            faults.maybe_inject("task:start")
    assert global_metrics().counter("faults/injected:exception") == before + 1
    # Different task digest: same site stays quiet.
    with faults.task_context("beef" + "0" * 60):
        faults.maybe_inject("task:start")


def test_attempt_scoping_in_task_context():
    faults.arm(FaultPlan(faults=(
        FaultSpec(site="task:start", kind="exception", attempts=(1,)),
    )))
    with faults.task_context(DIGEST, attempt=0):
        faults.maybe_inject("task:start")  # attempt 0: no match
    with faults.task_context(DIGEST, attempt=1):
        with pytest.raises(FaultInjected):
            faults.maybe_inject("task:start")


def test_task_context_nests_and_restores():
    assert faults.current_context() == ("", 0)
    with faults.task_context("aaaa", attempt=1):
        assert faults.current_context() == ("aaaa", 1)
        with faults.task_context("bbbb", attempt=2):
            assert faults.current_context() == ("bbbb", 2)
        assert faults.current_context() == ("aaaa", 1)
    assert faults.current_context() == ("", 0)


def test_corrupt_fault_tears_store_tail(tmp_path):
    target = tmp_path / "store.json"
    target.write_bytes(b"x" * 100)
    faults.arm(FaultPlan(faults=(
        FaultSpec(site="checkpoint:record", kind="corrupt", truncate_bytes=30),
    )))
    faults.maybe_inject("checkpoint:record", store_path=target)
    assert target.stat().st_size == 70


def test_corrupt_fault_without_store_path_is_noop():
    faults.arm(FaultPlan(faults=(
        FaultSpec(site="checkpoint:record", kind="corrupt"),
    )))
    faults.maybe_inject("checkpoint:record")  # nothing to tear: no raise


def test_reset_disarms():
    faults.arm(FaultPlan(faults=(FaultSpec(site="*", kind="exception"),)))
    assert faults.active()
    faults.reset()
    assert not faults.active()
    faults.maybe_inject("task:start")


def test_fault_boundary_marks_function():
    def handler():
        return "ok"

    marked = faults.fault_boundary(handler)
    assert marked is handler
    assert handler.__fault_boundary__ is True


def test_cli_rejects_missing_plan_before_forking(tmp_path):
    # A bad --fault-plan path must fail at the CLI, not surface lazily
    # inside every worker as an "error" failure that quarantines the
    # whole sweep.
    from repro import cli

    with pytest.raises(FileNotFoundError):
        cli.main([
            "sweep", "sym6_145", "--trials", "250", "--local-trials", "60",
            "--configs", "eff-full",
            "--fault-plan", str(tmp_path / "no-such-plan.json"),
        ])
