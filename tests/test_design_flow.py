"""Tests for the end-to-end design flow (paper Figure 1)."""


from repro.design import DesignFlow, DesignOptions, design_architecture, design_architecture_series
from repro.design.flow import BusStrategy, FrequencyStrategy
from repro.hardware.frequency import FIVE_FREQUENCY_VALUES_GHZ


FAST = DesignOptions(local_trials=200)


class TestSingleDesign:
    def test_design_produces_valid_architecture(self, small_benchmark):
        arch = design_architecture(small_benchmark, max_four_qubit_buses=1, options=FAST)
        assert arch.is_valid(), arch.validate()
        assert arch.num_qubits == small_benchmark.num_qubits

    def test_design_has_frequencies_for_every_qubit(self, small_benchmark):
        arch = design_architecture(small_benchmark, options=FAST)
        assert set(arch.frequencies) == set(arch.qubits)

    def test_bus_count_respected(self, small_benchmark):
        flow = DesignFlow(small_benchmark, FAST)
        assert len(flow.design(0).four_qubit_buses()) == 0
        assert len(flow.design(1).four_qubit_buses()) == 1

    def test_pseudo_mapping_recorded(self, small_benchmark):
        arch = design_architecture(small_benchmark, options=FAST)
        assert arch.logical_to_physical == {q: q for q in range(small_benchmark.num_qubits)}

    def test_profile_and_layout_are_cached(self, small_benchmark):
        flow = DesignFlow(small_benchmark, FAST)
        assert flow.profile is flow.profile
        assert flow.layout is flow.layout

    def test_architecture_names_are_distinct(self, small_benchmark):
        flow = DesignFlow(small_benchmark, FAST)
        names = {flow.design(k).name for k in range(3)}
        assert len(names) == 3


class TestDesignSeries:
    def test_series_covers_zero_to_max(self, small_benchmark):
        flow = DesignFlow(small_benchmark, FAST)
        series = flow.design_series()
        assert len(series) == flow.max_four_qubit_buses() + 1
        assert [len(a.four_qubit_buses()) for a in series] == list(range(len(series)))

    def test_series_connections_are_monotonic(self, small_benchmark):
        series = design_architecture_series(small_benchmark, options=FAST)
        connections = [arch.num_connections() for arch in series]
        assert connections == sorted(connections)

    def test_series_members_all_valid(self, small_benchmark):
        for arch in design_architecture_series(small_benchmark, options=FAST):
            assert arch.is_valid(), arch.validate()

    def test_explicit_max_buses(self, small_benchmark):
        series = design_architecture_series(small_benchmark, max_buses=1, options=FAST)
        assert len(series) == 2


class TestStrategies:
    def test_five_frequency_strategy_uses_scheme_values(self, small_benchmark):
        options = DesignOptions(frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY)
        arch = design_architecture(small_benchmark, options=options)
        assert set(arch.frequencies.values()) <= set(FIVE_FREQUENCY_VALUES_GHZ)

    def test_random_bus_strategy_is_seeded(self, small_benchmark):
        options_a = DesignOptions(
            bus_strategy=BusStrategy.RANDOM, random_bus_seed=9, local_trials=200
        )
        options_b = DesignOptions(
            bus_strategy=BusStrategy.RANDOM, random_bus_seed=9, local_trials=200
        )
        arch_a = design_architecture(small_benchmark, 2, options_a)
        arch_b = design_architecture(small_benchmark, 2, options_b)
        squares_a = [bus.square.origin for bus in arch_a.four_qubit_buses()]
        squares_b = [bus.square.origin for bus in arch_b.four_qubit_buses()]
        assert squares_a == squares_b

    def test_random_bus_architectures_are_valid(self, small_benchmark):
        options = DesignOptions(
            bus_strategy=BusStrategy.RANDOM, random_bus_seed=4, local_trials=200
        )
        arch = design_architecture(small_benchmark, 2, options)
        assert arch.is_valid(), arch.validate()

    def test_ising_special_case_no_useful_buses(self):
        """Section 5.3.1: a pure chain program gains nothing from 4-qubit buses.

        The filtered-weight selection should find zero cross-coupling weight
        on every square, because no two-qubit gates act on diagonal pairs.
        """
        from repro.benchmarks import ising_model_circuit
        from repro.design.bus_selection import cross_coupling_weights

        circuit = ising_model_circuit(8, trotter_steps=2)
        flow = DesignFlow(circuit, FAST)
        weights = cross_coupling_weights(flow.layout.lattice, flow.profile)
        assert all(weight == 0 for weight in weights.values())
