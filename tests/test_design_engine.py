"""Tests for the staged design engine (profile/layout/selection/frequency caches)."""

import pytest

from repro.benchmarks import get_benchmark
from repro.design import DesignEngine, DesignFlow, DesignOptions, StageCache
from repro.design.bus_selection import select_four_qubit_buses, select_random_buses
from repro.design.engine import BusStrategy, FrequencyStrategy
from repro.evaluation import ExperimentConfig, architectures_for_config


FAST = DesignOptions(local_trials=200)


@pytest.fixture
def engine():
    return DesignEngine()


@pytest.fixture
def circuit():
    return get_benchmark("sym6_145")


def fingerprint(architecture):
    return (
        architecture.name,
        tuple(sorted(bus.square.origin for bus in architecture.four_qubit_buses())),
        tuple(sorted(architecture.coupling_edges())),
        tuple(sorted(architecture.frequencies.items())),
    )


class TestStageCaches:
    def test_profile_and_layout_computed_once_per_content(self, engine, circuit):
        first = engine.profile(circuit)
        assert engine.profile(circuit) is first
        layout = engine.layout(circuit)
        assert engine.layout(circuit) is layout
        stats = engine.stats()
        assert stats["profile"]["misses"] == 1
        assert stats["layout"]["misses"] == 1

    def test_equal_circuit_objects_share_stages(self, engine, circuit):
        other = get_benchmark("sym6_145")
        assert other is not circuit
        assert engine.profile(circuit) is engine.profile(other)
        assert engine.stats()["profile"]["misses"] == 1

    def test_bus_selection_prefixes_match_direct_calls(self, engine, circuit):
        profile = engine.profile(circuit)
        layout = engine.layout(circuit)
        for k in range(engine.max_four_qubit_buses(circuit) + 2):
            direct = select_four_qubit_buses(layout.lattice, profile, k)
            via_engine = engine.bus_selection(circuit, k)
            assert [s.origin for s in via_engine.selected_squares] == \
                [s.origin for s in direct.selected_squares]
            assert via_engine.max_available == direct.max_available
            assert via_engine.weights == direct.weights
        # One full-length selection serves every budget.
        assert engine.stats()["bus-selection"]["misses"] == 1

    def test_random_bus_selection_prefixes_match_direct_calls(self, engine, circuit):
        layout = engine.layout(circuit)
        options = DesignOptions(bus_strategy=BusStrategy.RANDOM, random_bus_seed=5)
        for k in range(4):
            direct = select_random_buses(layout.lattice, k, seed=5)
            via_engine = engine.bus_selection(circuit, k, options)
            assert [s.origin for s in via_engine.selected_squares] == \
                [s.origin for s in direct.selected_squares]

    def test_unseeded_random_selection_bypasses_cache(self, engine, circuit):
        options = DesignOptions(bus_strategy=BusStrategy.RANDOM, random_bus_seed=None)
        before = engine.stats()["bus-selection"]["entries"]
        engine.bus_selection(circuit, 2, options)
        assert engine.stats()["bus-selection"]["entries"] == before

    def test_frequency_stage_shared_across_identical_connection_designs(
        self, engine, circuit
    ):
        first = engine.design(circuit, 1, FAST)
        # A differently named architecture with the same coupling design
        # reuses the memoized allocation.
        second = engine.design(circuit, 1, FAST, name="renamed")
        assert second.frequencies == first.frequencies
        stats = engine.stats()["frequency"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_designs_are_caller_owned(self, engine, circuit):
        first = engine.design(circuit, 1, FAST)
        first.name = "mutated"
        first.frequencies[0] = 9.99
        second = engine.design(circuit, 1, FAST)
        assert second.name != "mutated"
        assert second.frequencies[0] != 9.99


class TestEngineEquivalence:
    def test_design_matches_private_flow(self, engine, circuit):
        from_engine = engine.design(circuit, 1, FAST)
        from_flow = DesignFlow(circuit, FAST).design(1)
        assert fingerprint(from_engine) == fingerprint(from_flow)

    def test_series_matches_private_flow(self, engine, circuit):
        via_engine = engine.design_series(circuit, options=FAST)
        via_flow = DesignFlow(circuit, FAST).design_series()
        assert [fingerprint(a) for a in via_engine] == [fingerprint(a) for a in via_flow]

    def test_shared_engine_does_not_change_flow_results(self, engine, circuit):
        shared_a = DesignFlow(circuit, FAST, engine=engine).design_series()
        shared_b = DesignFlow(circuit, FAST, engine=engine).design_series()
        private = DesignFlow(circuit, FAST).design_series()
        assert [fingerprint(a) for a in shared_a] == [fingerprint(a) for a in private]
        assert [fingerprint(a) for a in shared_b] == [fingerprint(a) for a in private]

    def test_max_buses_matches_selection(self, engine, circuit):
        direct = select_four_qubit_buses(
            engine.layout(circuit).lattice, engine.profile(circuit), None
        )
        assert engine.max_four_qubit_buses(circuit) == direct.max_available


class TestAblationFlows:
    """The ablation configurations run through the engine with correct reuse."""

    def test_eff_5_freq_reuses_upstream_stages(self, engine, circuit):
        architectures_for_config(
            circuit, ExperimentConfig.EFF_FULL,
            frequency_local_trials=200, engine=engine,
        )
        stats_before = engine.stats()
        five_freq = architectures_for_config(
            circuit, ExperimentConfig.EFF_5_FREQ,
            frequency_local_trials=200, engine=engine,
        )
        stats_after = engine.stats()
        assert five_freq, "eff-5-freq produced no architectures"
        # Same circuit, same layout, same greedy selection: the ablation
        # adds no profile/layout/selection misses and — because the
        # 5-frequency scheme is a closed-form pattern — no frequency-stage
        # work at all.
        for stage in ("profile", "layout", "bus-selection", "frequency"):
            assert stats_after[stage]["misses"] == stats_before[stage]["misses"], stage
        assert stats_after["profile"]["hits"] > stats_before["profile"]["hits"]
        assert all(
            arch.name.endswith("5freq") for arch in five_freq
        )

    def test_eff_rd_bus_runs_through_engine(self, engine, circuit):
        first = architectures_for_config(
            circuit, ExperimentConfig.EFF_RD_BUS,
            random_bus_seeds=(1, 2), frequency_local_trials=200, engine=engine,
        )
        stats = engine.stats()
        # One full random selection sequence per seed (plus the greedy
        # sequence sizing the series), each a single selection-stage miss.
        assert stats["bus-selection"]["misses"] == 3
        assert stats["frequency"]["misses"] <= len(first)
        # Regenerating is served from the caches: no new misses anywhere.
        second = architectures_for_config(
            circuit, ExperimentConfig.EFF_RD_BUS,
            random_bus_seeds=(1, 2), frequency_local_trials=200, engine=engine,
        )
        stats_again = engine.stats()
        for stage in ("profile", "layout", "bus-selection", "frequency"):
            assert stats_again[stage]["misses"] == stats[stage]["misses"], stage
        assert [fingerprint(a) for a in first] == [fingerprint(a) for a in second]

    def test_rd_bus_duplicate_square_sets_share_allocations(self, engine, circuit):
        architectures = architectures_for_config(
            circuit, ExperimentConfig.EFF_RD_BUS,
            random_bus_seeds=(1, 2, 3, 4, 5), frequency_local_trials=200, engine=engine,
        )
        distinct_designs = {
            tuple(sorted(arch.coupling_edges())) for arch in architectures
        }
        stats = engine.stats()["frequency"]
        # Seeds that agree on their selected squares share one Algorithm 3
        # run: allocation misses equal the number of distinct connection
        # designs, not the number of architectures.
        assert stats["misses"] == len(distinct_designs)
        assert len(distinct_designs) < len(architectures)


class TestStageCache:
    def test_lru_bound(self):
        cache = StageCache("test", max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("c",)) == 3

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            StageCache("test", max_entries=0)

    def test_stats_and_clear(self):
        cache = StageCache("test")
        cache.put(("a",), 1)
        cache.lookup(("a",))
        cache.lookup(("missing",))
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
        cache.clear()
        assert len(cache) == 0


class TestEnumCompatibility:
    def test_enums_importable_from_flow_module(self):
        from repro.design.flow import BusStrategy as FlowBus
        from repro.design.flow import FrequencyStrategy as FlowFreq

        assert FlowBus is BusStrategy
        assert FlowFreq is FrequencyStrategy


class TestUnseededRandomSeries:
    def test_unseeded_random_series_never_duplicates(self, engine, circuit):
        """Unseeded random selection redraws per call, so the series must
        dedup on the *built* architectures, like the pre-engine flow."""
        options = DesignOptions(
            bus_strategy=BusStrategy.RANDOM,
            random_bus_seed=None,
            frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY,
        )
        for _attempt in range(3):
            counts = [
                len(arch.four_qubit_buses())
                for arch in engine.design_series(circuit, options=options)
            ]
            assert counts == sorted(set(counts)), counts
