"""Resume byte-identity tests for checkpointed sweeps.

The contract under test: a sweep interrupted after K completed tasks and
restarted with ``--resume`` produces output *byte-identical* to an
uninterrupted run — for any ``--jobs`` count and any checkpoint store
backend — and re-runs zero Algorithm 3 Monte Carlo searches for the
tasks already recorded.

The "interrupted" run is staged through the executor API (generate, then
evaluate only the first K points), which leaves the checkpoint store in
exactly the state a killed worker pool would: some tasks recorded, the
rest absent.
"""

import pytest

from repro.cli import main
from repro.design import (
    allocation_call_count,
    reset_allocation_call_count,
    reset_shared_caches,
)
from repro.evaluation import EvaluationSettings, ExperimentConfig, SweepExecutor
from repro.evaluation import parallel

BENCHMARK = "sym6_145"
CONFIGS = (ExperimentConfig.EFF_FULL, ExperimentConfig.EFF_LAYOUT_ONLY)

#: CLI flags matching :data:`API_SETTINGS` exactly — the checkpoint keys
#: are content digests over the settings, so both spellings of the sweep
#: must hash identically.
FAST = [
    "--trials", "250", "--local-trials", "60",
    "--configs", "eff-full", "eff-layout-only",
]

API_SETTINGS = dict(yield_trials=250, frequency_local_trials=60)


def _clear_process_state():
    """Reset every process-local engine/cache so runs cannot share state
    through anything but the checkpoint store on disk."""
    parallel.reset_worker_state()
    reset_shared_caches()
    reset_allocation_call_count()


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The uninterrupted sweep's ``--output`` report, as raw bytes."""
    _clear_process_state()
    out = tmp_path_factory.mktemp("baseline") / "base.json"
    assert main(["sweep", BENCHMARK, *FAST, "--output", str(out)]) == 0
    return out.read_bytes()


def _interrupt_after(checkpoint_path, completed_points):
    """Run the sweep up to ``completed_points`` evaluated points, then stop
    — the on-disk state a mid-sweep kill leaves behind."""
    _clear_process_state()
    settings = EvaluationSettings(**API_SETTINGS, checkpoint_path=checkpoint_path)
    executor = SweepExecutor(settings=settings, configs=CONFIGS, jobs=1)
    points = executor.enumerate_points([BENCHMARK])
    assert len(points) > completed_points, "sweep too small to interrupt"
    executor.evaluate(points[:completed_points])
    return len(points)


@pytest.mark.parametrize(
    "store", ["sharded:{tmp}/ckpt", "{tmp}/ckpt.sqlite"], ids=["sharded", "sqlite"]
)
def test_interrupted_sweep_resumes_byte_identical(tmp_path, baseline, store):
    checkpoint = store.format(tmp=tmp_path)
    total = _interrupt_after(checkpoint, completed_points=3)

    # First resume recomputes only the missing points; the recorded
    # generation task is restored without a single Algorithm 3 call.
    _clear_process_state()
    out = tmp_path / "resumed.json"
    assert main([
        "sweep", BENCHMARK, *FAST,
        "--checkpoint", checkpoint, "--resume", "--output", str(out),
    ]) == 0
    assert out.read_bytes() == baseline
    assert allocation_call_count() == 0
    assert total >= 3

    # Now fully warm: every --jobs count replays to the same bytes, and
    # the in-process run never even builds a routing engine.
    for jobs in ("1", "2", "4"):
        _clear_process_state()
        out = tmp_path / f"resumed-jobs{jobs}.json"
        assert main([
            "sweep", BENCHMARK, *FAST, "--jobs", jobs,
            "--checkpoint", checkpoint, "--resume", "--output", str(out),
        ]) == 0
        assert out.read_bytes() == baseline
        if jobs == "1":
            assert allocation_call_count() == 0
            assert not parallel.active_routing_engines(), (
                "a fully-warm resume should restore every point without "
                "creating a routing engine"
            )


def test_checkpointed_run_output_matches_plain_run(tmp_path, baseline):
    """Recording a checkpoint must not perturb the sweep itself."""
    _clear_process_state()
    out = tmp_path / "checkpointed.json"
    assert main([
        "sweep", BENCHMARK, *FAST,
        "--checkpoint", f"sharded:{tmp_path / 'ckpt'}", "--output", str(out),
    ]) == 0
    assert out.read_bytes() == baseline


def test_resumed_stdout_matches_uninterrupted_stdout(tmp_path, capsys):
    """Beyond the JSON report: the printed tables are identical too."""
    _clear_process_state()
    assert main(["sweep", BENCHMARK, *FAST]) == 0
    plain = capsys.readouterr().out

    checkpoint = str(tmp_path / "ckpt.sqlite")
    _interrupt_after(checkpoint, completed_points=2)
    capsys.readouterr()  # discard the staging run's output
    _clear_process_state()
    assert main([
        "sweep", BENCHMARK, *FAST, "--checkpoint", checkpoint, "--resume",
    ]) == 0
    assert capsys.readouterr().out == plain


def test_resume_requires_checkpoint(capsys):
    assert main(["sweep", BENCHMARK, *FAST, "--resume"]) == 2
    assert "--resume requires --checkpoint" in capsys.readouterr().err


def test_api_resume_requires_checkpoint_path():
    with pytest.raises(ValueError, match="checkpoint_path"):
        EvaluationSettings(resume=True)


def test_settings_change_invalidates_checkpoint_keys(tmp_path):
    """Content-digest keys: a changed knob must recompute, not replay."""
    from repro.evaluation import generation_task_key, point_task_key

    base = EvaluationSettings(**API_SETTINGS)
    changed = EvaluationSettings(yield_trials=251, frequency_local_trials=60)
    assert generation_task_key(BENCHMARK, "eff-full", base) == \
        generation_task_key(BENCHMARK, "eff-full", changed), \
        "generation keys must ignore evaluation-only knobs"

    design_changed = EvaluationSettings(yield_trials=250, frequency_local_trials=61)
    assert generation_task_key(BENCHMARK, "eff-full", base) != \
        generation_task_key(BENCHMARK, "eff-full", design_changed)

    _clear_process_state()
    settings = EvaluationSettings(
        **API_SETTINGS, checkpoint_path=str(tmp_path / "ck.sqlite")
    )
    executor = SweepExecutor(settings=settings, configs=CONFIGS, jobs=1)
    point = executor.enumerate_points([BENCHMARK])[0]
    assert point_task_key(
        point.benchmark, point.config.value, point.arch_index,
        point.architecture, base,
    ) != point_task_key(
        point.benchmark, point.config.value, point.arch_index,
        point.architecture, changed,
    ), "point keys must cover yield trials"
