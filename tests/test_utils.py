"""Tests for shared utilities."""

from repro.utils import deterministic_rng, seed_for


class TestSeeding:
    def test_seed_is_stable(self):
        assert seed_for("a", 1) == seed_for("a", 1)

    def test_different_labels_give_different_seeds(self):
        assert seed_for("a") != seed_for("b")
        assert seed_for("a", 1) != seed_for("a", 2)

    def test_seed_is_32_bit(self):
        assert 0 <= seed_for("anything") < 2 ** 32

    def test_deterministic_rng_reproducible(self):
        first = deterministic_rng("x", 3).random(5)
        second = deterministic_rng("x", 3).random(5)
        assert (first == second).all()

    def test_deterministic_rng_differs_across_labels(self):
        assert (deterministic_rng("x").random(5) != deterministic_rng("y").random(5)).any()
