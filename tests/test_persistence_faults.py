"""Fault-injection and multi-process stress tests for the cache stores.

The fleet-facing backends (sharded, SQLite) have one recovery contract:
any *persisted-state* fault — torn, truncated, or garbage files, a crash
between temp-write and rename, a wrong or mixed schema version — must
degrade the damaged state to "cold" with a :class:`CacheStoreFault`
warning, never crash, never take healthy peer state down with it, and
never silently destroy bytes (unreadable state is quarantined, not
overwritten).  Misconfiguration — pointing one cache kind at another
kind's store — is the deliberate exception: that still fails loud on
every backend.

The stress tests spawn real *processes* (not threads: the sidecar file
locks only matter across processes) hammering one logical store with
overlapping union merges, and require the exact union at the end.
"""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import persistence
from repro.persistence.sharded import shard_for_key

FMT = "repro-test-cache"


def _key_of(record):
    return record["key"]


def _records(*keys):
    return [{"key": key, "value": f"value-of-{key}"} for key in keys]


def _merge(path, *keys):
    return persistence.union_merge_save(path, FMT, 1, _records(*keys), _key_of)


def _read_keys(path, **kwargs):
    records = persistence.read_cache_entries(path, FMT, 1, **kwargs)
    return sorted(record["key"] for record in records or [])


def _shard_file(root, key):
    return Path(root) / shard_for_key(key) / "entries.json"


@pytest.fixture
def sharded(tmp_path):
    """A populated sharded store: the path string and three distinct keys."""
    path = f"sharded:{tmp_path / 'store'}"
    keys = ["alpha", "bravo", "charlie"]
    shards = {shard_for_key(key) for key in keys}
    assert len(shards) == 3, "fixture keys must land in distinct shards"
    _merge(path, *keys)
    return path, keys


class TestShardedFaults:
    def test_garbage_shard_degrades_to_cold_and_spares_peers(self, sharded):
        path, keys = sharded
        _shard_file(path[len("sharded:"):], keys[0]).write_bytes(b"\x00garbage\xff")
        with pytest.warns(persistence.CacheStoreFault, match="as cold"):
            assert _read_keys(path) == sorted(keys[1:])

    def test_truncated_shard_degrades_to_cold(self, sharded):
        path, keys = sharded
        shard = _shard_file(path[len("sharded:"):], keys[1])
        torn = shard.read_bytes()[: len(shard.read_bytes()) // 2]
        shard.write_bytes(torn)
        with pytest.warns(persistence.CacheStoreFault):
            assert keys[1] not in _read_keys(path)
            assert keys[0] in _read_keys(path)

    def test_crash_leftover_temp_files_are_ignored(self, sharded):
        """A writer killed between temp-write and ``os.replace`` leaves an
        ``entries.json.*.tmp`` orphan; readers must not even warn."""
        path, keys = sharded
        shard = _shard_file(path[len("sharded:"):], keys[0])
        (shard.parent / "entries.json.abc123.tmp").write_text('{"half": ')
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _read_keys(path) == sorted(keys)

    def test_wrong_version_shard_degrades_to_cold(self, sharded):
        path, keys = sharded
        shard = _shard_file(path[len("sharded:"):], keys[2])
        shard.write_text(json.dumps(
            {"format": FMT, "version": 99, "entries": _records(keys[2])}
        ))
        with pytest.warns(persistence.CacheStoreFault, match="version 99"):
            assert _read_keys(path) == sorted(keys[:2])

    def test_mixed_version_store_reads_current_shards(self, sharded):
        """v1 and v99 shards side by side: the store serves the v1 subset."""
        path, keys = sharded
        for stale in keys[:2]:
            shard = _shard_file(path[len("sharded:"):], stale)
            shard.write_text(json.dumps(
                {"format": FMT, "version": 99, "entries": _records(stale)}
            ))
        with pytest.warns(persistence.CacheStoreFault):
            assert _read_keys(path) == [keys[2]]

    def test_merge_quarantines_unreadable_shard(self, sharded):
        """Recovery never destroys bytes: the bad file is set aside."""
        path, keys = sharded
        shard = _shard_file(path[len("sharded:"):], keys[0])
        shard.write_bytes(b"not json at all")
        with pytest.warns(persistence.CacheStoreFault, match="quarantined"):
            _merge(path, keys[0])
        quarantined = list(shard.parent.glob("entries.json.quarantine-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b"not json at all"
        # The shard is rebuilt with the merged record; peers untouched.
        assert _read_keys(path) == sorted(keys)

    def test_wrong_format_still_fails_loud(self, sharded):
        """Misconfiguration is not corruption: another repro cache kind's
        shard must raise, not be silently treated as cold."""
        path, keys = sharded
        shard = _shard_file(path[len("sharded:"):], keys[0])
        shard.write_text(json.dumps(
            {"format": "repro-routing-cache", "version": 1, "entries": []}
        ))
        with pytest.raises(ValueError, match="not a repro-test-cache"):
            persistence.read_cache_entries(path, FMT, 1)

    def test_missing_store_semantics(self, tmp_path):
        path = f"sharded:{tmp_path / 'nope'}"
        assert persistence.read_cache_entries(path, FMT, 1, missing_ok=True) is None
        with pytest.raises(FileNotFoundError):
            persistence.read_cache_entries(path, FMT, 1)

    def test_faults_are_recorded_on_the_store(self, sharded):
        path, keys = sharded
        _shard_file(path[len("sharded:"):], keys[0]).write_bytes(b"junk")
        store = persistence.open_store(path)
        with pytest.warns(persistence.CacheStoreFault):
            store.read(FMT, 1)
        assert len(store.faults) == 1
        assert "cold" in store.faults[0]


@pytest.fixture
def sqlite_store(tmp_path):
    path = tmp_path / "cache.sqlite"
    _merge(path, "alpha", "bravo", "charlie")
    return path


class TestSqliteFaults:
    def test_garbage_file_degrades_to_cold(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"\x00\x01\x02 this is not a database \xff" * 8)
        with pytest.warns(persistence.CacheStoreFault, match="as cold"):
            assert persistence.read_cache_entries(path, FMT, 1) == []

    def test_merge_quarantines_garbage_then_starts_fresh(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        original = b"\x00\x01\x02 this is not a database \xff" * 8
        path.write_bytes(original)
        with pytest.warns(persistence.CacheStoreFault, match="quarantined"):
            _merge(path, "fresh")
        assert _read_keys(path) == ["fresh"]
        quarantined = list(tmp_path.glob("garbage.sqlite.quarantine-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == original

    def test_truncated_database_degrades_to_cold(self, sqlite_store):
        # Populate enough rows to span multiple pages, then tear the file.
        _merge(sqlite_store, *[f"bulk-{i}" for i in range(200)])
        data = sqlite_store.read_bytes()
        assert len(data) > 4096
        sqlite_store.write_bytes(data[: 4096 + 512])
        with pytest.warns(persistence.CacheStoreFault, match="as cold"):
            assert persistence.read_cache_entries(sqlite_store, FMT, 1) == []

    def test_wrong_version_reads_cold(self, sqlite_store):
        with sqlite3.connect(sqlite_store) as connection:
            connection.execute(
                "UPDATE meta SET value='99' WHERE key='version'"
            )
        with pytest.warns(persistence.CacheStoreFault, match="version '99'"):
            assert persistence.read_cache_entries(sqlite_store, FMT, 1) == []

    def test_wrong_version_merge_quarantines_not_relabels(self, sqlite_store, tmp_path):
        """Upserting on top of a wrong-version database would relabel its
        stale rows as current-version entries; the writer must quarantine
        the file and start fresh instead."""
        with sqlite3.connect(sqlite_store) as connection:
            connection.execute(
                "UPDATE meta SET value='99' WHERE key='version'"
            )
        with pytest.warns(persistence.CacheStoreFault, match="quarantined"):
            _merge(sqlite_store, "fresh")
        assert _read_keys(sqlite_store) == ["fresh"]
        quarantined = list(tmp_path.glob("cache.sqlite.quarantine-*"))
        assert len(quarantined) == 1
        with sqlite3.connect(quarantined[0]) as connection:
            meta = dict(connection.execute("SELECT key, value FROM meta"))
        assert meta["version"] == "99"  # stale bytes preserved verbatim

    def test_wrong_format_still_fails_loud(self, sqlite_store):
        with pytest.raises(ValueError, match="not a widget cache file"):
            persistence.read_cache_entries(
                sqlite_store, "repro-other-cache", 1, kind="widget cache"
            )

    def test_foreign_database_fails_loud(self, tmp_path):
        path = tmp_path / "foreign.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE unrelated (x INTEGER)")
        with pytest.raises(ValueError, match="not a repro-test-cache"):
            persistence.read_cache_entries(path, FMT, 1)

    def test_missing_store_semantics(self, tmp_path):
        path = tmp_path / "nope.sqlite"
        assert persistence.read_cache_entries(path, FMT, 1, missing_ok=True) is None
        with pytest.raises(FileNotFoundError):
            persistence.read_cache_entries(path, FMT, 1)


class TestImageWritesNeedKeys:
    """The fanned-out backends cannot route entries without ``key_of``."""

    @pytest.mark.parametrize("scheme", ["sharded", "sqlite"])
    def test_replace_requires_key_of(self, tmp_path, scheme):
        path = f"{scheme}:{tmp_path / 'store'}"
        with pytest.raises(ValueError, match="key_of"):
            persistence.write_cache_file(path, FMT, 1, _records("a"))


# ---------------------------------------------------------------------------
# Multi-process stress: real processes, overlapping merge batches, and the
# exact union at the end.  The value of every key is a pure function of the
# key, so overlapping writers always agree and the expected final store is
# fully determined.
# ---------------------------------------------------------------------------

_STRESS_WORKERS = 4
_STRESS_BATCHES = 3
_STRESS_SPAN = 10  # keys per worker; stride 5 => every worker overlaps peers

_STRESS_SCRIPT = """
import sys
from repro import persistence

path, start = sys.argv[1], int(sys.argv[2])
for batch in range({batches}):
    records = [
        {{"key": "k%03d" % index, "value": "value-of-k%03d" % index}}
        for index in range(start, start + {span})
    ]
    persistence.union_merge_save(
        path, "{fmt}", 1, records, lambda record: record["key"]
    )
""".format(batches=_STRESS_BATCHES, span=_STRESS_SPAN, fmt=FMT)


def _stress_paths(tmp_path):
    return [
        f"json:{tmp_path / 'stress.json'}",
        f"sharded:{tmp_path / 'stress-dir'}",
        f"sqlite:{tmp_path / 'stress.sqlite'}",
    ]


@pytest.mark.parametrize("backend", ["json", "sharded", "sqlite"])
def test_multiprocess_union_merge_loses_no_updates(tmp_path, backend):
    path = [p for p in _stress_paths(tmp_path) if p.startswith(backend + ":")][0]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    workers = [
        subprocess.Popen(
            [sys.executable, "-c", _STRESS_SCRIPT, path, str(index * 5)],
            env=env,
            stderr=subprocess.PIPE,
        )
        for index in range(_STRESS_WORKERS)
    ]
    failures = []
    for worker in workers:
        _, stderr = worker.communicate(timeout=120)
        if worker.returncode != 0:
            failures.append(stderr.decode())
    assert not failures, "stress workers crashed:\n" + "\n".join(failures)

    expected = {
        "k%03d" % index
        for start in range(0, _STRESS_WORKERS * 5, 5)
        for index in range(start, start + _STRESS_SPAN)
    }
    records = persistence.read_cache_entries(path, FMT, 1)
    assert {record["key"] for record in records} == expected
    for record in records:
        assert record["value"] == f"value-of-{record['key']}"

    # No partial state left behind: no temp files, nothing quarantined.
    leftovers = [
        child
        for child in tmp_path.rglob("*")
        if child.name.endswith(".tmp") or ".quarantine-" in child.name
    ]
    assert leftovers == []
