"""Tests for the text-based visualization helpers."""

import numpy as np

from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.visualization import (
    render_architecture,
    render_coupling_matrix,
    render_lattice,
    render_pareto_scatter,
)


class TestLatticeRendering:
    def test_empty_lattice(self):
        assert "empty" in render_lattice(Lattice())

    def test_grid_rendering_contains_all_qubits(self):
        text = render_lattice(Lattice.rectangle(2, 3))
        for qubit in range(6):
            assert f"q{qubit}" in text

    def test_negative_coordinates_are_normalized(self):
        lattice = Lattice.from_coordinates({0: (-2, -2), 1: (-1, -2)})
        text = render_lattice(lattice)
        assert "q0" in text and "q1" in text

    def test_row_count_matches_height(self):
        text = render_lattice(Lattice.rectangle(3, 2))
        assert len(text.splitlines()) == 3


class TestArchitectureRendering:
    def test_mentions_name_and_resources(self):
        arch = ibm_16q_2x8(use_four_qubit_buses=True)
        text = render_architecture(arch)
        assert arch.name in text
        assert "four-qubit buses" in text
        assert "frequencies" in text

    def test_architecture_without_frequencies(self):
        arch = Architecture.from_layout("bare", Lattice.rectangle(2, 2))
        text = render_architecture(arch)
        assert "frequencies" not in text


class TestMatrixRendering:
    def test_matrix_values_present(self):
        matrix = np.array([[0, 3], [3, 0]])
        text = render_coupling_matrix(matrix)
        assert "3" in text
        assert "q1" in text

    def test_row_count(self):
        matrix = np.zeros((4, 4), dtype=int)
        assert len(render_coupling_matrix(matrix).splitlines()) == 5


class TestParetoScatter:
    def test_scatter_contains_legend_and_axes(self):
        from repro.evaluation.experiment import DataPoint, ExperimentResult
        from repro.evaluation import ExperimentConfig

        result = ExperimentResult(benchmark="demo")
        result.points = [
            DataPoint("demo", ExperimentConfig.IBM, "ibm1", 16, 22, 0, 0.01, 2000),
            DataPoint("demo", ExperimentConfig.EFF_FULL, "eff0", 7, 8, 0, 0.2, 1800),
        ]
        result.normalize()
        text = render_pareto_scatter(result)
        assert "demo" in text
        assert "eff-full" in text
        assert "#" in text and "o" in text

    def test_empty_result(self):
        from repro.evaluation.experiment import ExperimentResult

        assert "no data" in render_pareto_scatter(ExperimentResult(benchmark="empty"))

    def test_zero_yield_clamped_to_bottom(self):
        from repro.evaluation.experiment import DataPoint, ExperimentResult
        from repro.evaluation import ExperimentConfig

        result = ExperimentResult(benchmark="clamp")
        result.points = [
            DataPoint("clamp", ExperimentConfig.IBM, "dead", 20, 43, 6, 0.0, 2500),
        ]
        result.normalize()
        text = render_pareto_scatter(result)
        assert "#" in text
