"""Tests for initial logical-to-physical mapping."""

import pytest

from repro.circuit import QuantumCircuit, cx
from repro.design import DesignFlow, DesignOptions
from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.mapping import initial_mapping
from repro.mapping.distance import DistanceMatrix
from repro.profiling import profile_circuit


class TestGreedyMapping:
    def test_mapping_is_injective_and_complete(self, line_circuit):
        profile = profile_circuit(line_circuit)
        mapping = initial_mapping(profile, ibm_16q_2x8())
        assert len(mapping) == line_circuit.num_qubits
        assert len(set(mapping.values())) == line_circuit.num_qubits

    def test_mapping_targets_exist_on_architecture(self, line_circuit):
        arch = ibm_16q_2x8()
        mapping = initial_mapping(profile_circuit(line_circuit), arch)
        assert set(mapping.values()) <= set(arch.qubits)

    def test_too_small_architecture_rejected(self):
        circuit = QuantumCircuit(5).extend([cx(0, 1)])
        small = Architecture.from_layout("small", Lattice.rectangle(1, 3))
        with pytest.raises(ValueError):
            initial_mapping(profile_circuit(circuit), small)

    def test_strongly_coupled_pair_mapped_adjacent(self):
        circuit = QuantumCircuit(4)
        for _ in range(20):
            circuit.append(cx(0, 1))
        circuit.append(cx(2, 3))
        arch = ibm_16q_2x8()
        mapping = initial_mapping(profile_circuit(circuit), arch)
        distances = DistanceMatrix(arch)
        assert distances.distance(mapping[0], mapping[1]) == 1

    def test_chain_circuit_mapped_with_small_total_distance(self, line_circuit):
        arch = ibm_16q_2x8()
        profile = profile_circuit(line_circuit)
        mapping = initial_mapping(profile, arch)
        distances = DistanceMatrix(arch)
        total = sum(
            distances.distance(mapping[a], mapping[b]) for a, b in profile.coupled_pairs()
        )
        # A 6-qubit chain embeds into the 2x8 grid with all pairs adjacent.
        assert total <= len(profile.coupled_pairs()) + 2


class TestPseudoMappingReuse:
    def test_designed_architecture_uses_recorded_mapping(self, small_benchmark):
        flow = DesignFlow(small_benchmark, DesignOptions(local_trials=200))
        arch = flow.design(0)
        mapping = initial_mapping(profile_circuit(small_benchmark), arch)
        assert mapping == arch.logical_to_physical

    def test_recorded_mapping_ignored_when_it_does_not_cover_circuit(self):
        circuit = QuantumCircuit(4).extend([cx(0, 1), cx(2, 3)])
        arch = ibm_16q_2x8()
        arch.logical_to_physical = {0: 0}  # incomplete: must be ignored
        mapping = initial_mapping(profile_circuit(circuit), arch)
        assert len(mapping) == 4
        assert len(set(mapping.values())) == 4
