"""Tests for the layout design subroutine (Algorithm 1)."""


from repro.circuit import QuantumCircuit, cx
from repro.design import design_layout
from repro.hardware.lattice import manhattan_distance
from repro.profiling import profile_circuit


def layout_for(circuit):
    return design_layout(profile_circuit(circuit))


class TestBasicPlacement:
    def test_every_qubit_placed_exactly_once(self, paper_example_circuit):
        result = layout_for(paper_example_circuit)
        assert sorted(result.lattice.qubits) == list(range(5))
        assert len(set(result.lattice.coordinates().values())) == 5

    def test_highest_degree_qubit_placed_first_at_origin(self, paper_example_circuit):
        result = layout_for(paper_example_circuit)
        assert result.placement_order[0] == 4
        assert result.lattice.node_of(4) == (0, 0)

    def test_placement_order_follows_candidate_degree(self, paper_example_circuit):
        result = layout_for(paper_example_circuit)
        # q0 (degree 3) is the first neighbour placed after q4.
        assert result.placement_order[1] == 0

    def test_pseudo_mapping_is_identity(self, paper_example_circuit):
        result = layout_for(paper_example_circuit)
        assert result.logical_to_physical == {q: q for q in range(5)}

    def test_strongly_coupled_pairs_are_adjacent(self, paper_example_circuit):
        result = layout_for(paper_example_circuit)
        coords = result.lattice.coordinates()
        # The strongest pair (q0, q4) with weight 2 must be nearest neighbours.
        assert manhattan_distance(coords[0], coords[4]) == 1

    def test_layout_patch_is_connected(self, line_circuit):
        result = layout_for(line_circuit)
        lattice = result.lattice
        # Every qubit has at least one lattice neighbour among the placed qubits.
        for qubit in lattice.qubits:
            assert lattice.neighbors_of_qubit(qubit), f"qubit {qubit} is isolated"


class TestChainProgram:
    def test_chain_program_gets_chain_compatible_layout(self, line_circuit):
        result = layout_for(line_circuit)
        coords = result.lattice.coordinates()
        # Every logically coupled pair should be adjacent on the lattice
        # (a chain always embeds perfectly in a 2D grid).
        profile = profile_circuit(line_circuit)
        for a, b in profile.coupled_pairs():
            assert manhattan_distance(coords[a], coords[b]) == 1

    def test_ising_model_layout_supports_all_gates_directly(self):
        from repro.benchmarks import ising_model_circuit

        circuit = ising_model_circuit(10)
        profile = profile_circuit(circuit)
        result = design_layout(profile)
        coords = result.lattice.coordinates()
        for a, b in profile.coupled_pairs():
            assert manhattan_distance(coords[a], coords[b]) == 1


class TestEdgeCases:
    def test_single_qubit_circuit(self):
        circuit = QuantumCircuit(1)
        result = layout_for(circuit)
        assert result.lattice.num_qubits == 1

    def test_circuit_with_no_two_qubit_gates(self):
        circuit = QuantumCircuit(4)
        result = layout_for(circuit)
        assert result.lattice.num_qubits == 4

    def test_disconnected_coupling_graph(self):
        circuit = QuantumCircuit(6).extend([cx(0, 1), cx(0, 1), cx(3, 4)])
        result = layout_for(circuit)
        assert result.lattice.num_qubits == 6
        # The patch must still be lattice-connected so it can be wired up.
        for qubit in result.lattice.qubits:
            assert result.lattice.neighbors_of_qubit(qubit)

    def test_isolated_qubits_are_still_placed(self):
        circuit = QuantumCircuit(5).extend([cx(0, 1)])
        result = layout_for(circuit)
        assert result.lattice.num_qubits == 5

    def test_layout_is_deterministic(self, small_benchmark):
        first = layout_for(small_benchmark).lattice.coordinates()
        second = layout_for(small_benchmark).lattice.coordinates()
        assert first == second

    def test_benchmark_layout_uses_fewer_connections_than_ibm(self, small_benchmark):
        """The paper's Section 5.4.1 point: optimized layouts need fewer resources."""
        from repro.hardware import Architecture, ibm_16q_2x8

        result = layout_for(small_benchmark)
        arch = Architecture.from_layout("layout", result.lattice)
        assert arch.num_connections() < ibm_16q_2x8().num_connections()
