"""Unit tests for gate decomposition into the CNOT + single-qubit basis."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_circuit, decompose_mcx, decompose_toffoli
from repro.circuit.gates import Gate, ONE_QUBIT_GATES, cp, cx, cz, rzz, swap


def only_basis_gates(gates):
    """True when every gate is a CNOT or a single-qubit gate."""
    return all(g.name == "cx" or g.name in ONE_QUBIT_GATES for g in gates)


class TestToffoli:
    def test_toffoli_uses_six_cnots(self):
        gates = decompose_toffoli(0, 1, 2)
        assert sum(1 for g in gates if g.name == "cx") == 6

    def test_toffoli_only_basis_gates(self):
        assert only_basis_gates(decompose_toffoli(0, 1, 2))

    def test_toffoli_touches_exactly_three_qubits(self):
        touched = set()
        for gate in decompose_toffoli(3, 5, 7):
            touched.update(gate.qubits)
        assert touched == {3, 5, 7}


class TestMcx:
    def test_zero_controls_is_x(self):
        gates = decompose_mcx([], 4)
        assert len(gates) == 1 and gates[0].name == "x"

    def test_single_control_is_cnot(self):
        gates = decompose_mcx([1], 4)
        assert gates == [cx(1, 4)]

    def test_two_controls_is_toffoli(self):
        assert decompose_mcx([0, 1], 2) == decompose_toffoli(0, 1, 2)

    def test_three_controls_with_ancilla_only_basis_gates(self):
        gates = decompose_mcx([0, 1, 2], 4, ancillae=[3])
        assert only_basis_gates(gates)

    def test_three_controls_without_ancilla_only_basis_gates(self):
        gates = decompose_mcx([0, 1, 2], 4)
        assert only_basis_gates(gates)

    def test_v_chain_touches_ancilla(self):
        gates = decompose_mcx([0, 1, 2, 3], 6, ancillae=[4, 5])
        touched = set()
        for gate in gates:
            touched.update(gate.qubits)
        assert {4, 5} <= touched

    def test_ancilla_count_checked(self):
        # One ancilla is not enough for 4 controls via V-chain, so the
        # no-ancilla fallback is used and must still be valid basis gates.
        gates = decompose_mcx([0, 1, 2, 3], 5, ancillae=[4])
        assert only_basis_gates(gates)

    def test_overlapping_ancilla_rejected(self):
        with pytest.raises(ValueError):
            decompose_mcx([0, 1, 2], 4, ancillae=[1])

    def test_target_in_controls_rejected(self):
        with pytest.raises(ValueError):
            decompose_mcx([0, 1], 1)

    def test_no_ancilla_cost_grows_with_controls(self):
        cost3 = len(decompose_mcx([0, 1, 2], 3))
        cost4 = len(decompose_mcx([0, 1, 2, 3], 4))
        assert cost4 > cost3


class TestDecomposeCircuit:
    def test_swap_becomes_three_cnots(self):
        circuit = QuantumCircuit(2).extend([swap(0, 1)])
        decomposed = decompose_circuit(circuit)
        assert [g.name for g in decomposed] == ["cx", "cx", "cx"]

    def test_cz_becomes_cnot_with_hadamards(self):
        circuit = QuantumCircuit(2).extend([cz(0, 1)])
        names = [g.name for g in decompose_circuit(circuit)]
        assert names == ["h", "cx", "h"]

    def test_cp_becomes_two_cnots(self):
        circuit = QuantumCircuit(2).extend([cp(0.7, 0, 1)])
        decomposed = decompose_circuit(circuit)
        assert sum(1 for g in decomposed if g.name == "cx") == 2
        assert only_basis_gates(decomposed.gates)

    def test_rzz_becomes_two_cnots(self):
        circuit = QuantumCircuit(2).extend([rzz(0.3, 0, 1)])
        decomposed = decompose_circuit(circuit)
        assert sum(1 for g in decomposed if g.name == "cx") == 2

    def test_basis_gates_pass_through(self):
        circuit = QuantumCircuit(2).extend([cx(0, 1), Gate("h", (0,))])
        assert decompose_circuit(circuit).gates == circuit.gates

    def test_decomposition_preserves_qubit_count_and_name(self):
        circuit = QuantumCircuit(4, name="keepme").extend([swap(1, 3)])
        decomposed = decompose_circuit(circuit)
        assert decomposed.num_qubits == 4
        assert decomposed.name == "keepme"
