"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuit import QuantumCircuit, barrier, cx, h, measure, rz, swap


class TestConstruction:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit.num_qubits == 3
        assert len(circuit) == 0

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_append_returns_self_for_chaining(self):
        circuit = QuantumCircuit(2)
        assert circuit.append(h(0)).append(cx(0, 1)) is circuit
        assert len(circuit) == 2

    def test_append_rejects_out_of_range_qubit(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append(cx(0, 2))

    def test_extend(self):
        circuit = QuantumCircuit(3)
        circuit.extend([h(0), cx(0, 1), cx(1, 2)])
        assert len(circuit) == 3

    def test_compose(self):
        a = QuantumCircuit(3).extend([h(0), cx(0, 1)])
        b = QuantumCircuit(2).extend([cx(0, 1)])
        a.compose(b)
        assert len(a) == 3

    def test_compose_rejects_larger_circuit(self):
        small = QuantumCircuit(2)
        big = QuantumCircuit(5)
        with pytest.raises(ValueError):
            small.compose(big)

    def test_copy_is_independent(self):
        original = QuantumCircuit(2).extend([h(0)])
        clone = original.copy()
        clone.append(cx(0, 1))
        assert len(original) == 1
        assert len(clone) == 2

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2).extend([cx(0, 1), h(1)])
        remapped = circuit.remap_qubits({0: 3, 1: 4}, num_qubits=6)
        assert remapped.num_qubits == 6
        assert remapped.gates[0].qubits == (3, 4)
        assert remapped.gates[1].qubits == (4,)


class TestCounts:
    @pytest.fixture
    def circuit(self):
        circuit = QuantumCircuit(3, name="counts")
        circuit.extend([h(0), h(1), cx(0, 1), cx(1, 2), rz(0.1, 2), measure(0), measure(1)])
        return circuit

    def test_len_counts_all_gates(self, circuit):
        assert len(circuit) == 7

    def test_two_qubit_gate_count(self, circuit):
        assert circuit.num_two_qubit_gates == 2

    def test_single_qubit_gate_count(self, circuit):
        assert circuit.num_single_qubit_gates == 3

    def test_measurement_count(self, circuit):
        assert circuit.num_measurements == 2

    def test_gate_counts_histogram(self, circuit):
        counts = circuit.gate_counts()
        assert counts["h"] == 2
        assert counts["cx"] == 2
        assert counts["measure"] == 2

    def test_count_gates_with_predicate(self, circuit):
        assert circuit.count_gates(lambda g: g.name == "rz") == 1

    def test_two_qubit_pairs(self, circuit):
        assert circuit.two_qubit_pairs() == [(0, 1), (1, 2)]

    def test_used_qubits(self):
        circuit = QuantumCircuit(5).extend([cx(0, 3)])
        assert circuit.used_qubits() == [0, 3]

    def test_summary_keys(self, circuit):
        summary = circuit.summary()
        assert summary["num_qubits"] == 3
        assert summary["num_two_qubit_gates"] == 2


class TestDepth:
    def test_depth_serial_gates(self):
        circuit = QuantumCircuit(1).extend([h(0), h(0), h(0)])
        assert circuit.depth() == 3

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2).extend([h(0), h(1)])
        assert circuit.depth() == 1

    def test_depth_mixed(self):
        circuit = QuantumCircuit(2).extend([h(0), cx(0, 1), h(1)])
        assert circuit.depth() == 3

    def test_barrier_does_not_add_depth(self):
        circuit = QuantumCircuit(2).extend([h(0), barrier(0, 1), h(1)])
        assert circuit.depth() == 1

    def test_two_qubit_depth_ignores_single_qubit_gates(self):
        circuit = QuantumCircuit(3).extend([h(0), cx(0, 1), h(1), cx(1, 2), cx(0, 1)])
        assert circuit.two_qubit_depth() == 3
        assert circuit.depth() == 5

    def test_empty_circuit_depth_zero(self):
        assert QuantumCircuit(4).depth() == 0


class TestEquality:
    def test_equal_circuits(self):
        a = QuantumCircuit(2).extend([h(0), cx(0, 1)])
        b = QuantumCircuit(2).extend([h(0), cx(0, 1)])
        assert a == b

    def test_different_gates_not_equal(self):
        a = QuantumCircuit(2).extend([h(0)])
        b = QuantumCircuit(2).extend([h(1)])
        assert a != b

    def test_different_sizes_not_equal(self):
        assert QuantumCircuit(2) != QuantumCircuit(3)

    def test_comparison_with_non_circuit(self):
        assert QuantumCircuit(2) != "not a circuit"

    def test_repr_mentions_name_and_size(self):
        circuit = QuantumCircuit(4, name="qft_test")
        assert "qft_test" in repr(circuit)
        assert "4" in repr(circuit)

    def test_iteration_and_indexing(self):
        gates = [h(0), cx(0, 1), swap(0, 1)]
        circuit = QuantumCircuit(2).extend(gates)
        assert list(circuit) == gates
        assert circuit[1] == cx(0, 1)
        assert isinstance(circuit.gates, tuple)
