"""Tests for the 2D lattice geometry."""

import pytest

from repro.hardware.lattice import Lattice, Square, manhattan_distance, node_neighbors


class TestGeometry:
    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (2, 3)) == 5
        assert manhattan_distance((1, 1), (1, 1)) == 0
        assert manhattan_distance((-1, 0), (1, 0)) == 2

    def test_node_neighbors(self):
        assert set(node_neighbors((0, 0))) == {(1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_square_corners(self):
        square = Square((1, 2))
        assert set(square.corners) == {(1, 2), (2, 2), (1, 3), (2, 3)}

    def test_square_diagonals(self):
        diag_a, diag_b = Square((0, 0)).diagonals
        assert set(diag_a) == {(0, 0), (1, 1)}
        assert set(diag_b) == {(1, 0), (0, 1)}

    def test_square_edges(self):
        assert len(Square((0, 0)).edges) == 4

    def test_square_adjacency(self):
        assert Square((0, 0)).is_adjacent_to(Square((1, 0)))
        assert not Square((0, 0)).is_adjacent_to(Square((1, 1)))
        assert not Square((0, 0)).is_adjacent_to(Square((0, 0)))

    def test_square_neighbors_are_adjacent(self):
        square = Square((2, 3))
        assert all(square.is_adjacent_to(other) for other in square.neighbors())


class TestLatticePlacement:
    def test_place_and_lookup(self):
        lattice = Lattice()
        lattice.place(7, (0, 0))
        assert lattice.qubit_at((0, 0)) == 7
        assert lattice.node_of(7) == (0, 0)
        assert lattice.is_occupied((0, 0))
        assert not lattice.is_occupied((1, 0))

    def test_double_occupancy_rejected(self):
        lattice = Lattice()
        lattice.place(0, (0, 0))
        with pytest.raises(ValueError):
            lattice.place(1, (0, 0))

    def test_double_placement_of_qubit_rejected(self):
        lattice = Lattice()
        lattice.place(0, (0, 0))
        with pytest.raises(ValueError):
            lattice.place(0, (1, 0))

    def test_from_coordinates(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (1, 0)})
        assert lattice.num_qubits == 2
        assert lattice.coordinates() == {0: (0, 0), 1: (1, 0)}

    def test_rectangle_row_major_layout(self):
        lattice = Lattice.rectangle(2, 3)
        assert lattice.num_qubits == 6
        assert lattice.node_of(0) == (0, 0)
        assert lattice.node_of(2) == (2, 0)
        assert lattice.node_of(3) == (0, 1)

    def test_qubit_at_empty_node_is_none(self):
        assert Lattice().qubit_at((5, 5)) is None


class TestLatticeQueries:
    def test_neighbors_of_qubit(self, square_lattice_3x3):
        # Qubit 4 is the centre of the 3x3 grid.
        assert square_lattice_3x3.neighbors_of_qubit(4) == [1, 3, 5, 7]
        assert square_lattice_3x3.neighbors_of_qubit(0) == [1, 3]

    def test_adjacent_pairs_count_for_grid(self, square_lattice_3x3):
        # A 3x3 grid has 12 nearest-neighbour edges.
        assert len(square_lattice_3x3.adjacent_pairs()) == 12

    def test_adjacent_pairs_are_normalized(self, square_lattice_3x3):
        assert all(a < b for a, b in square_lattice_3x3.adjacent_pairs())

    def test_empty_frontier_surrounds_single_qubit(self):
        lattice = Lattice()
        lattice.place(0, (0, 0))
        assert len(lattice.empty_frontier()) == 4

    def test_squares_of_grid(self, square_lattice_3x3):
        full_squares = square_lattice_3x3.squares(min_occupied=4)
        assert len(full_squares) == 4

    def test_squares_with_three_occupied_corners(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (1, 0), 2: (0, 1)})
        assert len(lattice.squares(min_occupied=3)) == 1
        assert len(lattice.squares(min_occupied=4)) == 0

    def test_square_qubits(self, square_lattice_3x3):
        assert square_lattice_3x3.square_qubits(Square((0, 0))) == [0, 1, 3, 4]

    def test_bounding_box(self):
        lattice = Lattice.from_coordinates({0: (-1, 2), 1: (3, -2)})
        assert lattice.bounding_box() == ((-1, -2), (3, 2))

    def test_bounding_box_of_empty_lattice_raises(self):
        with pytest.raises(ValueError):
            Lattice().bounding_box()

    def test_normalized_starts_at_origin(self):
        lattice = Lattice.from_coordinates({0: (-2, 5), 1: (-1, 5)})
        normalized = lattice.normalized()
        assert normalized.bounding_box()[0] == (0, 0)
        assert normalized.num_qubits == 2

    def test_geometric_center_and_central_qubit(self, square_lattice_3x3):
        assert square_lattice_3x3.geometric_center() == (1.0, 1.0)
        assert square_lattice_3x3.central_qubit() == 4

    def test_central_qubit_of_empty_lattice_raises(self):
        with pytest.raises(ValueError):
            Lattice().central_qubit()
