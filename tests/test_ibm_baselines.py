"""Tests for the IBM baseline architectures (paper Figure 9)."""

import pytest

from repro.hardware import ibm_16q_2x8, ibm_20q_4x5, ibm_baseline, ibm_baselines
from repro.hardware.frequency import FIVE_FREQUENCY_VALUES_GHZ


class TestSixteenQubitChip:
    def test_two_qubit_bus_variant(self):
        arch = ibm_16q_2x8(use_four_qubit_buses=False)
        assert arch.num_qubits == 16
        # A 2x8 grid has 7 + 2*8 - 8 ... : horizontal 2*7=14, vertical 8 -> 22 edges.
        assert arch.num_connections() == 22
        assert len(arch.four_qubit_buses()) == 0

    def test_four_qubit_bus_variant_has_four_buses(self):
        arch = ibm_16q_2x8(use_four_qubit_buses=True)
        assert len(arch.four_qubit_buses()) == 4

    def test_four_qubit_buses_not_adjacent(self):
        arch = ibm_16q_2x8(use_four_qubit_buses=True)
        assert arch.is_valid()

    def test_four_qubit_variant_has_more_connections(self):
        assert (
            ibm_16q_2x8(use_four_qubit_buses=True).num_connections()
            > ibm_16q_2x8(use_four_qubit_buses=False).num_connections()
        )


class TestTwentyQubitChip:
    def test_two_qubit_bus_variant(self):
        arch = ibm_20q_4x5(use_four_qubit_buses=False)
        assert arch.num_qubits == 20
        # 4x5 grid: horizontal 4*4=16, vertical 3*5=15 -> 31 edges.
        assert arch.num_connections() == 31

    def test_four_qubit_bus_variant_has_six_buses(self):
        arch = ibm_20q_4x5(use_four_qubit_buses=True)
        assert len(arch.four_qubit_buses()) == 6
        assert arch.is_valid()


class TestBaselineRegistry:
    def test_four_baselines(self):
        baselines = ibm_baselines()
        assert set(baselines) == {1, 2, 3, 4}
        assert baselines[1].num_qubits == 16
        assert baselines[4].num_qubits == 20

    def test_baseline_index_validation(self):
        with pytest.raises(ValueError):
            ibm_baseline(5)

    def test_all_baselines_use_five_frequency_scheme(self):
        for arch in ibm_baselines().values():
            assert set(arch.frequencies.values()) <= set(FIVE_FREQUENCY_VALUES_GHZ)
            assert len(arch.frequencies) == arch.num_qubits

    def test_all_baselines_valid(self):
        for arch in ibm_baselines().values():
            assert arch.is_valid(), arch.validate()

    def test_resource_ordering_matches_figure9(self):
        """More hardware resources as the baseline index grows within a chip size."""
        baselines = ibm_baselines()
        assert baselines[1].num_connections() < baselines[2].num_connections()
        assert baselines[3].num_connections() < baselines[4].num_connections()
