"""Tests for coupling-pattern classification (paper Section 3.2)."""

from repro.benchmarks import get_benchmark, ising_model_circuit, qft_circuit
from repro.circuit import QuantumCircuit, cx
from repro.profiling import CouplingPattern, classify_pattern, profile_circuit


def classify(circuit):
    return classify_pattern(profile_circuit(circuit))


class TestClassification:
    def test_empty_pattern(self):
        assert classify(QuantumCircuit(4)) is CouplingPattern.EMPTY

    def test_chain_pattern(self):
        circuit = QuantumCircuit(6)
        for _ in range(5):
            for qubit in range(5):
                circuit.append(cx(qubit, qubit + 1))
        assert classify(circuit) is CouplingPattern.CHAIN

    def test_uniform_pattern(self):
        circuit = QuantumCircuit(5)
        for i in range(5):
            for j in range(i + 1, 5):
                circuit.append(cx(i, j))
        assert classify(circuit) is CouplingPattern.UNIFORM

    def test_sparse_pattern(self):
        circuit = QuantumCircuit(8).extend([cx(0, 1), cx(0, 1), cx(2, 3), cx(4, 5)])
        assert classify(circuit) in (CouplingPattern.SPARSE, CouplingPattern.CHAIN)

    def test_single_pair_is_not_empty(self):
        circuit = QuantumCircuit(3).extend([cx(0, 1)])
        assert classify(circuit) is not CouplingPattern.EMPTY


class TestPaperBenchmarkPatterns:
    """The pattern observations the paper relies on in Sections 3.2 and 5."""

    def test_qft_is_uniform(self):
        assert classify(qft_circuit(8)) is CouplingPattern.UNIFORM

    def test_ising_model_is_chain(self):
        assert classify(ising_model_circuit(10)) is CouplingPattern.CHAIN

    def test_uccsd_is_chain_dominated(self):
        # The UCCSD staircases put most weight on neighbouring qubits.
        assert classify(get_benchmark("UCCSD_ansatz_8")) is CouplingPattern.CHAIN

    def test_qft_every_pair_has_weight_two(self):
        profile = profile_circuit(qft_circuit(8))
        for i in range(8):
            for j in range(i + 1, 8):
                assert profile.strength(i, j) == 2

    def test_ising_only_neighbouring_pairs_coupled(self):
        profile = profile_circuit(ising_model_circuit(12))
        for i, j in profile.coupled_pairs():
            assert j == i + 1

    def test_arithmetic_benchmark_is_not_uniform(self):
        pattern = classify(get_benchmark("adr4_197"))
        assert pattern is not CouplingPattern.UNIFORM
        assert pattern is not CouplingPattern.EMPTY
