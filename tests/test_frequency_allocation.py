"""Tests for the frequency allocation subroutine (Algorithm 3)."""

import pytest

from repro.collision import YieldSimulator
from repro.design import FrequencyAllocator, allocate_frequencies
from repro.hardware import Architecture, Lattice
from repro.hardware.frequency import (
    ALLOWED_FREQUENCY_MAX_GHZ,
    ALLOWED_FREQUENCY_MIN_GHZ,
    five_frequency_scheme,
    middle_frequency,
    validate_frequencies,
)


def chain_architecture(num_qubits):
    return Architecture.from_layout("chain", Lattice.rectangle(1, num_qubits))


def grid_architecture(rows, cols):
    return Architecture.from_layout(f"grid{rows}x{cols}", Lattice.rectangle(rows, cols))


@pytest.fixture
def fast_allocator():
    return FrequencyAllocator(local_trials=400, seed=11)


class TestAllocationBasics:
    def test_every_qubit_gets_a_frequency(self, fast_allocator):
        arch = grid_architecture(2, 3)
        frequencies = fast_allocator.allocate(arch)
        assert set(frequencies) == set(arch.qubits)

    def test_frequencies_stay_in_allowed_band(self, fast_allocator):
        frequencies = fast_allocator.allocate(grid_architecture(2, 4))
        assert validate_frequencies(frequencies) == []

    def test_center_qubit_gets_middle_frequency(self, fast_allocator):
        arch = grid_architecture(3, 3)
        frequencies = fast_allocator.allocate(arch)
        center = arch.lattice.central_qubit()
        assert frequencies[center] == pytest.approx(middle_frequency())

    def test_allocation_is_deterministic(self, fast_allocator):
        arch = chain_architecture(5)
        assert fast_allocator.allocate(arch) == fast_allocator.allocate(arch)

    def test_single_qubit_architecture(self, fast_allocator):
        arch = Architecture.from_layout("one", Lattice.from_coordinates({0: (0, 0)}))
        assert fast_allocator.allocate(arch) == {0: middle_frequency()}

    def test_empty_architecture_rejected(self, fast_allocator):
        with pytest.raises(ValueError):
            fast_allocator.allocate(Architecture(name="empty", lattice=Lattice()))

    def test_convenience_wrapper(self):
        frequencies = allocate_frequencies(chain_architecture(4), local_trials=300, seed=5)
        assert len(frequencies) == 4


class TestAllocationQuality:
    def test_connected_qubits_are_separated(self, fast_allocator):
        """No connected pair should be designed inside the condition-1 window."""
        arch = chain_architecture(6)
        frequencies = fast_allocator.allocate(arch)
        for a, b in arch.coupling_edges():
            assert abs(frequencies[a] - frequencies[b]) > 0.017

    def test_common_neighbours_are_separated(self, fast_allocator):
        """Spectator pairs (condition 5) should not be designed on top of each other."""
        arch = chain_architecture(6)
        frequencies = fast_allocator.allocate(arch)
        for j, i, k in arch.collision_triples():
            assert abs(frequencies[i] - frequencies[k]) > 0.017

    def test_beats_five_frequency_scheme_on_chain(self):
        """Section 5.4.3: the optimized allocation outperforms the 5-frequency scheme."""
        arch = chain_architecture(8)
        optimized = arch.with_frequencies(
            FrequencyAllocator(local_trials=1500, seed=3).allocate(arch), name="opt"
        )
        five_freq = arch.with_frequencies(
            five_frequency_scheme(arch.coordinates()), name="5freq"
        )
        simulator = YieldSimulator(trials=6000, seed=17)
        assert (
            simulator.estimate(optimized).yield_rate
            > simulator.estimate(five_freq).yield_rate
        )

    def test_yield_positive_for_small_grid(self):
        arch = grid_architecture(2, 3)
        optimized = arch.with_frequencies(
            FrequencyAllocator(local_trials=1500, seed=3).allocate(arch)
        )
        assert YieldSimulator(trials=4000, seed=23).estimate(optimized).yield_rate > 0.0

    def test_refinement_pass_keeps_assignment_valid(self):
        """The optional coordinate-descent sweeps stay in-band and deterministic."""
        arch = grid_architecture(2, 3)
        allocator = FrequencyAllocator(local_trials=400, seed=11, refinement_passes=2)
        frequencies = allocator.allocate(arch)
        assert validate_frequencies(frequencies) == []
        assert frequencies == allocator.allocate(arch)

    def test_candidate_grid_resolution_respected(self, fast_allocator):
        frequencies = fast_allocator.allocate(chain_architecture(5))
        for value in frequencies.values():
            steps = (value - ALLOWED_FREQUENCY_MIN_GHZ) / fast_allocator.frequency_step_ghz
            assert abs(steps - round(steps)) < 1e-6
            assert ALLOWED_FREQUENCY_MIN_GHZ <= value <= ALLOWED_FREQUENCY_MAX_GHZ
