"""Tests for the frequency allocation subroutine (Algorithm 3)."""

import pytest

from repro.collision import YieldSimulator
from repro.design import (
    ALLOCATION_STRATEGIES,
    FrequencyAllocator,
    allocate_frequencies,
    resolve_strategy,
)
from repro.hardware import Architecture, Lattice
from repro.hardware.frequency import (
    ALLOWED_FREQUENCY_MAX_GHZ,
    ALLOWED_FREQUENCY_MIN_GHZ,
    five_frequency_scheme,
    middle_frequency,
    validate_frequencies,
)


def chain_architecture(num_qubits):
    return Architecture.from_layout("chain", Lattice.rectangle(1, num_qubits))


def grid_architecture(rows, cols):
    return Architecture.from_layout(f"grid{rows}x{cols}", Lattice.rectangle(rows, cols))


@pytest.fixture
def fast_allocator():
    return FrequencyAllocator(local_trials=400, seed=11)


class TestAllocationBasics:
    def test_every_qubit_gets_a_frequency(self, fast_allocator):
        arch = grid_architecture(2, 3)
        frequencies = fast_allocator.allocate(arch)
        assert set(frequencies) == set(arch.qubits)

    def test_frequencies_stay_in_allowed_band(self, fast_allocator):
        frequencies = fast_allocator.allocate(grid_architecture(2, 4))
        assert validate_frequencies(frequencies) == []

    def test_center_qubit_gets_middle_frequency(self, fast_allocator):
        arch = grid_architecture(3, 3)
        frequencies = fast_allocator.allocate(arch)
        center = arch.lattice.central_qubit()
        assert frequencies[center] == pytest.approx(middle_frequency())

    def test_allocation_is_deterministic(self, fast_allocator):
        arch = chain_architecture(5)
        assert fast_allocator.allocate(arch) == fast_allocator.allocate(arch)

    def test_single_qubit_architecture(self, fast_allocator):
        arch = Architecture.from_layout("one", Lattice.from_coordinates({0: (0, 0)}))
        assert fast_allocator.allocate(arch) == {0: middle_frequency()}

    def test_empty_architecture_rejected(self, fast_allocator):
        with pytest.raises(ValueError):
            fast_allocator.allocate(Architecture(name="empty", lattice=Lattice()))

    def test_convenience_wrapper(self):
        frequencies = allocate_frequencies(chain_architecture(4), local_trials=300, seed=5)
        assert len(frequencies) == 4


class TestAllocationQuality:
    def test_connected_qubits_are_separated(self, fast_allocator):
        """No connected pair should be designed inside the condition-1 window."""
        arch = chain_architecture(6)
        frequencies = fast_allocator.allocate(arch)
        for a, b in arch.coupling_edges():
            assert abs(frequencies[a] - frequencies[b]) > 0.017

    def test_common_neighbours_are_separated(self, fast_allocator):
        """Spectator pairs (condition 5) should not be designed on top of each other."""
        arch = chain_architecture(6)
        frequencies = fast_allocator.allocate(arch)
        for j, i, k in arch.collision_triples():
            assert abs(frequencies[i] - frequencies[k]) > 0.017

    def test_beats_five_frequency_scheme_on_chain(self):
        """Section 5.4.3: the optimized allocation outperforms the 5-frequency scheme."""
        arch = chain_architecture(8)
        optimized = arch.with_frequencies(
            FrequencyAllocator(local_trials=1500, seed=3).allocate(arch), name="opt"
        )
        five_freq = arch.with_frequencies(
            five_frequency_scheme(arch.coordinates()), name="5freq"
        )
        simulator = YieldSimulator(trials=6000, seed=17)
        assert (
            simulator.estimate(optimized).yield_rate
            > simulator.estimate(five_freq).yield_rate
        )

    def test_yield_positive_for_small_grid(self):
        arch = grid_architecture(2, 3)
        optimized = arch.with_frequencies(
            FrequencyAllocator(local_trials=1500, seed=3).allocate(arch)
        )
        assert YieldSimulator(trials=4000, seed=23).estimate(optimized).yield_rate > 0.0

    def test_refinement_pass_keeps_assignment_valid(self):
        """The optional coordinate-descent sweeps stay in-band and deterministic."""
        arch = grid_architecture(2, 3)
        allocator = FrequencyAllocator(local_trials=400, seed=11, refinement_passes=2)
        frequencies = allocator.allocate(arch)
        assert validate_frequencies(frequencies) == []
        assert frequencies == allocator.allocate(arch)

    def test_candidate_grid_resolution_respected(self, fast_allocator):
        frequencies = fast_allocator.allocate(chain_architecture(5))
        for value in frequencies.values():
            steps = (value - ALLOWED_FREQUENCY_MIN_GHZ) / fast_allocator.frequency_step_ghz
            assert abs(steps - round(steps)) < 1e-6
            assert ALLOWED_FREQUENCY_MIN_GHZ <= value <= ALLOWED_FREQUENCY_MAX_GHZ


class TestGoldenAssignment:
    def test_default_mode_assignment_is_pinned(self):
        """Regression pin of the paper-default Algorithm 3 assignment.

        The exact frequencies of ``sym6_145``'s 1-bus design under the
        default configuration (2000 local trials, seed 2020, bfs-greedy).
        Any change to the allocator's machinery, seeding, traversal, or
        tie-break shows up here as a bit-exact mismatch.
        """
        from repro.benchmarks import get_benchmark
        from repro.design import DesignFlow

        architecture = DesignFlow(get_benchmark("sym6_145")).design(1)
        assert architecture.frequencies == {
            0: 5.28, 1: 5.34, 2: 5.24, 3: 5.10, 4: 5.08, 5: 5.16, 6: 5.17,
        }


class TestTieBreak:
    """The documented candidate tie-break: mid-band first, then lower frequency.

    With ``sigma = 0`` the local simulation is deterministic, so every
    non-colliding candidate survives all trials and the tie set is large —
    the selection is decided purely by the tie-break rule.
    """

    def test_tied_candidates_resolve_toward_mid_band(self):
        arch = chain_architecture(2)
        frequencies = FrequencyAllocator(sigma_ghz=0.0, local_trials=10).allocate(arch)
        center = arch.lattice.central_qubit()
        other = (set(arch.qubits) - {center}).pop()
        assert frequencies[center] == pytest.approx(middle_frequency())
        # Candidates within 0.017 GHz of the centre's 5.17 GHz collide
        # (condition 1); 5.15 and 5.19 are the nearest non-colliding
        # candidates, equally far from mid-band — the lower one wins.
        assert frequencies[other] == pytest.approx(5.15)

    def test_tie_break_is_deterministic(self):
        arch = grid_architecture(2, 3)
        allocator = FrequencyAllocator(sigma_ghz=0.0, local_trials=10)
        assert allocator.allocate(arch) == allocator.allocate(arch)


class TestStrategies:
    def test_known_strategies_registered(self):
        assert set(ALLOCATION_STRATEGIES) == {
            "bfs-greedy", "coordinate-descent", "analytic-guided",
        }

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown allocation strategy"):
            FrequencyAllocator(strategy="simulated-annealing").allocate(
                chain_architecture(3)
            )

    def test_refinement_passes_select_coordinate_descent(self):
        resolved = resolve_strategy("bfs-greedy", refinement_passes=2)
        assert resolved.name == "coordinate-descent"
        assert resolve_strategy("bfs-greedy", refinement_passes=0).name == "bfs-greedy"

    def test_coordinate_descent_matches_refinement_knob(self):
        arch = grid_architecture(2, 3)
        via_strategy = FrequencyAllocator(
            local_trials=400, seed=11, strategy="coordinate-descent"
        ).allocate(arch)
        via_knob = FrequencyAllocator(
            local_trials=400, seed=11, refinement_passes=1
        ).allocate(arch)
        assert via_strategy == via_knob

    def test_analytic_guided_is_deterministic_and_in_band(self):
        arch = grid_architecture(2, 4)
        allocator = FrequencyAllocator(local_trials=400, seed=11,
                                       strategy="analytic-guided")
        frequencies = allocator.allocate(arch)
        assert validate_frequencies(frequencies) == []
        assert frequencies == allocator.allocate(arch)

    def test_analytic_guided_separates_connected_qubits(self):
        arch = chain_architecture(6)
        frequencies = FrequencyAllocator(
            local_trials=400, seed=11, strategy="analytic-guided"
        ).allocate(arch)
        for a, b in arch.coupling_edges():
            assert abs(frequencies[a] - frequencies[b]) > 0.017

    def test_analytic_guided_yield_close_to_exact_search(self):
        arch = grid_architecture(2, 3)
        exact = arch.with_frequencies(
            FrequencyAllocator(local_trials=1500, seed=3).allocate(arch)
        )
        pruned = arch.with_frequencies(
            FrequencyAllocator(local_trials=1500, seed=3,
                               strategy="analytic-guided").allocate(arch)
        )
        simulator = YieldSimulator(trials=4000, seed=23)
        exact_yield = simulator.estimate(exact).yield_rate
        pruned_yield = simulator.estimate(pruned).yield_rate
        assert pruned_yield >= exact_yield - 0.05
