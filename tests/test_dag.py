"""Unit tests for the circuit dependency DAG and execution frontier."""

import pytest

from repro.circuit import QuantumCircuit, barrier, cx, h, measure
from repro.circuit.dag import CircuitDAG, ExecutionFrontier


def build(num_qubits, gates):
    return QuantumCircuit(num_qubits).extend(gates)


class TestCircuitDAG:
    def test_independent_gates_have_no_edges(self):
        dag = CircuitDAG(build(2, [h(0), h(1)]))
        assert all(not node.predecessors for node in dag.nodes())
        assert all(not node.successors for node in dag.nodes())

    def test_serial_dependency_on_same_qubit(self):
        dag = CircuitDAG(build(1, [h(0), h(0)]))
        assert dag.node(1).predecessors == {0}
        assert dag.node(0).successors == {1}

    def test_two_qubit_gate_depends_on_both_operands(self):
        dag = CircuitDAG(build(3, [h(0), h(1), cx(0, 1)]))
        assert dag.node(2).predecessors == {0, 1}

    def test_front_layer_initial(self):
        dag = CircuitDAG(build(3, [cx(0, 1), cx(1, 2), h(0)]))
        front = {node.index for node in dag.front_layer()}
        assert front == {0}

    def test_topological_order_is_valid(self):
        circuit = build(4, [cx(0, 1), cx(2, 3), cx(1, 2), h(0), cx(0, 1)])
        dag = CircuitDAG(circuit)
        order = [node.index for node in dag.topological_order()]
        position = {index: i for i, index in enumerate(order)}
        for node in dag.nodes():
            for pred in node.predecessors:
                assert position[pred] < position[node.index]

    def test_topological_order_covers_all_nodes(self):
        circuit = build(3, [h(0), cx(0, 1), cx(1, 2), measure(2)])
        dag = CircuitDAG(circuit)
        assert len(dag.topological_order()) == dag.num_nodes == 4

    def test_barrier_orders_gates_but_is_not_a_node(self):
        circuit = build(2, [h(0), barrier(0, 1), h(1)])
        dag = CircuitDAG(circuit)
        assert dag.num_nodes == 2
        # h(1) must come after h(0) because of the barrier between them.
        assert dag.node(2).predecessors == {0}

    def test_barrier_without_qubits_spans_everything(self):
        circuit = build(3, [h(0), barrier(), h(2)])
        dag = CircuitDAG(circuit)
        assert dag.node(2).predecessors == {0}

    def test_measurement_depends_on_prior_gates(self):
        dag = CircuitDAG(build(2, [cx(0, 1), measure(1)]))
        assert dag.node(1).predecessors == {0}


class TestExecutionFrontier:
    def test_initially_not_done(self):
        frontier = ExecutionFrontier(CircuitDAG(build(2, [h(0), cx(0, 1)])))
        assert not frontier.done
        assert frontier.num_executed == 0

    def test_execute_unblocks_successors(self):
        frontier = ExecutionFrontier(CircuitDAG(build(2, [h(0), cx(0, 1)])))
        unblocked = frontier.execute(0)
        assert [node.index for node in unblocked] == [1]

    def test_execute_non_front_gate_raises(self):
        frontier = ExecutionFrontier(CircuitDAG(build(2, [h(0), cx(0, 1)])))
        with pytest.raises(ValueError):
            frontier.execute(1)

    def test_done_after_all_executed(self):
        frontier = ExecutionFrontier(CircuitDAG(build(2, [h(0), h(1), cx(0, 1)])))
        for index in (0, 1, 2):
            frontier.execute(index)
        assert frontier.done

    def test_front_nodes_sorted_by_index(self):
        frontier = ExecutionFrontier(CircuitDAG(build(3, [h(2), h(0), h(1)])))
        assert [node.index for node in frontier.front_nodes()] == [0, 1, 2]

    def test_lookahead_returns_two_qubit_gates_beyond_front(self):
        circuit = build(3, [cx(0, 1), h(2), cx(1, 2), cx(0, 1)])
        frontier = ExecutionFrontier(CircuitDAG(circuit))
        lookahead = frontier.lookahead_nodes(depth=5)
        names = [(node.index, node.gate.name) for node in lookahead]
        assert (2, "cx") in names
        assert all(node.gate.is_two_qubit for node in lookahead)

    def test_lookahead_respects_depth_limit(self):
        gates = [cx(0, 1)] + [cx(0, 1) for _ in range(10)]
        frontier = ExecutionFrontier(CircuitDAG(build(2, gates)))
        assert len(frontier.lookahead_nodes(depth=3)) == 3

    def test_lookahead_zero_depth_is_empty(self):
        gates = [cx(0, 1), cx(0, 1)]
        frontier = ExecutionFrontier(CircuitDAG(build(2, gates)))
        assert frontier.lookahead_nodes(depth=0) == []

    def test_remaining_counts_down(self):
        frontier = ExecutionFrontier(CircuitDAG(build(2, [h(0), h(1), cx(0, 1)])))
        assert frontier.remaining == 3
        frontier.execute(0)
        assert frontier.remaining == 2
        frontier.execute(1)
        frontier.execute(2)
        assert frontier.remaining == 0
        assert frontier.done
