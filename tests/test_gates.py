"""Unit tests for the gate objects."""

import math

import pytest

from repro.circuit.gates import (
    Gate,
    GateKind,
    ONE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    barrier,
    cp,
    cx,
    cz,
    h,
    is_clifford_angle,
    measure,
    rx,
    ry,
    rz,
    rzz,
    swap,
    t,
    u2,
    u3,
    x,
)


class TestGateConstruction:
    def test_single_qubit_gate(self):
        gate = h(3)
        assert gate.name == "h"
        assert gate.qubits == (3,)
        assert gate.params == ()

    def test_two_qubit_gate(self):
        gate = cx(0, 2)
        assert gate.qubits == (0, 2)
        assert gate.num_qubits == 2

    def test_parameterised_gate_keeps_angle(self):
        gate = rz(0.5, 1)
        assert gate.params == (0.5,)

    def test_u2_and_u3_param_counts(self):
        assert len(u2(0.1, 0.2, 0).params) == 2
        assert len(u3(0.1, 0.2, 0.3, 0).params) == 3

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_wrong_arity_single_qubit(self):
        with pytest.raises(ValueError):
            Gate("h", (0, 1))

    def test_wrong_arity_two_qubit(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))

    def test_missing_parameters_rejected(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))

    def test_empty_qubits_rejected_for_non_barrier(self):
        with pytest.raises(ValueError):
            Gate("h", ())

    def test_barrier_may_span_no_qubits(self):
        assert barrier().qubits == ()


class TestGateKind:
    def test_single_qubit_kind(self):
        assert x(0).kind is GateKind.SINGLE_QUBIT

    def test_two_qubit_kind(self):
        assert cz(0, 1).kind is GateKind.TWO_QUBIT

    def test_measurement_kind(self):
        assert measure(0).kind is GateKind.MEASUREMENT

    def test_barrier_kind(self):
        assert barrier(0, 1).kind is GateKind.BARRIER

    def test_is_two_qubit_flag(self):
        assert swap(0, 1).is_two_qubit
        assert rzz(0.3, 0, 1).is_two_qubit
        assert not t(0).is_two_qubit
        assert not measure(0).is_two_qubit

    def test_gate_name_sets_are_disjoint(self):
        assert not (ONE_QUBIT_GATES & TWO_QUBIT_GATES)


class TestGateRemap:
    def test_remap_with_dict(self):
        gate = cx(0, 1).remap({0: 5, 1: 7})
        assert gate.qubits == (5, 7)

    def test_remap_with_callable(self):
        gate = cp(0.2, 2, 3).remap(lambda q: q + 10)
        assert gate.qubits == (12, 13)
        assert gate.params == (0.2,)

    def test_remap_preserves_name(self):
        assert ry(0.1, 0).remap({0: 4}).name == "ry"

    def test_remap_rejects_non_injective_mapping(self):
        with pytest.raises(ValueError, match="duplicate qubits"):
            cx(0, 1).remap({0: 2, 1: 2})

    def test_remapped_gate_equals_directly_built_gate(self):
        assert cx(0, 1).remap({0: 5, 1: 7}) == cx(5, 7)
        assert hash(cx(0, 1).remap({0: 5, 1: 7})) == hash(cx(5, 7))


class TestGateMisc:
    def test_str_contains_name_and_qubits(self):
        text = str(cx(0, 1))
        assert "cx" in text and "q0" in text and "q1" in text

    def test_str_formats_params(self):
        assert "0.5" in str(rx(0.5, 2))

    def test_gates_are_hashable_and_equal_by_value(self):
        assert cx(0, 1) == cx(0, 1)
        assert len({cx(0, 1), cx(0, 1), cx(1, 0)}) == 2

    def test_is_clifford_angle(self):
        assert is_clifford_angle(math.pi / 2)
        assert is_clifford_angle(math.pi)
        assert not is_clifford_angle(0.3)
