"""Tests for the Architecture container and its physical-constraint validation."""

import pytest

from repro.hardware import Architecture, Lattice
from repro.hardware.bus import four_qubit_bus, two_qubit_bus
from repro.hardware.lattice import Square


@pytest.fixture
def grid_2x2():
    return Lattice.rectangle(2, 2)


class TestFromLayout:
    def test_two_qubit_buses_on_every_edge(self, grid_2x2):
        arch = Architecture.from_layout("plain", grid_2x2)
        assert len(arch.two_qubit_buses()) == 4
        assert arch.num_connections() == 4

    def test_four_qubit_bus_replaces_edge_buses(self, grid_2x2):
        arch = Architecture.from_layout("4q", grid_2x2, four_qubit_squares=[Square((0, 0))])
        assert len(arch.two_qubit_buses()) == 0
        assert len(arch.four_qubit_buses()) == 1
        # 4 side pairs + 2 diagonals.
        assert arch.num_connections() == 6

    def test_four_qubit_bus_on_empty_square_rejected(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (1, 0)})
        with pytest.raises(ValueError):
            Architecture.from_layout("bad", lattice, four_qubit_squares=[Square((0, 0))])

    def test_three_corner_square_gives_three_qubit_bus(self):
        lattice = Lattice.from_coordinates({0: (0, 0), 1: (1, 0), 2: (0, 1)})
        arch = Architecture.from_layout("corner", lattice, four_qubit_squares=[Square((0, 0))])
        assert arch.four_qubit_buses()[0].num_qubits == 3
        # Pairs: the two lattice edges plus the occupied diagonal.
        assert arch.num_connections() == 3

    def test_coupling_graph_nodes_and_edges(self, grid_2x2):
        graph = Architecture.from_layout("g", grid_2x2).coupling_graph()
        assert set(graph.nodes()) == {0, 1, 2, 3}
        assert graph.number_of_edges() == 4


class TestDerivedQuantities:
    def test_neighbors_and_degree(self, grid_2x2):
        arch = Architecture.from_layout("n", grid_2x2)
        assert arch.neighbors(0) == [1, 2]
        assert arch.degree(0) == 2

    def test_collision_pairs_equal_coupling_edges(self, grid_2x2):
        arch = Architecture.from_layout("c", grid_2x2)
        assert arch.collision_pairs() == arch.coupling_edges()

    def test_collision_triples_of_square(self, grid_2x2):
        arch = Architecture.from_layout("t", grid_2x2)
        triples = arch.collision_triples()
        # Each of the 4 qubits has exactly 2 neighbours -> one triple each.
        assert len(triples) == 4
        for j, i, k in triples:
            assert i in arch.neighbors(j)
            assert k in arch.neighbors(j)
            assert i < k

    def test_summary_and_repr(self, grid_2x2):
        arch = Architecture.from_layout("s", grid_2x2)
        assert arch.summary()["num_qubits"] == 4
        assert "s" in repr(arch)

    def test_with_frequencies_copies(self, grid_2x2):
        base = Architecture.from_layout("f", grid_2x2)
        derived = base.with_frequencies({0: 5.0, 1: 5.1, 2: 5.2, 3: 5.3}, name="f2")
        assert not base.frequencies
        assert derived.frequencies[3] == 5.3
        assert derived.name == "f2"


class TestValidation:
    def test_valid_architecture(self, grid_2x2):
        arch = Architecture.from_layout("ok", grid_2x2, four_qubit_squares=[Square((0, 0))])
        assert arch.is_valid()

    def test_bus_with_unplaced_qubit(self, grid_2x2):
        arch = Architecture.from_layout("bad", grid_2x2)
        arch.buses.append(two_qubit_bus(0, 99))
        assert any("unplaced" in problem for problem in arch.validate())

    def test_two_qubit_bus_on_non_adjacent_nodes(self, grid_2x2):
        arch = Architecture.from_layout("bad", grid_2x2)
        arch.buses.append(two_qubit_bus(0, 3))
        assert any("non-adjacent" in problem for problem in arch.validate())

    def test_four_qubit_bus_qubits_must_match_square(self):
        lattice = Lattice.rectangle(2, 3)
        arch = Architecture.from_layout("bad", lattice)
        arch.buses.append(four_qubit_bus((0, 1, 2, 3), Square((0, 0))))
        assert any("occupied corners" in problem for problem in arch.validate())

    def test_adjacent_four_qubit_buses_prohibited(self):
        lattice = Lattice.rectangle(2, 3)
        arch = Architecture.from_layout(
            "bad", lattice, four_qubit_squares=[Square((0, 0))]
        )
        arch.buses.append(four_qubit_bus(tuple(lattice.square_qubits(Square((1, 0)))),
                                         Square((1, 0))))
        assert any("prohibited" in problem for problem in arch.validate())

    def test_missing_frequency_detected(self, grid_2x2):
        arch = Architecture.from_layout("bad", grid_2x2, frequencies={0: 5.0})
        assert any("without designed frequency" in problem for problem in arch.validate())
