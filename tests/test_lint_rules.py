"""Tests for the invariant linter (``repro.analysis``).

Four layers of coverage, mirroring how the linter can fail:

* **fixture suites** — per-rule good/bad snippets through
  :func:`lint_source`, proving each rule fires on its violation class
  and stays quiet on the sanctioned idiom;
* **mutation harness** — each violation class is planted into a *real*
  repo module and the rule must catch it there (and must NOT fire on
  the unmutated source, proving the module is clean and the detection
  comes from the planted code);
* **digest-completeness contracts** — the dynamic probes pass on the
  real config classes, and a synthetic ``RuntimeConfig`` subclass with
  an undigested ``phantom_knob`` field must produce exactly one
  REPRO-C301 finding;
* **driver behavior** — suppressions, baseline round-trip/staleness,
  exit codes, report artifact, and the ``repro-design lint`` CLI.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_source, lint_tree
from repro.analysis.digest_check import (
    design_options_key_findings,
    probe_digest_fields,
    routing_params_findings,
    runtime_config_findings,
    settings_mirror_findings,
)
from repro.analysis.findings import (
    BaselineEntry,
    Finding,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.runner import PARSE_ERROR_RULE, main as lint_main
from repro.analysis.rules import registered_rules
from repro.cli import main as cli_main
from repro.runtime.config import RuntimeConfig

ROOT = Path(__file__).resolve().parents[1]

ALL_RULE_CODES = {rule.code for rule in registered_rules()}


def codes(source: str, path: str = "src/repro/module_under_test.py") -> set:
    """Rule codes :func:`lint_source` reports for a dedented snippet."""
    return {f.rule for f in lint_source(textwrap.dedent(source), path)}


# -- fixture suites: one bad/good pair per violation class -------------------

BAD_FIXTURES = [
    ("REPRO-D101", "import numpy as np\n\nvalues = np.random.rand(3)\n"),
    ("REPRO-D101", "import numpy as np\n\nrng = np.random.default_rng()\n"),
    ("REPRO-D101", "import random\n\nrandom.shuffle([1, 2, 3])\n"),
    ("REPRO-D101", "import random\n\nrng = random.Random()\n"),
    ("REPRO-D101", "import random\n\nrng = random.SystemRandom()\n"),
    ("REPRO-D102", "import time\n\nstamp = time.time()\n"),
    ("REPRO-D102", "from datetime import datetime\n\nnow = datetime.now()\n"),
    ("REPRO-D103", "import os\n\nnames = os.listdir('.')\n"),
    ("REPRO-D103", "import glob\n\npaths = glob.glob('*.json')\n"),
    ("REPRO-D103", "def scan(path):\n    return list(path.iterdir())\n"),
    ("REPRO-D104", "for item in {1, 2, 3}:\n    print(item)\n"),
    ("REPRO-D104", "result = [x for x in set([3, 1, 2])]\n"),
    ("REPRO-D105", "import json\n\ndef dump(data):\n    return json.dumps(data)\n"),
    (
        "REPRO-S201",
        "def save(cache_path, payload):\n"
        "    with open(cache_path, 'w') as handle:\n"
        "        handle.write(payload)\n",
    ),
    (
        "REPRO-S201",
        "from pathlib import Path\n\n"
        "def save(text):\n"
        "    Path('design-cache.json').write_text(text)\n",
    ),
    ("REPRO-S202", "import sqlite3\n\nconn = sqlite3.connect('entries.sqlite')\n"),
    ("REPRO-S203", "import os\n\nos.replace('tmp.json', 'final.json')\n"),
    (
        "REPRO-P401",
        "import multiprocessing\n\n"
        "def run(pool, tasks):\n"
        "    return pool.map(lambda task: task, tasks)\n",
    ),
    (
        "REPRO-P401",
        "import multiprocessing\n"
        "from dataclasses import dataclass\n"
        "from typing import Callable\n\n"
        "@dataclass\n"
        "class Task:\n"
        "    fn: Callable[[int], int]\n",
    ),
    ("REPRO-P402", "def poke(registry):\n    registry._counters['x'] = 1\n"),
]

GOOD_FIXTURES = [
    ("REPRO-D101", "import numpy as np\n\nrng = np.random.default_rng(7)\n"),
    ("REPRO-D101", "import numpy as np\n\ngen = np.random.Generator(np.random.PCG64(1))\n"),
    ("REPRO-D101", "import random\n\nrng = random.Random(13)\n"),
    # A local variable merely *named* random must not trigger the rule.
    ("REPRO-D101", "random = object()\nrandom.shuffle([1])\n"),
    ("REPRO-D102", "import time\n\nelapsed = time.perf_counter()\n"),
    ("REPRO-D103", "import os\n\nnames = sorted(os.listdir('.'))\n"),
    ("REPRO-D103", "def scan(path):\n    return sorted(path.rglob('*.py'))\n"),
    ("REPRO-D104", "for item in sorted({1, 2, 3}):\n    print(item)\n"),
    # Set membership is order-free; only iteration is flagged.
    ("REPRO-D104", "found = 2 in {1, 2, 3}\n"),
    ("REPRO-D105", "import json\n\ntext = json.dumps({'a': 1}, sort_keys=True)\n"),
    # Read-mode open on a cache path is fine; write to a non-cache path too.
    ("REPRO-S201", "def load(cache_path):\n    with open(cache_path) as fh:\n        return fh.read()\n"),
    ("REPRO-S201", "def note(report_path, text):\n    with open(report_path, 'w') as fh:\n        fh.write(text)\n"),
    # The same lambda outside a multiprocessing module never crosses a fork.
    ("REPRO-P401", "def run(pool, tasks):\n    return pool.map(lambda task: task, tasks)\n"),
    ("REPRO-P402", "def bump(registry):\n    registry.increment('x')\n"),
]


@pytest.mark.parametrize("rule_code,snippet", BAD_FIXTURES)
def test_rule_fires_on_violation(rule_code, snippet):
    assert rule_code in codes(snippet)


@pytest.mark.parametrize("rule_code,snippet", GOOD_FIXTURES)
def test_rule_quiet_on_sanctioned_idiom(rule_code, snippet):
    assert rule_code not in codes(snippet)


# -- worker exception-discipline fixtures (REPRO-R5xx) -----------------------
# These rules are path-scoped to the modules that run under the sweep
# supervisor, so their fixtures lint under a worker-module path.

WORKER_PATH = "src/repro/faults/fixture_under_test.py"

WORKER_BAD_FIXTURES = [
    (
        "REPRO-R501",
        "def run(fn):\n    try:\n        return fn()\n    except:\n        return None\n",
    ),
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except Exception:\n        return None\n",
    ),
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except BaseException:\n        return None\n",
    ),
    # A tuple that includes Exception is just as blanket.
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except (ValueError, Exception):\n        return None\n",
    ),
    # A raise inside a nested def does not re-raise the caught exception.
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except Exception:\n"
        "        def later():\n            raise RuntimeError('deferred')\n"
        "        return later\n",
    ),
]

WORKER_GOOD_FIXTURES = [
    ("REPRO-R501", "def run(fn):\n    try:\n        return fn()\n    except OSError:\n        return None\n"),
    # Specific exception tuples are the sanctioned non-boundary idiom.
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except (BrokenPipeError, OSError):\n        return None\n",
    ),
    # Re-raising keeps the failure visible to the supervisor.
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except Exception:\n        raise\n",
    ),
    (
        "REPRO-R502",
        "def run(fn):\n    try:\n        return fn()\n"
        "    except Exception as error:\n        raise RuntimeError('wrapped') from error\n",
    ),
    # The sanctioned fault boundary: marked, and the error is reported.
    (
        "REPRO-R502",
        "from repro import faults\n\n"
        "@faults.fault_boundary\n"
        "def run_attempt(fn):\n    try:\n        return 'done', fn()\n"
        "    except Exception as error:\n        return 'error', str(error)\n",
    ),
    (
        "REPRO-R502",
        "from repro.faults import fault_boundary\n\n"
        "@fault_boundary\n"
        "def run_attempt(fn):\n    try:\n        return 'done', fn()\n"
        "    except Exception as error:\n        return 'error', str(error)\n",
    ),
]


@pytest.mark.parametrize("rule_code,snippet", WORKER_BAD_FIXTURES)
def test_worker_rule_fires_on_violation(rule_code, snippet):
    assert rule_code in codes(snippet, path=WORKER_PATH)


@pytest.mark.parametrize("rule_code,snippet", WORKER_BAD_FIXTURES)
def test_worker_rules_stay_out_of_non_worker_modules(rule_code, snippet):
    assert rule_code not in codes(snippet)


@pytest.mark.parametrize("rule_code,snippet", WORKER_GOOD_FIXTURES)
def test_worker_rule_quiet_on_sanctioned_idiom(rule_code, snippet):
    assert rule_code not in codes(snippet, path=WORKER_PATH)


def test_every_ast_rule_has_a_bad_fixture():
    covered = {code for code, _ in BAD_FIXTURES}
    covered |= {code for code, _ in WORKER_BAD_FIXTURES}
    assert covered == ALL_RULE_CODES


# -- path-prefix exemptions --------------------------------------------------

def test_persistence_layer_exempt_from_store_and_json_rules():
    raw_write = (
        "def save(cache_path, payload):\n"
        "    with open(cache_path, 'w') as handle:\n"
        "        handle.write(payload)\n"
    )
    assert "REPRO-S201" in codes(raw_write)
    assert "REPRO-S201" not in codes(raw_write, path="src/repro/persistence/json_store.py")

    dumps = "import json\n\ntext = json.dumps({'a': 1})\n"
    assert "REPRO-D105" in codes(dumps)
    assert "REPRO-D105" not in codes(dumps, path="src/repro/persistence/entry_codec.py")


def test_sqlite_connect_exempt_only_in_sqlite_backend():
    snippet = "import sqlite3\n\nconn = sqlite3.connect('entries.sqlite')\n"
    assert "REPRO-S202" in codes(snippet, path="src/repro/persistence/other.py")
    assert "REPRO-S202" not in codes(snippet, path="src/repro/persistence/sqlite.py")


def test_metrics_module_exempt_from_private_state_rule():
    snippet = "def poke(registry):\n    registry._counters['x'] = 1\n"
    assert "REPRO-P402" not in codes(snippet, path="src/repro/runtime/metrics.py")


# -- inline suppressions -----------------------------------------------------

def test_suppression_on_offending_line():
    assert codes(
        "import time\n\nstamp = time.time()  # repro-lint: disable=REPRO-D102\n"
    ) == set()


def test_suppression_on_comment_line_above():
    assert codes(
        "import time\n\n# repro-lint: disable=REPRO-D102\nstamp = time.time()\n"
    ) == set()


def test_suppression_disable_all():
    assert codes(
        "import time\n\nstamp = time.time()  # repro-lint: disable=all\n"
    ) == set()


def test_suppression_of_other_rule_does_not_mute():
    assert "REPRO-D102" in codes(
        "import time\n\nstamp = time.time()  # repro-lint: disable=REPRO-D101\n"
    )


def test_suppression_lists_multiple_rules():
    source = (
        "import time\nimport os\n\n"
        "# repro-lint: disable=REPRO-D102,REPRO-D103\n"
        "value = time.time() if os.listdir('.') else 0\n"
    )
    assert codes(source) == set()


def test_unparsable_file_reports_parse_error_rule():
    findings = lint_source("def broken(:\n", "src/repro/broken.py")
    assert [f.rule for f in findings] == [PARSE_ERROR_RULE]


# -- mutation harness: plant each violation class in a real module -----------

MUTATIONS = {
    "REPRO-D101": (
        "src/repro/collision/merge_kernel.py",
        "\n\ndef _planted_lint_probe():\n"
        "    import numpy as _probe_np\n"
        "    return _probe_np.random.rand(4)\n",
    ),
    "REPRO-D102": (
        "src/repro/runtime/metrics.py",
        "\n\ndef _planted_lint_probe():\n"
        "    import time as _probe_time\n"
        "    return _probe_time.time()\n",
    ),
    "REPRO-D103": (
        "src/repro/runtime/config.py",
        "\n\ndef _planted_lint_probe(path):\n"
        "    import os as _probe_os\n"
        "    return _probe_os.listdir(path)\n",
    ),
    "REPRO-D104": (
        "src/repro/design/engine.py",
        "\n\ndef _planted_lint_probe(values):\n"
        "    return [item for item in set(values)]\n",
    ),
    "REPRO-D105": (
        "src/repro/runtime/config.py",
        "\n\ndef _planted_lint_probe(payload):\n"
        "    import json as _probe_json\n"
        "    return _probe_json.dumps(payload)\n",
    ),
    "REPRO-S201": (
        "src/repro/design/engine.py",
        "\n\ndef _planted_lint_probe(cache_path, payload):\n"
        "    with open(cache_path, 'w') as handle:\n"
        "        handle.write(payload)\n",
    ),
    "REPRO-S202": (
        "src/repro/runtime/config.py",
        "\n\ndef _planted_lint_probe(path):\n"
        "    import sqlite3 as _probe_sqlite\n"
        "    return _probe_sqlite.connect(path)\n",
    ),
    "REPRO-S203": (
        "src/repro/collision/merge_kernel.py",
        "\n\ndef _planted_lint_probe(tmp_path, final_path):\n"
        "    import os as _probe_os\n"
        "    _probe_os.replace(tmp_path, final_path)\n",
    ),
    "REPRO-P401": (
        "src/repro/evaluation/parallel.py",
        "\n\ndef _planted_lint_probe(pool, tasks):\n"
        "    return pool.map(lambda task: task, tasks)\n",
    ),
    "REPRO-P402": (
        "src/repro/evaluation/parallel.py",
        "\n\ndef _planted_lint_probe(registry):\n"
        "    registry._counters['probe'] = 1\n",
    ),
    "REPRO-R501": (
        "src/repro/evaluation/parallel.py",
        "\n\ndef _planted_lint_probe(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:\n"
        "        return None\n",
    ),
    "REPRO-R502": (
        "src/repro/evaluation/supervisor.py",
        "\n\ndef _planted_lint_probe(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        return None\n",
    ),
}


def test_mutation_table_covers_every_ast_rule():
    assert set(MUTATIONS) == ALL_RULE_CODES


@pytest.mark.parametrize("rule_code", sorted(MUTATIONS))
def test_mutation_harness_detects_planted_violation(rule_code):
    relpath, snippet = MUTATIONS[rule_code]
    original = (ROOT / relpath).read_text(encoding="utf-8")
    clean_codes = {f.rule for f in lint_source(original, relpath)}
    assert rule_code not in clean_codes, f"{relpath} already violates {rule_code}"
    mutated_codes = {f.rule for f in lint_source(original + snippet, relpath)}
    assert rule_code in mutated_codes, f"planted {rule_code} not detected in {relpath}"
    # The planted snippet introduces exactly its own violation class.
    assert mutated_codes - clean_codes == {rule_code}


# -- digest-completeness contracts -------------------------------------------

def test_runtime_config_digest_probe_is_clean():
    assert runtime_config_findings() == []


def test_sabre_parameters_digest_probe_is_clean():
    assert routing_params_findings() == []


def test_settings_mirror_is_clean():
    assert settings_mirror_findings() == []


def test_design_options_key_coverage_matches_baseline():
    contexts = {f.context for f in design_options_key_findings(ROOT)}
    # The three dispatch/result-transparent fields are the accepted set —
    # each carries a justification in lint-baseline.json.
    assert contexts == {
        "field bus_strategy",
        "field frequency_strategy",
        "field frequency_screening",
    }


@dataclasses.dataclass(frozen=True)
class _PhantomConfig(RuntimeConfig):
    """RuntimeConfig plus a knob whose digest coverage the subclass controls."""

    phantom_knob: int = 0

    def evaluation_settings(self):
        names = [f.name for f in dataclasses.fields(RuntimeConfig)]
        plain = RuntimeConfig(**{name: getattr(self, name) for name in names})
        return RuntimeConfig.evaluation_settings(plain)

    def payload(self):
        data = super().payload()
        # Simulate the bug class: the knob exists but never reaches digest().
        data.pop("phantom_knob")
        return data


@dataclasses.dataclass(frozen=True)
class _CoveredConfig(_PhantomConfig):
    """The same knob, but digested via the inherited asdict payload."""

    def payload(self):
        return RuntimeConfig.payload(self)


def test_synthetic_undigested_field_fails_digest_probe():
    findings = probe_digest_fields(_PhantomConfig)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "REPRO-C301"
    assert finding.context == "field phantom_knob"
    assert "does not reach the content digest" in finding.message


def test_synthetic_digested_field_passes_digest_probe():
    assert probe_digest_fields(_CoveredConfig) == []


def test_doctored_engine_source_fails_key_coverage():
    findings = design_options_key_findings(
        ROOT,
        engine_source="def stage(options):\n    key = (options.alpha,)\n    return key\n",
        options_fields=("alpha", "beta"),
    )
    assert [f.context for f in findings] == ["field beta"]
    assert findings[0].rule == "REPRO-C304"


# -- baseline file mechanics -------------------------------------------------

def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == []


def test_baseline_round_trip(tmp_path):
    entries = [
        BaselineEntry("REPRO-D102", "src/x.py", "stamp = time.time()", "why not"),
        BaselineEntry("REPRO-D101", "src/y.py", "rng = default_rng()", "opt-in"),
    ]
    path = tmp_path / "baseline.json"
    write_baseline(path, entries)
    assert sorted(load_baseline(path), key=BaselineEntry.key) == sorted(
        entries, key=BaselineEntry.key
    )


def test_baseline_rejects_empty_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "format": "repro-lint-baseline", "version": 1,
        "entries": [{"rule": "R", "path": "p", "context": "c", "justification": "  "}],
    }), encoding="utf-8")
    with pytest.raises(ValueError, match="empty justification"):
        load_baseline(path)


def test_baseline_rejects_wrong_format(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"format": "something-else", "version": 1}), encoding="utf-8")
    with pytest.raises(ValueError, match="not a repro-lint-baseline"):
        load_baseline(path)


def test_apply_baseline_splits_new_baselined_stale():
    matched = Finding("REPRO-D102", "src/x.py", 3, "msg", "stamp = time.time()")
    unmatched = Finding("REPRO-D101", "src/y.py", 9, "msg", "rng = default_rng()")
    entry = BaselineEntry("REPRO-D102", "src/x.py", "stamp = time.time()", "ok")
    stale_entry = BaselineEntry("REPRO-S202", "src/gone.py", "conn = ...", "old")
    new, baselined, stale = apply_baseline([matched, unmatched], [entry, stale_entry])
    assert new == [unmatched]
    assert baselined == [matched]
    assert stale == [stale_entry]


def test_one_baseline_entry_absorbs_repeats():
    findings = [
        Finding("REPRO-D102", "src/x.py", line, "msg", "stamp = time.time()")
        for line in (3, 8)
    ]
    entry = BaselineEntry("REPRO-D102", "src/x.py", "stamp = time.time()", "ok")
    new, baselined, stale = apply_baseline(findings, [entry])
    assert new == [] and len(baselined) == 2 and stale == []


# -- tree driver, CLI, and the repository's own cleanliness ------------------

def _violation_tree(tmp_path: Path) -> Path:
    src = tmp_path / "src"
    src.mkdir()
    (src / "clocky.py").write_text(
        "import time\n\nSTAMP = time.time()\n", encoding="utf-8"
    )
    return tmp_path


def test_lint_tree_reports_violation(tmp_path):
    report = lint_tree(_violation_tree(tmp_path))
    assert not report.ok
    assert report.checked_files == 1
    assert [f.rule for f in report.new] == ["REPRO-D102"]
    assert report.new[0].context == "STAMP = time.time()"


def test_lint_tree_baseline_accepts_and_flags_stale(tmp_path):
    tree = _violation_tree(tmp_path)
    write_baseline(tree / "lint-baseline.json", [
        BaselineEntry("REPRO-D102", "src/clocky.py", "STAMP = time.time()", "fixture"),
        BaselineEntry("REPRO-D102", "src/gone.py", "old line", "stale on purpose"),
    ])
    report = lint_tree(tree)
    assert report.ok
    assert len(report.baselined) == 1
    assert [e.path for e in report.stale_baseline] == ["src/gone.py"]


def test_runner_exit_codes_and_report_artifact(tmp_path, capsys):
    tree = _violation_tree(tmp_path)
    report_path = tmp_path / "out" / "lint-report.json"
    rc = lint_main(["--root", str(tree), "--report", str(report_path)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REPRO-D102" in out and "1 new finding(s)" in out
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["format"] == "repro-lint-report"
    assert [row["rule"] for row in payload["new"]] == ["REPRO-D102"]


def test_runner_update_baseline_then_clean(tmp_path, capsys):
    tree = _violation_tree(tmp_path)
    assert lint_main(["--root", str(tree), "--update-baseline"]) == 0
    entries = load_baseline(tree / "lint-baseline.json")
    assert len(entries) == 1 and entries[0].justification.startswith("TODO")
    capsys.readouterr()
    assert lint_main(["--root", str(tree)]) == 0
    assert "0 new finding(s), 1 baselined" in capsys.readouterr().out


def test_runner_invalid_baseline_is_usage_error(tmp_path, capsys):
    tree = _violation_tree(tmp_path)
    (tree / "lint-baseline.json").write_text('{"format": "wrong"}', encoding="utf-8")
    assert lint_main(["--root", str(tree)]) == 2
    assert "repro lint: error:" in capsys.readouterr().err


def test_cli_lint_subcommand_forwards(tmp_path, capsys):
    tree = _violation_tree(tmp_path)
    assert cli_main(["lint", "--root", str(tree)]) == 1
    assert "REPRO-D102" in capsys.readouterr().out
    assert cli_main(["lint", "--list-rules"]) == 0
    assert "REPRO-D101" in capsys.readouterr().out


def test_module_entry_point_subprocess(tmp_path):
    tree = _violation_tree(tmp_path)
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--root", str(tree)],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
    )
    assert result.returncode == 1
    assert "REPRO-D102" in result.stdout


def test_repository_tree_is_lint_clean():
    """The acceptance gate: zero non-baselined findings on the repo itself."""
    report = lint_tree(ROOT)
    assert report.ok, "\n".join(f.render() for f in report.new)
    assert len(report.baselined) == 4
    assert report.stale_baseline == []
    assert report.checked_files > 50
