"""Unit tests for the sweep supervisor (repro.evaluation.supervisor).

The heavy end-to-end scenarios (real sweeps under seeded fault plans)
live in ``tests/test_chaos.py``; this module covers the policy algebra,
the failure-record shapes, report ordering, and the supervision loop
itself driven by tiny synthetic task kinds — cheap enough to run in the
default suite.
"""

import pytest

from repro import faults
from repro.evaluation import EvaluationSettings
from repro.evaluation.supervisor import (
    FAILURE_REPORT_FORMAT,
    FAILURE_REPORT_VERSION,
    QuarantinedTask,
    SupervisedExecutor,
    SupervisorPolicy,
    TaskFailure,
    TaskKind,
    _kind_for,
    _TASK_KINDS,
    register_task_kind,
)
from repro.runtime.metrics import diff_snapshots, global_metrics

# -- policy ------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError, match="max_task_retries"):
        SupervisorPolicy(max_task_retries=-1)
    with pytest.raises(ValueError, match="heartbeat_interval_s"):
        SupervisorPolicy(heartbeat_interval_s=0.0)


def test_backoff_is_deterministic_exponential_with_cap():
    policy = SupervisorPolicy(backoff_base_s=0.05, backoff_cap_s=0.3)
    assert policy.backoff_delay(1) == pytest.approx(0.05)
    assert policy.backoff_delay(2) == pytest.approx(0.10)
    assert policy.backoff_delay(3) == pytest.approx(0.20)
    assert policy.backoff_delay(4) == pytest.approx(0.30)  # capped
    assert policy.backoff_delay(10) == pytest.approx(0.30)


# -- failure records ---------------------------------------------------------


def _quarantined(key="k", benchmark="b", config="c", arch_index=0, task="point"):
    return QuarantinedTask(
        task=task, key=key, benchmark=benchmark, config=config,
        arch_index=arch_index, attempts=3,
        failures=[TaskFailure("crash", "worker exited with code -9", 0, None)],
    )


def test_failure_record_shape():
    record = _quarantined().record()
    assert record == {
        "task": "point", "key": "k", "benchmark": "b", "config": "c",
        "arch_index": 0, "attempts": 3,
        "failures": [{
            "reason": "crash", "detail": "worker exited with code -9",
            "attempt": 0, "backend": None,
        }],
    }


def test_failure_report_envelope_and_ordering():
    executor = SupervisedExecutor(settings=EvaluationSettings())
    executor.failures.extend([
        _quarantined(key="z", benchmark="b2", arch_index=4),
        _quarantined(key="a", benchmark="b1", arch_index=None, task="generation"),
        _quarantined(key="m", benchmark="b2", arch_index=1),
    ])
    report = executor.failure_report()
    assert report["format"] == FAILURE_REPORT_FORMAT
    assert report["version"] == FAILURE_REPORT_VERSION
    ordered = [(r["task"], r["benchmark"], r["arch_index"]) for r in report["quarantined"]]
    # generation sorts before point; within a kind, identity then index.
    assert ordered == [
        ("generation", "b1", None), ("point", "b2", 1), ("point", "b2", 4),
    ]


def test_empty_failure_report():
    executor = SupervisedExecutor(settings=EvaluationSettings())
    assert executor.failure_report()["quarantined"] == []


# -- task-kind registry ------------------------------------------------------


def test_unregistered_function_is_rejected():
    def mystery(task):
        return task, None

    with pytest.raises(KeyError, match="not a .*registered"):
        _kind_for(mystery)


# -- the supervision loop, driven by synthetic task kinds --------------------
#
# The worker resolves task kinds from its module-level registry; under the
# fork start method a kind registered by the test is inherited by worker
# processes, so tiny synthetic tasks exercise the real dispatch/collect/
# retry machinery in milliseconds.


def _double(task):
    return task * 2, None


def _always_fail(task):
    raise ValueError(f"synthetic failure for task {task}")


def _describe(task):
    return {"benchmark": "synthetic", "config": "unit", "arch_index": task}


@pytest.fixture
def synthetic_kinds():
    register_task_kind(TaskKind("test-double", _double, lambda t: f"d{t:04x}", _describe))
    register_task_kind(TaskKind("test-fail", _always_fail, lambda t: f"f{t:04x}", _describe))
    yield
    _TASK_KINDS.pop("test-double", None)
    _TASK_KINDS.pop("test-fail", None)


def _supervise(kind_name, tasks, **policy_kwargs):
    policy_kwargs.setdefault("backoff_base_s", 0.001)
    executor = SupervisedExecutor(
        settings=EvaluationSettings(), jobs=2,
        policy=SupervisorPolicy(**policy_kwargs),
    )
    return executor._supervise(_TASK_KINDS[kind_name], tasks)


def test_supervised_tasks_complete_in_index_order(synthetic_kinds):
    before = global_metrics().snapshot()
    outcomes, quarantined = _supervise("test-double", [1, 2, 3, 4, 5])
    assert [payload for payload, _ in outcomes] == [2, 4, 6, 8, 10]
    assert quarantined == []
    delta = diff_snapshots(global_metrics().snapshot(), before)
    assert delta["counters"]["supervisor/tasks"] == 5
    assert "supervisor/retries" not in delta["counters"]


def test_failing_task_retries_then_quarantines(synthetic_kinds):
    before = global_metrics().snapshot()
    outcomes, quarantined = _supervise("test-fail", [7], max_task_retries=1)
    assert outcomes == [None]
    assert len(quarantined) == 1
    item = quarantined[0]
    assert item.task == "test-fail" and item.key == "f0007"
    assert item.benchmark == "synthetic" and item.arch_index == 7
    assert item.attempts == 2  # first attempt + one retry
    assert [f.reason for f in item.failures] == ["error", "error"]
    assert all("synthetic failure" in f.detail for f in item.failures)
    delta = diff_snapshots(global_metrics().snapshot(), before)
    assert delta["counters"]["supervisor/retries"] == 1
    assert delta["counters"]["supervisor/quarantined_tasks"] == 1


def test_quarantine_does_not_block_other_tasks(synthetic_kinds):
    outcomes, quarantined = _supervise("test-double", [1, 2], max_task_retries=0)
    assert [payload for payload, _ in outcomes] == [2, 4]
    assert quarantined == []
    outcomes, quarantined = _supervise("test-fail", [1, 2], max_task_retries=0)
    assert outcomes == [None, None]
    assert [item.arch_index for item in quarantined] == [1, 2]


def test_worker_crash_is_detected_and_retried(synthetic_kinds):
    """A SIGKILL'd worker costs a retry and a restart, never the result.

    The plan is armed in the parent and inherited by forked workers; the
    kill fires inside the worker's task context, so the parent survives.
    """
    faults.reset()
    faults.arm(faults.FaultPlan(faults=(
        faults.FaultSpec(site="task:start", kind="kill", task="d0001"),
    )))
    before = global_metrics().snapshot()
    try:
        outcomes, quarantined = _supervise("test-double", [1, 2, 3])
        assert [payload for payload, _ in outcomes] == [2, 4, 6]
        assert quarantined == []
    finally:
        faults.reset()
    delta = diff_snapshots(global_metrics().snapshot(), before)
    assert delta["counters"]["supervisor/worker_crashes"] == 1
    assert delta["counters"]["supervisor/retries"] == 1
    assert delta["counters"]["supervisor/worker_restarts"] >= 1
    assert delta["counters"]["supervisor/backend_demotions"] == 1


def test_run_attempt_reports_exceptions_not_raises(synthetic_kinds):
    from repro.evaluation.supervisor import _run_attempt

    status, payload, delta = _run_attempt("test-fail", 3, "f0003", 0, None)
    assert status == "error"
    assert "synthetic failure for task 3" in payload
    assert delta is None
    status, payload, delta = _run_attempt("test-double", 3, "d0003", 0, None)
    assert status == "done" and payload == 6
