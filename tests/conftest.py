"""Shared fixtures for the test suite.

Fixtures keep Monte Carlo trial counts small so the whole suite stays
fast; correctness of the statistics themselves is covered by dedicated
tests with larger counts where needed.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import get_benchmark
from repro.circuit import QuantumCircuit, cx, h, measure
from repro.collision import YieldSimulator
from repro.design import DesignFlow
from repro.hardware import Architecture, Lattice, ibm_16q_2x8


@pytest.fixture
def paper_example_circuit() -> QuantumCircuit:
    """The 5-qubit example circuit of the paper's Figure 4.

    Two-qubit gates: two between (q0, q4) and one each on (q1, q4),
    (q2, q4), (q3, q4), (q0, q1), so the degree list is
    q4:5, q0:3, q1:2, q2:1, q3:1.
    """
    circuit = QuantumCircuit(5, name="figure4_example")
    for qubit in range(5):
        circuit.append(h(qubit))
    circuit.append(cx(0, 4))
    circuit.append(cx(1, 4))
    circuit.append(cx(0, 1))
    circuit.append(cx(2, 4))
    circuit.append(cx(3, 4))
    circuit.append(cx(0, 4))
    for qubit in range(5):
        circuit.append(measure(qubit))
    return circuit


@pytest.fixture
def line_circuit() -> QuantumCircuit:
    """A 6-qubit circuit whose coupling graph is a simple chain."""
    circuit = QuantumCircuit(6, name="line6")
    for _ in range(3):
        for qubit in range(5):
            circuit.append(cx(qubit, qubit + 1))
    return circuit


@pytest.fixture
def small_benchmark() -> QuantumCircuit:
    """The smallest paper benchmark (7 qubits), used for end-to-end tests."""
    return get_benchmark("sym6_145")


@pytest.fixture
def sym6_architecture(small_benchmark) -> Architecture:
    """A designed architecture for the sym6 benchmark (fast settings)."""
    from repro.design import DesignOptions

    flow = DesignFlow(small_benchmark, DesignOptions(local_trials=300))
    return flow.design(max_four_qubit_buses=1)


@pytest.fixture
def ibm16(scope="session") -> Architecture:
    """IBM 16-qubit 2x8 baseline without 4-qubit buses."""
    return ibm_16q_2x8(use_four_qubit_buses=False)


@pytest.fixture
def fast_simulator() -> YieldSimulator:
    """A low-trial-count yield simulator for quick checks."""
    return YieldSimulator(trials=1000, seed=13)


@pytest.fixture
def square_lattice_3x3() -> Lattice:
    """A fully occupied 3x3 lattice."""
    return Lattice.rectangle(3, 3)
