"""Tests for the seven frequency-collision conditions (paper Figure 3)."""

import numpy as np
import pytest

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionCondition,
    DEFAULT_THRESHOLDS,
    check_pair_collisions,
    check_triple_collisions,
    find_collisions,
    pair_collision_mask,
    triple_collision_mask,
)

DELTA = ANHARMONICITY_GHZ  # -0.340 GHz


class TestPairConditions:
    def test_condition_1_same_frequency(self):
        assert CollisionCondition.SAME_FREQUENCY in check_pair_collisions(5.10, 5.11)

    def test_condition_1_not_triggered_outside_threshold(self):
        assert CollisionCondition.SAME_FREQUENCY not in check_pair_collisions(5.10, 5.13)

    def test_condition_2_half_anharmonicity(self):
        # f_j ~= f_k - delta/2 = f_k + 0.17
        assert CollisionCondition.HALF_ANHARMONICITY in check_pair_collisions(5.27, 5.10)

    def test_condition_2_symmetric_in_roles(self):
        assert CollisionCondition.HALF_ANHARMONICITY in check_pair_collisions(5.10, 5.27)

    def test_condition_2_narrow_threshold(self):
        # 0.17 +- 0.004: a 10 MHz miss must not trigger.
        assert CollisionCondition.HALF_ANHARMONICITY not in check_pair_collisions(5.28, 5.10)

    def test_condition_3_full_anharmonicity(self):
        # f_j ~= f_k + 0.34 within 25 MHz.
        assert CollisionCondition.FULL_ANHARMONICITY in check_pair_collisions(5.44, 5.11)

    def test_condition_4_above_anharmonicity(self):
        conditions = check_pair_collisions(5.50, 5.10)
        assert CollisionCondition.ABOVE_ANHARMONICITY in conditions

    def test_no_collision_for_well_separated_pair(self):
        assert check_pair_collisions(5.10, 5.19) == []

    def test_thresholds_match_figure3(self):
        assert DEFAULT_THRESHOLDS.condition_1_ghz == pytest.approx(0.017)
        assert DEFAULT_THRESHOLDS.condition_2_ghz == pytest.approx(0.004)
        assert DEFAULT_THRESHOLDS.condition_3_ghz == pytest.approx(0.025)
        assert DEFAULT_THRESHOLDS.condition_7_ghz == pytest.approx(0.017)


class TestTripleConditions:
    def test_condition_5_spectators_same_frequency(self):
        assert CollisionCondition.SPECTATOR_SAME_FREQUENCY in check_triple_collisions(
            5.17, 5.05, 5.06
        )

    def test_condition_5_not_triggered_when_separated(self):
        assert CollisionCondition.SPECTATOR_SAME_FREQUENCY not in check_triple_collisions(
            5.17, 5.05, 5.12
        )

    def test_condition_6_spectator_full_anharmonicity(self):
        assert CollisionCondition.SPECTATOR_FULL_ANHARMONICITY in check_triple_collisions(
            5.17, 5.44, 5.10
        )

    def test_condition_7_three_qubit_sum(self):
        # 2 f_j + delta = f_k + f_i -> choose f_i = f_k = f_j - 0.17.
        freq_j = 5.20
        freq_spectator = freq_j + DELTA / 2.0
        conditions = check_triple_collisions(freq_j, freq_spectator, freq_spectator)
        assert CollisionCondition.THREE_QUBIT_SUM in conditions

    def test_condition_7_not_triggered_when_far(self):
        assert CollisionCondition.THREE_QUBIT_SUM not in check_triple_collisions(
            5.20, 5.25, 5.30
        )


class TestFindCollisions:
    def test_detects_pair_and_triple(self):
        frequencies = {0: 5.10, 1: 5.11, 2: 5.10}
        collisions = find_collisions(
            frequencies, pairs=[(0, 1), (1, 2)], triples=[(1, 0, 2)]
        )
        conditions = {c.condition for c in collisions}
        assert CollisionCondition.SAME_FREQUENCY in conditions
        assert CollisionCondition.SPECTATOR_SAME_FREQUENCY in conditions

    def test_clean_assignment_has_no_collisions(self):
        frequencies = {0: 5.05, 1: 5.17, 2: 5.29}
        collisions = find_collisions(
            frequencies, pairs=[(0, 1), (1, 2)], triples=[(1, 0, 2)]
        )
        assert collisions == []


class TestVectorizedMasks:
    def test_pair_mask_matches_scalar(self):
        rng = np.random.default_rng(5)
        freqs = 5.0 + 0.34 * rng.random((200, 4))
        pairs = [(0, 1), (1, 2), (2, 3)]
        mask = pair_collision_mask(
            freqs, np.array([p[0] for p in pairs]), np.array([p[1] for p in pairs])
        )
        for trial in range(freqs.shape[0]):
            scalar = any(
                check_pair_collisions(freqs[trial, j], freqs[trial, k]) for j, k in pairs
            )
            assert mask[trial] == scalar

    def test_triple_mask_matches_scalar(self):
        rng = np.random.default_rng(6)
        freqs = 5.0 + 0.34 * rng.random((200, 4))
        triples = [(1, 0, 2), (2, 1, 3)]
        mask = triple_collision_mask(
            freqs,
            np.array([t[0] for t in triples]),
            np.array([t[1] for t in triples]),
            np.array([t[2] for t in triples]),
        )
        for trial in range(freqs.shape[0]):
            scalar = any(
                check_triple_collisions(freqs[trial, j], freqs[trial, i], freqs[trial, k])
                for j, i, k in triples
            )
            assert mask[trial] == scalar

    def test_empty_pairs_give_all_false(self):
        freqs = np.full((10, 3), 5.1)
        assert not pair_collision_mask(freqs, np.array([]), np.array([])).any()

    def test_empty_triples_give_all_false(self):
        freqs = np.full((10, 3), 5.1)
        assert not triple_collision_mask(
            freqs, np.array([]), np.array([]), np.array([])
        ).any()
