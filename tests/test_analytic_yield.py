"""Tests for the closed-form analytic yield estimator (extension module)."""

import pytest

from repro.collision import (
    YieldSimulator,
    estimate_yield_analytic,
    pair_collision_probability,
    triple_collision_probability,
)
from repro.hardware import Architecture, Lattice, ibm_16q_2x8


def chain_architecture(frequencies):
    lattice = Lattice.rectangle(1, len(frequencies))
    return Architecture.from_layout(
        "chain", lattice, frequencies={i: f for i, f in enumerate(frequencies)}
    )


class TestPairProbability:
    def test_identical_frequencies_certain_collision(self):
        assert pair_collision_probability(5.10, 5.10, sigma_ghz=0.0) == 1.0

    def test_well_separated_zero_noise_no_collision(self):
        assert pair_collision_probability(5.05, 5.15, sigma_ghz=0.0) == 0.0

    def test_probability_bounded(self):
        for separation in (0.0, 0.05, 0.17, 0.34):
            p = pair_collision_probability(5.0, 5.0 + separation, sigma_ghz=0.03)
            assert 0.0 <= p <= 1.0

    def test_probability_grows_with_noise(self):
        low = pair_collision_probability(5.05, 5.15, sigma_ghz=0.01)
        high = pair_collision_probability(5.05, 5.15, sigma_ghz=0.06)
        assert high > low

    def test_symmetric_in_arguments(self):
        assert pair_collision_probability(5.03, 5.21) == pytest.approx(
            pair_collision_probability(5.21, 5.03)
        )

    def test_condition2_hazard_near_170mhz(self):
        """Separations near |delta|/2 = 170 MHz are riskier than 100 MHz ones."""
        near_hazard = pair_collision_probability(5.00, 5.17, sigma_ghz=0.03)
        safe = pair_collision_probability(5.00, 5.10, sigma_ghz=0.03)
        assert near_hazard > safe


class TestTripleProbability:
    def test_identical_spectators_certain_collision(self):
        assert triple_collision_probability(5.17, 5.05, 5.05, sigma_ghz=0.0) == 1.0

    def test_clean_triple_zero_noise(self):
        assert triple_collision_probability(5.17, 5.05, 5.29, sigma_ghz=0.0) == 0.0

    def test_symmetric_in_spectators(self):
        assert triple_collision_probability(5.2, 5.05, 5.3) == pytest.approx(
            triple_collision_probability(5.2, 5.3, 5.05)
        )

    def test_condition7_hazard(self):
        """Both spectators 170 MHz below the centre triggers the sum condition."""
        hazard = triple_collision_probability(5.30, 5.13, 5.13, sigma_ghz=0.0)
        assert hazard == 1.0


class TestAnalyticEstimate:
    def test_requires_frequencies(self):
        bare = Architecture.from_layout("bare", Lattice.rectangle(1, 3))
        with pytest.raises(ValueError):
            estimate_yield_analytic(bare)

    def test_perfect_design_zero_noise(self):
        arch = chain_architecture([5.05, 5.17, 5.29])
        estimate = estimate_yield_analytic(arch, sigma_ghz=0.0)
        assert estimate.yield_rate == 1.0

    def test_reports_per_pair_probabilities(self):
        arch = chain_architecture([5.05, 5.17, 5.29])
        estimate = estimate_yield_analytic(arch, sigma_ghz=0.03)
        assert set(estimate.pair_failure_probabilities) == {(0, 1), (1, 2)}
        assert set(estimate.triple_failure_probabilities) == {(1, 0, 2)}
        worst_pair, probability = estimate.worst_pair()
        assert worst_pair in {(0, 1), (1, 2)}
        assert 0.0 <= probability <= 1.0

    def test_worst_pair_none_without_collision_pairs(self):
        """A single isolated qubit has no connected pairs; worst_pair is None."""
        isolated = chain_architecture([5.10])
        estimate = estimate_yield_analytic(isolated, sigma_ghz=0.03)
        assert estimate.pair_failure_probabilities == {}
        assert estimate.yield_rate == 1.0
        assert estimate.worst_pair() is None

    def test_worst_pair_tie_breaks_deterministically(self):
        """Exactly tied pairs resolve to the smallest pair tuple."""
        arch = chain_architecture([5.10, 5.20, 5.10, 5.20, 5.10])
        estimate = estimate_yield_analytic(arch, sigma_ghz=0.03)
        probabilities = estimate.pair_failure_probabilities
        worst_value = max(probabilities.values())
        tied = [pair for pair, p in probabilities.items() if p == worst_value]
        assert len(tied) >= 2  # the repeating pattern repeats the worst pair
        pair, probability = estimate.worst_pair()
        assert pair == min(tied)
        assert probability == worst_value

    def test_agrees_with_monte_carlo_on_chain(self):
        arch = chain_architecture([5.04, 5.16, 5.28, 5.08, 5.20])
        analytic = estimate_yield_analytic(arch, sigma_ghz=0.03).yield_rate
        monte_carlo = YieldSimulator(trials=40_000, sigma_ghz=0.03, seed=3).estimate(arch)
        # The independence approximation carries a small bias on top of the
        # Monte Carlo sampling error; a 0.03 absolute tolerance covers both.
        assert analytic == pytest.approx(monte_carlo.yield_rate, abs=0.03)

    def test_agrees_with_monte_carlo_on_ibm_baseline(self):
        arch = ibm_16q_2x8(use_four_qubit_buses=False)
        analytic = estimate_yield_analytic(arch, sigma_ghz=0.03).yield_rate
        monte_carlo = YieldSimulator(trials=40_000, sigma_ghz=0.03, seed=5).estimate(arch)
        # Independence approximation: require same order of magnitude and
        # small absolute error (yields here are ~1e-2).
        assert analytic == pytest.approx(monte_carlo.yield_rate, abs=0.01)

    def test_monotone_in_sigma(self):
        arch = chain_architecture([5.04, 5.16, 5.28])
        yields = [
            estimate_yield_analytic(arch, sigma_ghz=s).yield_rate
            for s in (0.01, 0.03, 0.06, 0.10)
        ]
        assert yields == sorted(yields, reverse=True)
