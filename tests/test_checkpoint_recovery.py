"""Torn-checkpoint recovery and failure-record round trips.

A single-file sweep checkpoint whose trailing record was half-written —
the signature of a kill mid-append or an interrupted copy — must not
crash ``--resume``: :meth:`SweepCheckpoint.load` salvages every intact
record, quarantines the damaged file beside the store, and lets the lost
tail recompute.  Recognizable *misconfiguration* (a different cache
kind's store at the path) must keep failing loud, and pure garbage that
never held checkpoint data stays a hard error too.
"""

import json

import pytest

from repro import persistence
from repro.evaluation.checkpoint import SweepCheckpoint
from repro.persistence import CacheStoreFault, WrongFormatError
from repro.runtime.metrics import global_metrics


def _failure(key, benchmark="sym6_145"):
    return {
        "task": "point", "key": key, "benchmark": benchmark,
        "config": "eff-full", "arch_index": 2, "attempts": 3,
        "failures": [
            {"reason": "crash", "detail": "worker exited with code -9",
             "attempt": 0, "backend": None},
        ],
    }


def _seeded_checkpoint(path, keys=("k1", "k2", "k3")):
    checkpoint = SweepCheckpoint(str(path))
    for key in keys:
        checkpoint.record_failure(_failure(key))
    return checkpoint


def test_failure_records_round_trip(tmp_path):
    path = tmp_path / "ck.json"
    _seeded_checkpoint(path)
    reloaded = SweepCheckpoint(str(path))
    assert reloaded.load() == 3
    assert reloaded.recorded_failures == 3
    assert [record["key"] for record in reloaded.failures()] == ["k1", "k2", "k3"]
    assert reloaded.failures()[0] == _failure("k1")
    # Failure records never satisfy resume lookups.
    assert reloaded.completed_points == 0
    assert reloaded.completed_generations == 0
    assert reloaded.point("k1") is None
    assert reloaded.generation_rows("k1") is None


def test_torn_trailing_record_is_salvaged_and_quarantined(tmp_path):
    path = tmp_path / "ck.json"
    _seeded_checkpoint(path)
    intact = path.read_bytes()
    path.write_bytes(intact[:-40])  # tear the tail mid-record

    before = global_metrics().snapshot()
    reloaded = SweepCheckpoint(str(path))
    with pytest.warns(CacheStoreFault, match="salvaged"):
        count = reloaded.load()
    assert 0 < count < 3  # the torn tail is lost, the intact head kept
    assert count == reloaded.recorded_failures

    # The damaged file moved aside, original bytes preserved for
    # forensics; the intact records were re-persisted to a fresh store.
    assert path.exists()
    quarantine = list(tmp_path.glob("ck.json.quarantine-*"))
    assert len(quarantine) == 1
    assert quarantine[0].read_bytes() == intact[:-40]

    delta_counters = global_metrics().snapshot()["counters"]
    base_counters = before["counters"]
    assert delta_counters.get("persistence/torn_stores", 0) == \
        base_counters.get("persistence/torn_stores", 0) + 1
    assert delta_counters.get("persistence/salvaged_records", 0) == \
        base_counters.get("persistence/salvaged_records", 0) + count

    # The store is whole again: the salvaged records survive a reload
    # on their own, and new recordings merge alongside them.
    assert SweepCheckpoint(str(path)).load() == count
    reloaded.record_failure(_failure("k9"))
    fresh = SweepCheckpoint(str(path))
    assert fresh.load() == count + 1


def test_wrong_cache_kind_still_fails_loud(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({
        "format": "repro-routing-cache", "version": 1, "entries": [],
    }), encoding="utf-8")
    with pytest.raises(WrongFormatError):
        SweepCheckpoint(str(path)).load()
    assert path.exists()  # misconfiguration is never quarantined


def test_unrecognizable_garbage_still_fails_loud(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("this was never a checkpoint", encoding="utf-8")
    with pytest.raises(ValueError):
        SweepCheckpoint(str(path)).load()
    assert path.exists()


def test_salvage_declines_foreign_header(tmp_path):
    """salvage_torn_store only touches files that held *our* format."""
    path = tmp_path / "ck.json"
    path.write_text(
        '{"format": "repro-other-cache", "version": 1, "entries": [{}',
        encoding="utf-8",
    )
    assert persistence.salvage_torn_store(
        path, SweepCheckpoint.FORMAT, SweepCheckpoint.VERSION,
    ) is None
    assert path.exists()


def test_intact_checkpoint_loads_without_warnings(tmp_path):
    import warnings

    path = tmp_path / "ck.json"
    _seeded_checkpoint(path)
    with warnings.catch_warnings():
        warnings.simplefilter("error", CacheStoreFault)
        assert SweepCheckpoint(str(path)).load() == 3
