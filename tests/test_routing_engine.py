"""Tests for the routing engine: per-architecture reuse and memoization."""

import pytest

from repro.circuit import QuantumCircuit, cx, h, measure
from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.mapping import (
    RoutingCache,
    RoutingEngine,
    SabreParameters,
    route_circuit,
)
from repro.mapping.engine import architecture_cache_key, circuit_cache_key


def small_circuit(name="engine_test"):
    circuit = QuantumCircuit(4, name=name)
    circuit.extend([cx(0, 3), cx(1, 2), h(0), cx(0, 1), measure(3)])
    return circuit


class TestRoutingCache:
    def test_get_miss_then_hit(self):
        cache = RoutingCache()
        assert cache.lookup(("k",)) is None
        cache.put(("k",), "value")
        assert cache.lookup(("k",)) == "value"
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_lru_eviction_bound(self):
        cache = RoutingCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.lookup(("a",))  # refresh a; b becomes least recent
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == 1
        assert cache.lookup(("c",)) == 3

    def test_unbounded_cache(self):
        cache = RoutingCache(max_entries=None)
        for index in range(600):
            cache.put((index,), index)
        assert len(cache) == 600

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            RoutingCache(max_entries=0)

    def test_clear(self):
        cache = RoutingCache()
        cache.put(("k",), 1)
        cache.clear()
        assert len(cache) == 0


class TestCacheKeys:
    def test_circuit_key_distinguishes_names_and_gates(self):
        base = small_circuit("one")
        renamed = small_circuit("two")
        assert circuit_cache_key(base) != circuit_cache_key(renamed)
        extended = small_circuit("one").append(h(1))
        assert circuit_cache_key(base) != circuit_cache_key(extended)
        assert circuit_cache_key(base) == circuit_cache_key(small_circuit("one"))

    def test_circuit_key_tracks_mutation(self):
        circuit = small_circuit()
        before = circuit_cache_key(circuit)
        circuit.append(h(2))
        assert circuit_cache_key(circuit) != before

    def test_architecture_key_ignores_frequencies(self):
        arch = ibm_16q_2x8()
        with_freqs = arch.with_frequencies({q: 5.1 for q in arch.qubits})
        assert architecture_cache_key(arch) == architecture_cache_key(with_freqs)

    def test_architecture_key_distinguishes_coupling(self):
        sparse = ibm_16q_2x8(use_four_qubit_buses=False)
        dense = ibm_16q_2x8(use_four_qubit_buses=True)
        assert architecture_cache_key(sparse) != architecture_cache_key(dense)


class TestRoutingEngine:
    def test_memoized_result_identical(self):
        engine = RoutingEngine()
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        first = engine.route(circuit, arch)
        second = engine.route(circuit, arch)
        assert engine.cache.hits == 1
        assert first.num_swaps == second.num_swaps
        assert first.initial_mapping == second.initial_mapping
        assert first.final_mapping == second.final_mapping
        assert list(first.routed_circuit.gates) == list(second.routed_circuit.gates)

    def test_cached_copies_are_detached(self):
        engine = RoutingEngine()
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        first = engine.route(circuit, arch)
        first.initial_mapping[0] = 999
        first.routed_circuit.append(h(0))
        second = engine.route(circuit, arch)
        assert second.initial_mapping.get(0) != 999
        assert len(second.routed_circuit) == len(first.routed_circuit) - 1

    def test_keep_routed_circuit_honoured_on_hits(self):
        engine = RoutingEngine()
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        # Counts-only routings cache counts-only entries (sweeps stay light);
        # a later full request recomputes once and upgrades the entry.
        dropped = engine.route(circuit, arch, keep_routed_circuit=False)
        kept = engine.route(circuit, arch, keep_routed_circuit=True)
        assert dropped.routed_circuit is None
        assert kept.routed_circuit is not None
        assert engine.cache.stats()["entries"] == 1
        # The upgrade recomputed in full, so it counts as a miss, not a hit.
        assert engine.cache.stats() == {"entries": 1, "hits": 0, "misses": 2}
        # Both flavours now serve from the upgraded entry.
        misses_before = engine.cache.misses
        again_full = engine.route(circuit, arch, keep_routed_circuit=True)
        again_light = engine.route(circuit, arch, keep_routed_circuit=False)
        assert engine.cache.misses == misses_before
        assert again_full.routed_circuit is not None
        assert again_light.routed_circuit is None
        assert again_full.num_swaps == dropped.num_swaps == kept.num_swaps

    def test_router_state_shared_per_architecture(self):
        engine = RoutingEngine()
        arch = ibm_16q_2x8()
        assert engine.router_for(arch) is engine.router_for(ibm_16q_2x8())
        assert engine.distances_for(arch) is engine.router_for(arch).distances

    def test_parameters_partition_the_cache(self):
        cache = RoutingCache()
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        default = RoutingEngine(cache=cache)
        tuned = RoutingEngine(SabreParameters(extended_set_size=5), cache=cache)
        default.route(circuit, arch)
        tuned.route(circuit, arch)
        assert cache.stats()["entries"] == 2

    def test_matches_route_circuit(self, line_circuit):
        arch = ibm_16q_2x8()
        via_engine = RoutingEngine().route(line_circuit, arch)
        direct = route_circuit(line_circuit, arch)
        assert via_engine.num_swaps == direct.num_swaps
        assert via_engine.total_gates == direct.total_gates
        assert list(via_engine.routed_circuit.gates) == list(direct.routed_circuit.gates)

    def test_route_circuit_accepts_engine(self, line_circuit):
        engine = RoutingEngine()
        arch = ibm_16q_2x8()
        first = route_circuit(line_circuit, arch, engine=engine)
        second = route_circuit(line_circuit, arch, engine=engine)
        assert engine.cache.hits == 1
        assert first.total_gates == second.total_gates

    def test_route_circuit_rejects_conflicting_parameters(self, line_circuit):
        engine = RoutingEngine(SabreParameters(extended_set_size=10))
        with pytest.raises(ValueError):
            route_circuit(
                line_circuit,
                ibm_16q_2x8(),
                parameters=SabreParameters(extended_set_size=20),
                engine=engine,
            )

    def test_route_circuit_matching_parameters_allowed(self, line_circuit):
        params = SabreParameters(extended_set_size=10)
        engine = RoutingEngine(params)
        result = route_circuit(line_circuit, ibm_16q_2x8(), parameters=params, engine=engine)
        assert result.num_swaps >= 0

    def test_colliding_cache_entry_not_served(self):
        """An entry whose stored gate tuple differs from the requesting
        circuit's (a content-hash collision) must be recomputed, not served."""
        from repro.mapping.engine import _CacheEntry

        engine = RoutingEngine()
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        real = engine.route(circuit, arch)
        key = (circuit_cache_key(circuit), architecture_cache_key(arch), engine.parameters)
        engine.cache.put(key, _CacheEntry(gates=(h(0),), result="poisoned"))
        again = engine.route(circuit, arch)
        assert again.num_swaps == real.num_swaps
        assert again.routed_circuit is not None

    def test_mismatched_profile_rejected(self, line_circuit):
        """The cache keys by circuit only, so a foreign profile must be
        rejected rather than silently producing/serving a wrong routing."""
        from repro.benchmarks import get_benchmark
        from repro.profiling import profile_circuit

        foreign = profile_circuit(get_benchmark("sym6_145"))
        with pytest.raises(ValueError, match="does not describe circuit"):
            RoutingEngine().route(line_circuit, ibm_16q_2x8(), profile=foreign)

    def test_disconnected_architecture_rejected(self):
        disconnected = Architecture(
            name="disc",
            lattice=Lattice.from_coordinates({0: (0, 0), 1: (5, 5)}),
            buses=[],
        )
        circuit = QuantumCircuit(2).extend([cx(0, 1)])
        with pytest.raises(ValueError):
            RoutingEngine().route(circuit, disconnected)


class TestCachePersistence:
    """RoutingCache.save/load: counts-only JSON reuse across processes."""

    def test_round_trip_serves_counts_from_disk(self, tmp_path):
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        producer = RoutingEngine()
        original = producer.route(circuit, arch, keep_routed_circuit=False)
        path = tmp_path / "routing_cache.json"
        assert producer.cache.save(path) == 1

        consumer = RoutingEngine()
        assert consumer.cache.load(path) == 1
        replayed = consumer.route(circuit, arch, keep_routed_circuit=False)
        assert replayed.num_swaps == original.num_swaps
        assert replayed.initial_mapping == original.initial_mapping
        assert replayed.final_mapping == original.final_mapping
        assert consumer.cache.stats()["hits"] == 1
        assert consumer.cache.stats()["misses"] == 0

    def test_full_circuit_request_recomputes_counts_only_entry(self, tmp_path):
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        producer = RoutingEngine()
        producer.route(circuit, arch, keep_routed_circuit=False)
        path = tmp_path / "routing_cache.json"
        producer.cache.save(path)

        consumer = RoutingEngine()
        consumer.cache.load(path)
        full = consumer.route(circuit, arch, keep_routed_circuit=True)
        assert full.routed_circuit is not None

    def test_load_merges_without_displacing_existing_entries(self, tmp_path):
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        producer = RoutingEngine()
        producer.route(circuit, arch, keep_routed_circuit=False)
        path = tmp_path / "routing_cache.json"
        producer.cache.save(path)

        consumer = RoutingEngine()
        consumer.route(circuit, arch, keep_routed_circuit=True)
        assert consumer.cache.load(path) == 0  # in-memory entry wins
        kept = consumer.route(circuit, arch, keep_routed_circuit=True)
        assert kept.routed_circuit is not None

    def test_missing_file_handling(self, tmp_path):
        cache = RoutingCache()
        missing = tmp_path / "nope.json"
        assert cache.load(missing, missing_ok=True) == 0
        with pytest.raises(FileNotFoundError):
            cache.load(missing)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "entries": []}')
        with pytest.raises(ValueError, match="not a routing cache"):
            RoutingCache().load(path)

    def test_parameters_round_trip_in_keys(self, tmp_path):
        """Entries persisted under tuned parameters only serve matching engines."""
        circuit = small_circuit()
        arch = ibm_16q_2x8()
        tuned = SabreParameters(passes=3)
        producer = RoutingEngine(tuned)
        producer.route(circuit, arch, keep_routed_circuit=False)
        path = tmp_path / "routing_cache.json"
        producer.cache.save(path)

        default_engine = RoutingEngine()
        default_engine.cache.load(path)
        default_engine.route(circuit, arch, keep_routed_circuit=False)
        assert default_engine.cache.stats()["hits"] == 0

        tuned_engine = RoutingEngine(tuned)
        tuned_engine.cache.load(path)
        tuned_engine.route(circuit, arch, keep_routed_circuit=False)
        assert tuned_engine.cache.stats()["hits"] == 1

    def test_content_digest_is_process_stable(self):
        """Persisted keys embed the circuit digest, so it must not depend on
        Python's per-process hash salt; the pinned value catches any
        regression back to the salted built-in hash()."""
        assert small_circuit().content_hash() == 1918906499985999522

    def test_unknown_version_rejected(self, tmp_path):
        """A future version-2 cache file must fail loudly instead of being
        half-parsed by version-1 code."""
        import json

        path = tmp_path / "future.json"
        payload = {"format": RoutingCache.FORMAT, "version": 2, "entries": []}
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported .* version 2"):
            RoutingCache().load(path)

    def test_save_is_atomic_on_disk(self, tmp_path):
        """save goes through a temp file + os.replace: after it returns, the
        directory holds exactly the target file, fully written."""
        import json

        circuit = small_circuit()
        producer = RoutingEngine()
        producer.route(circuit, ibm_16q_2x8(), keep_routed_circuit=False)
        path = tmp_path / "routing_cache.json"
        producer.cache.save(path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["routing_cache.json"]
        payload = json.loads(path.read_text())
        assert payload["format"] == RoutingCache.FORMAT
        assert payload["version"] == RoutingCache.VERSION

    def test_concurrent_merge_saves_lose_no_entries(self, tmp_path):
        """The satellite regression: two workers merging into one shared
        cache path from different threads must end with the union of their
        routings, not whichever write landed last."""
        import threading

        arch = ibm_16q_2x8()
        engines = []
        for index in range(2):
            engine = RoutingEngine()
            engine.route(
                small_circuit(name=f"worker_{index}"), arch, keep_routed_circuit=False
            )
            engines.append(engine)
        path = tmp_path / "routing_cache.json"
        barrier = threading.Barrier(len(engines))
        errors = []

        def merge(engine):
            try:
                barrier.wait(timeout=10)
                engine.cache.merge_save(path)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=merge, args=(engine,)) for engine in engines
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = RoutingCache()
        assert final.load(path) == 2  # one entry per worker, none dropped
