"""Tests for the SABRE-style SWAP router."""

import pytest

from repro.circuit import QuantumCircuit, cx, h, measure
from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.mapping import SabreRouter, SabreParameters, route_circuit
from repro.mapping.router import verify_routing
from repro.profiling import profile_circuit


def chain_architecture(n):
    return Architecture.from_layout("chain", Lattice.rectangle(1, n))


class TestRouterCore:
    def test_already_executable_circuit_needs_no_swaps(self):
        circuit = QuantumCircuit(3).extend([cx(0, 1), cx(1, 2), h(0), measure(2)])
        arch = chain_architecture(3)
        router = SabreRouter(arch)
        routed, num_swaps, _final = router.route(circuit, {0: 0, 1: 1, 2: 2})
        assert num_swaps == 0
        assert len(routed) == len(circuit)

    def test_distant_gate_requires_swaps(self):
        circuit = QuantumCircuit(4).extend([cx(0, 3)])
        arch = chain_architecture(4)
        router = SabreRouter(arch)
        routed, num_swaps, _final = router.route(circuit, {0: 0, 1: 1, 2: 2, 3: 3})
        assert num_swaps >= 2
        assert sum(1 for gate in routed if gate.name == "swap") == num_swaps

    def test_single_qubit_gates_always_executable(self):
        circuit = QuantumCircuit(2).extend([h(0), h(1), measure(0)])
        arch = chain_architecture(2)
        routed, num_swaps, _final = SabreRouter(arch).route(circuit, {0: 0, 1: 1})
        assert num_swaps == 0
        assert len(routed) == 3

    def test_final_mapping_tracks_swaps(self):
        circuit = QuantumCircuit(3).extend([cx(0, 2)])
        arch = chain_architecture(3)
        _routed, num_swaps, final = SabreRouter(arch).route(circuit, {0: 0, 1: 1, 2: 2})
        assert num_swaps >= 1
        assert sorted(final.values()) == sorted({0, 1, 2} & set(final.values()))
        assert len(set(final.values())) == 3

    def test_mapping_with_extra_logical_keys_accepted(self):
        """Extra logical keys beyond the register pin physical qubits but
        must not crash routing (the pre-refactor router accepted them)."""
        circuit = QuantumCircuit(2).extend([cx(0, 1), cx(1, 0)])
        arch = chain_architecture(5)
        mapping = {0: 0, 1: 2, 2: 1, 3: 3, 4: 4}
        routed, num_swaps, final = SabreRouter(arch).route(circuit, mapping)
        verify_routing(circuit, routed, arch, mapping)
        assert num_swaps >= 1
        assert set(final) == set(mapping)

    def test_invalid_initial_mapping_rejected(self):
        circuit = QuantumCircuit(3).extend([cx(0, 1)])
        arch = chain_architecture(3)
        router = SabreRouter(arch)
        with pytest.raises(ValueError):
            router.route(circuit, {0: 0, 1: 0, 2: 1})
        with pytest.raises(ValueError):
            router.route(circuit, {0: 0, 1: 1})
        with pytest.raises(ValueError):
            router.route(circuit, {0: 0, 1: 1, 2: 99})
        with pytest.raises(ValueError):
            # Extra logical key colliding with a circuit logical's physical
            # qubit: corrupts the inverse mapping (would livelock routing).
            router.route(circuit, {0: 0, 1: 1, 2: 2, 9: 0})
        with pytest.raises(ValueError):
            # Extra logical key on an unknown physical qubit.
            router.route(circuit, {0: 0, 1: 1, 2: 2, 9: 77})

    def test_all_routed_two_qubit_gates_on_coupled_pairs(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        coupled = set()
        for a, b in arch.coupling_edges():
            coupled.add((a, b))
            coupled.add((b, a))
        for gate in result.routed_circuit:
            if gate.is_two_qubit:
                assert tuple(gate.qubits) in coupled

    def test_router_parameters_accepted(self, line_circuit):
        params = SabreParameters(extended_set_size=5, extended_set_weight=0.3)
        result = route_circuit(line_circuit, ibm_16q_2x8(), parameters=params)
        assert result.total_gates >= len(line_circuit)


class TestRoutingVerification:
    def test_verify_accepts_correct_routing(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        verify_routing(line_circuit, result.routed_circuit, arch, result.initial_mapping)

    def test_verify_rejects_dropped_gate(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        truncated = QuantumCircuit(result.routed_circuit.num_qubits)
        truncated.extend(result.routed_circuit.gates[:-1])
        with pytest.raises(AssertionError):
            verify_routing(line_circuit, truncated, arch, result.initial_mapping)

    def test_logical_swap_gates_route_and_verify(self):
        """Program swap gates are routed like any two-qubit gate and must
        not be confused with router-inserted swaps during verification."""
        from repro.circuit.gates import swap

        circuit = QuantumCircuit(4, name="with_logical_swaps")
        circuit.extend([swap(0, 1), cx(1, 3), swap(0, 3), cx(2, 0), measure(3)])
        arch = chain_architecture(4)
        result = route_circuit(circuit, arch)
        verify_routing(circuit, result.routed_circuit, arch, result.initial_mapping)
        assert result.original_gates == len(circuit)

    def test_verify_rejects_uncoupled_gate(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        corrupted = QuantumCircuit(result.routed_circuit.num_qubits)
        corrupted.extend(result.routed_circuit.gates)
        corrupted.append(cx(0, 15))
        with pytest.raises(AssertionError):
            verify_routing(line_circuit, corrupted, arch, result.initial_mapping)


class TestEscapeHatches:
    def test_force_route_path_still_verifies(self):
        """stall_threshold=0 funnels every blocked gate through _force_route."""
        circuit = QuantumCircuit(6, name="forced")
        for _ in range(3):
            for qubit in range(5):
                circuit.append(cx(qubit, qubit + 1))
            circuit.append(cx(0, 5))
        arch = chain_architecture(6)
        params = SabreParameters(stall_threshold=0)
        result = route_circuit(circuit, arch, parameters=params)
        verify_routing(circuit, result.routed_circuit, arch, result.initial_mapping)
        assert result.num_swaps >= 1

    def test_force_route_matches_distance_lower_bound(self):
        """The greedy walk needs exactly distance-1 swaps on a bare chain."""
        circuit = QuantumCircuit(5).extend([cx(0, 4)])
        arch = chain_architecture(5)
        router = SabreRouter(arch, SabreParameters(stall_threshold=0))
        routed, num_swaps, _final = router.route(circuit, {q: q for q in range(5)})
        assert num_swaps == 3
        assert sum(1 for gate in routed if gate.name == "swap") == 3

    def test_swap_budget_exhaustion_raises(self):
        circuit = QuantumCircuit(4).extend([cx(0, 3)])
        arch = chain_architecture(4)
        router = SabreRouter(arch, SabreParameters(max_swaps_per_gate=0))
        with pytest.raises(RuntimeError, match="swap budget"):
            router.route(circuit, {q: q for q in range(4)})

    def test_stall_threshold_validation(self):
        with pytest.raises(ValueError):
            SabreParameters(stall_threshold=-1)


class TestBidirectionalAndRestarts:
    def test_invalid_pass_counts_rejected(self):
        with pytest.raises(ValueError):
            SabreParameters(passes=0)
        with pytest.raises(ValueError):
            SabreParameters(passes=2)
        with pytest.raises(ValueError):
            SabreParameters(restarts=0)

    def test_single_pass_route_best_matches_route(self, line_circuit):
        arch = ibm_16q_2x8()
        profile = profile_circuit(line_circuit)
        from repro.mapping import DistanceMatrix, initial_mapping

        mapping = initial_mapping(profile, arch, DistanceMatrix(arch))
        router = SabreRouter(arch)
        routed, swaps, final = router.route(line_circuit, dict(mapping))
        best_routed, best_swaps, best_final, used = router.route_best(line_circuit, mapping)
        assert best_swaps == swaps
        assert used == mapping
        assert best_final == final
        assert list(best_routed.gates) == list(routed.gates)

    @pytest.mark.parametrize("benchmark_name", ["sym6_145", "qft_16"])
    def test_bidirectional_never_worse(self, benchmark_name):
        from repro.benchmarks import get_benchmark

        circuit = get_benchmark(benchmark_name)
        arch = ibm_16q_2x8()
        single = route_circuit(circuit, arch, parameters=SabreParameters(passes=1))
        refined = route_circuit(circuit, arch, parameters=SabreParameters(passes=3))
        assert refined.num_swaps <= single.num_swaps
        verify_routing(circuit, refined.routed_circuit, arch, refined.initial_mapping)

    def test_restarts_never_worse_and_deterministic(self):
        from repro.benchmarks import get_benchmark

        circuit = get_benchmark("sym6_145")
        arch = ibm_16q_2x8()
        single = route_circuit(circuit, arch)
        restarted = SabreParameters(restarts=3)
        first = route_circuit(circuit, arch, parameters=restarted)
        second = route_circuit(circuit, arch, parameters=restarted)
        assert first.num_swaps <= single.num_swaps
        assert first.num_swaps == second.num_swaps
        assert first.initial_mapping == second.initial_mapping
        verify_routing(circuit, first.routed_circuit, arch, first.initial_mapping)

    def test_restarts_on_single_qubit_architecture(self):
        """Degenerate chips have nothing to transpose; restarts must not crash."""
        circuit = QuantumCircuit(1).extend([h(0), measure(0)])
        arch = chain_architecture(1)
        result = route_circuit(
            circuit, arch, parameters=SabreParameters(restarts=3, passes=3)
        )
        assert result.num_swaps == 0
        assert len(result.routed_circuit) == 2

    def test_bidirectional_winner_replays_from_recorded_mapping(self):
        """With passes > 1 the winning pass's initial mapping is recorded."""
        from repro.benchmarks import get_benchmark

        circuit = get_benchmark("qft_16")
        arch = ibm_16q_2x8()
        result = route_circuit(
            circuit, arch, parameters=SabreParameters(passes=3, restarts=2)
        )
        verify_routing(circuit, result.routed_circuit, arch, result.initial_mapping)


class TestSwapCountRegression:
    """The incremental router must never route worse than the pre-refactor
    router did; the pinned counts are the old router's on the seed tree."""

    PRE_REFACTOR_SWAPS = {
        ("sym6_145", False): 280,
        ("sym6_145", True): 207,
        ("z4_268", False): 402,
        ("z4_268", True): 287,
        ("qft_16", False): 134,
        ("qft_16", True): 76,
    }

    @pytest.mark.parametrize("benchmark_name,four_qubit", sorted(PRE_REFACTOR_SWAPS))
    def test_swap_counts_do_not_regress(self, benchmark_name, four_qubit):
        from repro.benchmarks import get_benchmark

        circuit = get_benchmark(benchmark_name)
        result = route_circuit(circuit, ibm_16q_2x8(use_four_qubit_buses=four_qubit))
        assert result.num_swaps <= self.PRE_REFACTOR_SWAPS[(benchmark_name, four_qubit)]


class TestDenseCouplingAdvantage:
    def test_more_connections_never_hurt_much(self):
        """4-qubit buses (denser coupling) should not increase the swap count materially."""
        from repro.benchmarks import get_benchmark

        circuit = get_benchmark("sym6_145")
        sparse = route_circuit(circuit, ibm_16q_2x8(use_four_qubit_buses=False))
        dense = route_circuit(circuit, ibm_16q_2x8(use_four_qubit_buses=True))
        assert dense.num_swaps <= sparse.num_swaps * 1.1 + 5

    def test_perfect_layout_for_chain_circuit_needs_no_swaps(self):
        """Section 5.3.1: a chain program on a chain layout maps perfectly."""
        from repro.benchmarks import ising_model_circuit
        from repro.design import DesignFlow, DesignOptions

        circuit = ising_model_circuit(8, trotter_steps=2)
        arch = DesignFlow(circuit, DesignOptions(local_trials=200)).design(0)
        result = route_circuit(circuit, arch)
        assert result.num_swaps == 0
