"""Tests for the SABRE-style SWAP router."""

import pytest

from repro.circuit import QuantumCircuit, cx, h, measure
from repro.hardware import Architecture, Lattice, ibm_16q_2x8
from repro.mapping import SabreRouter, SabreParameters, route_circuit
from repro.mapping.router import verify_routing
from repro.profiling import profile_circuit


def chain_architecture(n):
    return Architecture.from_layout("chain", Lattice.rectangle(1, n))


class TestRouterCore:
    def test_already_executable_circuit_needs_no_swaps(self):
        circuit = QuantumCircuit(3).extend([cx(0, 1), cx(1, 2), h(0), measure(2)])
        arch = chain_architecture(3)
        router = SabreRouter(arch)
        routed, num_swaps, _final = router.route(circuit, {0: 0, 1: 1, 2: 2})
        assert num_swaps == 0
        assert len(routed) == len(circuit)

    def test_distant_gate_requires_swaps(self):
        circuit = QuantumCircuit(4).extend([cx(0, 3)])
        arch = chain_architecture(4)
        router = SabreRouter(arch)
        routed, num_swaps, _final = router.route(circuit, {0: 0, 1: 1, 2: 2, 3: 3})
        assert num_swaps >= 2
        assert sum(1 for gate in routed if gate.name == "swap") == num_swaps

    def test_single_qubit_gates_always_executable(self):
        circuit = QuantumCircuit(2).extend([h(0), h(1), measure(0)])
        arch = chain_architecture(2)
        routed, num_swaps, _final = SabreRouter(arch).route(circuit, {0: 0, 1: 1})
        assert num_swaps == 0
        assert len(routed) == 3

    def test_final_mapping_tracks_swaps(self):
        circuit = QuantumCircuit(3).extend([cx(0, 2)])
        arch = chain_architecture(3)
        _routed, num_swaps, final = SabreRouter(arch).route(circuit, {0: 0, 1: 1, 2: 2})
        assert num_swaps >= 1
        assert sorted(final.values()) == sorted({0, 1, 2} & set(final.values()))
        assert len(set(final.values())) == 3

    def test_invalid_initial_mapping_rejected(self):
        circuit = QuantumCircuit(3).extend([cx(0, 1)])
        arch = chain_architecture(3)
        router = SabreRouter(arch)
        with pytest.raises(ValueError):
            router.route(circuit, {0: 0, 1: 0, 2: 1})
        with pytest.raises(ValueError):
            router.route(circuit, {0: 0, 1: 1})
        with pytest.raises(ValueError):
            router.route(circuit, {0: 0, 1: 1, 2: 99})

    def test_all_routed_two_qubit_gates_on_coupled_pairs(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        coupled = set()
        for a, b in arch.coupling_edges():
            coupled.add((a, b))
            coupled.add((b, a))
        for gate in result.routed_circuit:
            if gate.is_two_qubit:
                assert tuple(gate.qubits) in coupled

    def test_router_parameters_accepted(self, line_circuit):
        params = SabreParameters(extended_set_size=5, extended_set_weight=0.3)
        result = route_circuit(line_circuit, ibm_16q_2x8(), parameters=params)
        assert result.total_gates >= len(line_circuit)


class TestRoutingVerification:
    def test_verify_accepts_correct_routing(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        verify_routing(line_circuit, result.routed_circuit, arch, result.initial_mapping)

    def test_verify_rejects_dropped_gate(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        truncated = QuantumCircuit(result.routed_circuit.num_qubits)
        truncated.extend(result.routed_circuit.gates[:-1])
        with pytest.raises(AssertionError):
            verify_routing(line_circuit, truncated, arch, result.initial_mapping)

    def test_verify_rejects_uncoupled_gate(self, line_circuit):
        arch = ibm_16q_2x8()
        result = route_circuit(line_circuit, arch)
        corrupted = QuantumCircuit(result.routed_circuit.num_qubits)
        corrupted.extend(result.routed_circuit.gates)
        corrupted.append(cx(0, 15))
        with pytest.raises(AssertionError):
            verify_routing(line_circuit, corrupted, arch, result.initial_mapping)


class TestDenseCouplingAdvantage:
    def test_more_connections_never_hurt_much(self):
        """4-qubit buses (denser coupling) should not increase the swap count materially."""
        from repro.benchmarks import get_benchmark

        circuit = get_benchmark("sym6_145")
        sparse = route_circuit(circuit, ibm_16q_2x8(use_four_qubit_buses=False))
        dense = route_circuit(circuit, ibm_16q_2x8(use_four_qubit_buses=True))
        assert dense.num_swaps <= sparse.num_swaps * 1.1 + 5

    def test_perfect_layout_for_chain_circuit_needs_no_swaps(self):
        """Section 5.3.1: a chain program on a chain layout maps perfectly."""
        from repro.benchmarks import ising_model_circuit
        from repro.design import DesignFlow, DesignOptions

        circuit = ising_model_circuit(8, trotter_steps=2)
        arch = DesignFlow(circuit, DesignOptions(local_trials=200)).design(0)
        result = route_circuit(circuit, arch)
        assert result.num_swaps == 0
