"""Tests for bus objects."""

import pytest

from repro.hardware.bus import Bus, BusType, four_qubit_bus, two_qubit_bus
from repro.hardware.lattice import Square


class TestTwoQubitBus:
    def test_coupled_pairs(self):
        bus = two_qubit_bus(3, 1)
        assert bus.coupled_pairs == [(1, 3)]
        assert bus.num_qubits == 2

    def test_qubits_sorted(self):
        assert two_qubit_bus(5, 2).qubits == (2, 5)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Bus(BusType.TWO_QUBIT, (0, 1, 2))


class TestFourQubitBus:
    def test_full_square_couples_six_pairs(self):
        bus = four_qubit_bus((0, 1, 2, 3), Square((0, 0)))
        assert len(bus.coupled_pairs) == 6

    def test_three_qubit_corner_case_couples_three_pairs(self):
        bus = four_qubit_bus((0, 1, 2), Square((0, 0)))
        assert len(bus.coupled_pairs) == 3

    def test_requires_square(self):
        with pytest.raises(ValueError):
            Bus(BusType.FOUR_QUBIT, (0, 1, 2, 3))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Bus(BusType.FOUR_QUBIT, (0, 1), square=Square((0, 0)))

    def test_pairs_cover_diagonals(self):
        bus = four_qubit_bus((4, 5, 8, 9), Square((0, 0)))
        assert (4, 9) in bus.coupled_pairs
        assert (5, 8) in bus.coupled_pairs
