"""Tests for the runtime session layer: config digests, the process
registry, request dedup, and worker→parent metrics merging."""

import pickle
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.benchmarks import get_benchmark
from repro.design import (
    allocation_call_count,
    reset_allocation_call_count,
    reset_shared_caches,
)
from repro.evaluation import (
    EvaluationSettings,
    ExperimentConfig,
    evaluate_benchmark,
    run_sweep,
)
from repro.evaluation import parallel
from repro.runtime.config import RuntimeConfig, canonical_store_path
from repro.runtime.metrics import diff_snapshots, global_metrics
from repro.runtime.session import peek_session, session_for

FAST_KW = dict(yield_trials=300, frequency_local_trials=80, random_bus_seeds=(1,))
FAST_SETTINGS = EvaluationSettings(**FAST_KW)
FAST_CONFIGS = (ExperimentConfig.EFF_FULL, ExperimentConfig.EFF_LAYOUT_ONLY)


def point_fingerprint(result):
    return [
        (p.config.value, p.architecture_name, p.yield_rate, p.total_gates,
         p.num_swaps, p.normalized_reciprocal_gates)
        for p in result.points
    ]


def _cold_process():
    """Simulate a fresh process: no sessions, no shared design caches."""
    parallel.reset_worker_state()
    reset_shared_caches()
    reset_allocation_call_count()


class TestRuntimeConfigRoundTrip:
    def test_settings_round_trip(self):
        settings = EvaluationSettings(
            yield_trials=123, frequency_local_trials=45,
            random_bus_seeds=(2, 3), screening=False,
        )
        config = RuntimeConfig.from_settings(settings)
        assert config.evaluation_settings() == settings

    def test_json_round_trip_preserves_digest(self, tmp_path):
        config = RuntimeConfig(
            yield_trials=500, routing_cache_path="sqlite:cache.db",
            allocation_strategy="analytic-guided",
        )
        path = tmp_path / "config.json"
        path.write_text(config.to_json())
        loaded = RuntimeConfig.from_json(path)
        assert loaded == config
        assert loaded.digest() == config.digest()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime-config keys"):
            RuntimeConfig.from_mapping({"nope": 1})

    def test_config_is_picklable_with_stable_digest(self):
        config = RuntimeConfig(**FAST_KW)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.digest() == config.digest()

    def test_invalid_combinations_fail_at_resolution(self):
        with pytest.raises(ValueError):
            RuntimeConfig(resume=True)  # resume without a checkpoint
        with pytest.raises(ValueError):
            RuntimeConfig(allocation_strategy="nope")


class TestStorePathAliasing:
    """Regression: worker engine maps used to key on raw cache-path
    strings, so ``cache.json`` and ``/abs/dir/cache.json`` naming the
    same file got two engines (and two racing writers).  Sessions key on
    the config digest, which canonicalizes store paths first."""

    def test_relative_and_absolute_spellings_share_one_engine(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        relative = EvaluationSettings(routing_cache_path="cache.json", **FAST_KW)
        absolute = EvaluationSettings(
            routing_cache_path=str(tmp_path / "cache.json"), **FAST_KW
        )
        assert (RuntimeConfig.from_settings(relative).digest()
                == RuntimeConfig.from_settings(absolute).digest())
        parallel.reset_worker_state()
        assert parallel._worker_engine(relative) is parallel._worker_engine(absolute)

    def test_symlink_aliases_share_one_engine(self, tmp_path):
        real = tmp_path / "real"
        real.mkdir()
        link = tmp_path / "link"
        link.symlink_to(real)
        via_real = EvaluationSettings(
            design_cache_path=str(real / "plans.json"), **FAST_KW
        )
        via_link = EvaluationSettings(
            design_cache_path=str(link / "plans.json"), **FAST_KW
        )
        assert (RuntimeConfig.from_settings(via_real).digest()
                == RuntimeConfig.from_settings(via_link).digest())
        parallel.reset_worker_state()
        assert (parallel._worker_design_engine(via_real)
                is parallel._worker_design_engine(via_link))

    def test_different_paths_get_different_sessions(self, tmp_path):
        a = EvaluationSettings(routing_cache_path=str(tmp_path / "a.json"), **FAST_KW)
        b = EvaluationSettings(routing_cache_path=str(tmp_path / "b.json"), **FAST_KW)
        assert (RuntimeConfig.from_settings(a).digest()
                != RuntimeConfig.from_settings(b).digest())
        parallel.reset_worker_state()
        assert parallel._worker_engine(a) is not parallel._worker_engine(b)

    def test_scheme_prefix_survives_canonicalization(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        canonical = canonical_store_path("sqlite:cache.db")
        assert canonical == f"sqlite:{tmp_path / 'cache.db'}"
        assert canonical_store_path(None) is None


class TestSessionRegistry:
    def test_session_for_is_get_or_create(self):
        parallel.reset_worker_state()
        config = RuntimeConfig(**FAST_KW)
        assert peek_session(config) is None
        session = session_for(config)
        assert session_for(config) is session
        assert peek_session(config) is session

    def test_sessions_are_lazy(self):
        parallel.reset_worker_state()
        session = session_for(RuntimeConfig(**FAST_KW))
        assert not session.has_routing_engine
        assert not session.has_design_engine


class TestSessionByteIdentity:
    """Acceptance: one shared warm Session serves design + evaluate +
    sweep with outputs byte-identical to fresh per-call engines, for any
    --jobs count, cold and warm."""

    def test_warm_session_evaluate_matches_fresh_engines(self):
        _cold_process()
        circuit = get_benchmark("sym6_145")
        fresh = evaluate_benchmark(circuit, configs=FAST_CONFIGS,
                                   settings=FAST_SETTINGS)
        session = session_for(settings=FAST_SETTINGS)
        cold = session.evaluate("sym6_145", FAST_CONFIGS)
        warm = session.evaluate("sym6_145", FAST_CONFIGS)
        assert point_fingerprint(cold) == point_fingerprint(fresh)
        assert point_fingerprint(warm) == point_fingerprint(fresh)

    def test_warm_session_sweep_matches_cold_sweep_for_any_jobs(self):
        _cold_process()
        reference = run_sweep(["sym6_145"], jobs=1, settings=FAST_SETTINGS,
                              configs=FAST_CONFIGS)
        session = session_for(settings=FAST_SETTINGS)  # warm from the run above
        assert session.has_design_engine
        for jobs in (1, 2, 4):
            result = session.sweep(["sym6_145"], configs=FAST_CONFIGS, jobs=jobs)
            assert point_fingerprint(result["sym6_145"]) == point_fingerprint(
                reference["sym6_145"]
            ), f"warm session sweep diverged at jobs={jobs}"


class TestConcurrentDedup:
    def test_identical_concurrent_requests_compute_once(self):
        circuit = get_benchmark("sym6_145")

        # Reference: the Algorithm 3 search cost of one cold design.
        _cold_process()
        session_for(settings=FAST_SETTINGS).design(circuit, 1)
        single = allocation_call_count()
        assert single > 0

        _cold_process()
        session = session_for(settings=FAST_SETTINGS)
        deduped_before = global_metrics().counter("session/deduped_requests")

        # Hold the owner's engine call open until at least one follower
        # has parked on the in-flight event (followers bump the dedup
        # counter *before* waiting).  Without the gate a fast cold design
        # can finish before the pool even dispatches the other threads,
        # and every request would be served from the warm cache instead
        # of exercising the dedup path.
        engine = session.design_engine
        real_design = engine.design

        def gated_design(*args, **kwargs):
            deadline = time.monotonic() + 10.0
            while (global_metrics().counter("session/deduped_requests")
                   <= deduped_before and time.monotonic() < deadline):
                time.sleep(0.001)
            return real_design(*args, **kwargs)

        engine.design = gated_design
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(
                    lambda _: session.design(circuit, 1), range(8)
                ))
        finally:
            engine.design = real_design
        assert allocation_call_count() == single, (
            "concurrent identical requests must resolve to one engine call"
        )
        assert len({arch.name for arch in results}) == 1
        assert global_metrics().counter("session/deduped_requests") > deduped_before


class TestWorkerMetricsMerge:
    def test_forked_worker_deltas_merge_into_parent(self):
        _cold_process()
        baseline = global_metrics().snapshot()
        run_sweep(["sym6_145"], jobs=2, settings=FAST_SETTINGS,
                  configs=FAST_CONFIGS)
        delta = diff_snapshots(global_metrics().snapshot(), baseline)
        counters = delta["counters"]
        # All the work happened in forked children; the parent registry
        # sees it only through the merged task deltas.
        assert counters.get("design/allocation_calls", 0) > 0
        assert counters.get("yield/estimates", 0) > 0
        assert counters.get("routing/routes", 0) > 0
        assert counters.get("design/architectures", 0) > 0

    def test_serial_sweep_counter_deltas_are_deterministic(self):
        deltas = []
        for _ in range(2):
            _cold_process()
            baseline = global_metrics().snapshot()
            run_sweep(["sym6_145"], jobs=1, settings=FAST_SETTINGS,
                      configs=FAST_CONFIGS)
            current = global_metrics().snapshot()
            deltas.append(diff_snapshots(current, baseline)["counters"])
        assert deltas[0] == deltas[1]

    def test_in_process_sweep_does_not_double_count(self):
        """jobs=1 tasks run in the parent's own registry; their deltas
        must not be merged back on top (every estimate counted once)."""
        _cold_process()
        baseline = global_metrics().counter("yield/estimates")
        results = run_sweep(["sym6_145"], jobs=1, settings=FAST_SETTINGS,
                            configs=FAST_CONFIGS)
        estimates = global_metrics().counter("yield/estimates") - baseline
        assert estimates == len(results["sym6_145"].points)
