"""Round-trip tests for the ``repro-design cache migrate`` subcommand."""

import pytest

from repro.cli import main
from repro.persistence import SQLITE_MAGIC, read_cache_entries

FAST = ["--trials", "200", "--local-trials", "60"]


def _entries_by_key(path, file_format, version, key_of):
    entries = read_cache_entries(path, file_format, version)
    return {key_of(record): record for record in entries}


@pytest.fixture()
def design_cache(tmp_path, capsys):
    """A real design-cache store, produced by a fast evaluate run."""
    path = tmp_path / "design_cache.json"
    assert main(["evaluate", "sym6_145", *FAST, "--design-cache", str(path)]) == 0
    capsys.readouterr()
    assert path.exists()
    return path


class TestMigrateRoundTrip:
    def test_design_cache_json_to_sqlite_and_back(self, tmp_path, design_cache, capsys):
        from repro.design.engine import DesignCache

        sqlite = tmp_path / "design.sqlite"
        assert main(["cache", "migrate", str(design_cache), str(sqlite),
                     "--cache-backend", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "design cache" in out
        assert sqlite.read_bytes()[: len(SQLITE_MAGIC)] == SQLITE_MAGIC

        back = tmp_path / "roundtrip.json"
        assert main(["cache", "migrate", str(sqlite), f"json:{back}"]) == 0
        capsys.readouterr()

        original = _entries_by_key(design_cache, DesignCache.FORMAT,
                                   DesignCache.VERSION, DesignCache._record_key)
        roundtrip = _entries_by_key(back, DesignCache.FORMAT,
                                    DesignCache.VERSION, DesignCache._record_key)
        assert original, "source store was empty; the round trip tested nothing"
        assert roundtrip == original

    def test_migrated_store_serves_a_warm_run(self, tmp_path, design_cache, capsys):
        from repro.design import allocation_call_count, reset_allocation_call_count

        sharded = tmp_path / "design-sharded"
        assert main(["cache", "migrate", str(design_cache), str(sharded),
                     "--cache-backend", "sharded"]) == 0
        capsys.readouterr()
        assert sharded.is_dir()

        reset_allocation_call_count()
        assert main(["evaluate", "sym6_145", *FAST,
                     "--design-cache", f"sharded:{sharded}"]) == 0
        capsys.readouterr()
        assert allocation_call_count() == 0, (
            "the migrated store should serve the warm run without a single "
            "Algorithm 3 search"
        )

    def test_routing_cache_detected_and_migrated(self, tmp_path, capsys):
        from repro.mapping.engine import RoutingCache

        source = tmp_path / "routing_cache.json"
        assert main(["evaluate", "sym6_145", *FAST,
                     "--routing-cache", str(source)]) == 0
        capsys.readouterr()

        dest = tmp_path / "routing.sqlite"
        assert main(["cache", "migrate", str(source), str(dest),
                     "--cache-backend", "sqlite"]) == 0
        out = capsys.readouterr().out
        assert "routing cache" in out

        original = _entries_by_key(source, RoutingCache.FORMAT,
                                   RoutingCache.VERSION, RoutingCache._record_key)
        migrated = _entries_by_key(f"sqlite:{dest}", RoutingCache.FORMAT,
                                   RoutingCache.VERSION, RoutingCache._record_key)
        assert original
        assert migrated == original

    def test_sweep_checkpoint_detected_and_migrated(self, tmp_path, capsys):
        source = tmp_path / "ckpt.json"
        assert main(["sweep", "sym6_145", *FAST, "--configs", "eff-layout-only",
                     "--checkpoint", f"json:{source}"]) == 0
        capsys.readouterr()

        dest = tmp_path / "ckpt-sharded"
        assert main(["cache", "migrate", str(source), str(dest),
                     "--cache-backend", "sharded"]) == 0
        out = capsys.readouterr().out
        assert "sweep checkpoint" in out
        assert dest.is_dir()


class TestMigrateErrors:
    def test_missing_source_is_an_error(self, tmp_path, capsys):
        assert main(["cache", "migrate", str(tmp_path / "nope.json"),
                     str(tmp_path / "out.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unrecognized_store_is_an_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "something-else", "version": 1, "entries": []}')
        assert main(["cache", "migrate", str(bogus),
                     str(tmp_path / "out.json")]) == 2
        assert "not a recognized cache store" in capsys.readouterr().err
