"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_subcommand(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_design_defaults(self):
        args = build_parser().parse_args(["design", "sym6_145"])
        assert args.buses is None
        assert args.trials == 10_000

    def test_evaluate_accepts_multiple_benchmarks(self):
        args = build_parser().parse_args(["evaluate", "sym6_145", "qft_16", "--plot"])
        assert args.benchmarks == ["sym6_145", "qft_16"]
        assert args.plot

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "sym6_145"])
        assert args.command == "sweep"
        assert args.jobs == 1
        assert args.trials == 10_000
        assert args.configs is None

    def test_sweep_accepts_jobs_and_configs(self):
        args = build_parser().parse_args(
            ["sweep", "sym6_145", "qft_16", "--jobs", "4", "--configs", "eff-full"]
        )
        assert args.benchmarks == ["sym6_145", "qft_16"]
        assert args.jobs == 4
        assert args.configs == ["eff-full"]

    def test_sweep_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "sym6_145", "--configs", "nope"])

    def test_router_knob_defaults(self):
        for command in ("evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145"])
            assert args.router_passes == 3
            assert args.router_restarts == 1

    def test_router_knobs_accepted(self):
        args = build_parser().parse_args(
            ["sweep", "sym6_145", "--router-passes", "3", "--router-restarts", "4"]
        )
        assert args.router_passes == 3
        assert args.router_restarts == 4

    def test_even_router_passes_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "sym6_145", "--trials", "50", "--router-passes", "2"])

    def test_design_knob_defaults(self):
        for command in ("evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145"])
            assert args.allocation_strategy == "bfs-greedy"
            assert args.design_cache is None
            assert args.local_trials == 2000

    def test_design_knobs_accepted(self):
        args = build_parser().parse_args(
            ["sweep", "sym6_145", "--allocation-strategy", "analytic-guided",
             "--design-cache", "plans.json", "--local-trials", "500"]
        )
        assert args.allocation_strategy == "analytic-guided"
        assert args.design_cache == "plans.json"
        assert args.local_trials == 500

    def test_unknown_allocation_strategy_rejected(self):
        for command in ("evaluate", "sweep"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    [command, "sym6_145", "--allocation-strategy", "nope"]
                )

    def test_all_commands_accept_both_strategy_spellings(self):
        for command in ("design", "evaluate", "sweep"):
            for flag in ("--allocation-strategy", "--alloc-strategy"):
                args = build_parser().parse_args(
                    [command, "sym6_145", flag, "analytic-guided"]
                )
                assert args.allocation_strategy == "analytic-guided"

    def test_screening_flag_defaults_on(self):
        for command in ("design", "evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145"])
            assert args.no_screening is False

    def test_no_screening_accepted_everywhere(self):
        for command in ("design", "evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145", "--no-screening"])
            assert args.no_screening is True

    def test_cache_stats_flag(self):
        for command in ("evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145", "--cache-stats"])
            assert args.cache_stats is True

    def test_cache_backend_defaults_to_auto(self):
        for command in ("evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145"])
            assert args.cache_backend == "auto"

    def test_cache_backend_choices(self):
        for backend in ("json", "sharded", "sqlite"):
            args = build_parser().parse_args(
                ["sweep", "sym6_145", "--cache-backend", backend]
            )
            assert args.cache_backend == backend
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "sym6_145", "--cache-backend", "nope"]
            )

    def test_sweep_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["sweep", "sym6_145", "--checkpoint", "ck.sqlite", "--resume",
             "--output", "report.json"]
        )
        assert args.checkpoint == "ck.sqlite"
        assert args.resume is True
        assert args.output == "report.json"

    def test_sweep_checkpoint_defaults(self):
        args = build_parser().parse_args(["sweep", "sym6_145"])
        assert args.checkpoint is None
        assert args.resume is False
        assert args.output is None


class TestCommands:
    def test_list_outputs_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "sym6_145" in output
        assert "qft_16" in output
        assert "synthetic substitute" in output

    def test_profile_outputs_matrix_and_degree_list(self, capsys):
        assert main(["profile", "sym6_145"]) == 0
        output = capsys.readouterr().out
        assert "coupling strength matrix" in output
        assert "coupling degree list" in output

    def test_design_with_explicit_bus_count(self, capsys):
        assert main(["design", "sym6_145", "--buses", "1", "--trials", "500"]) == 0
        output = capsys.readouterr().out
        assert "estimated yield" in output
        assert "Architecture:" in output

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["profile", "nope"])

    def test_sweep_prints_table(self, capsys):
        assert main(
            ["sweep", "sym6_145", "--jobs", "2", "--trials", "300",
             "--configs", "eff-layout-only"]
        ) == 0
        output = capsys.readouterr().out
        assert "sym6_145" in output
        assert "eff-layout-only" in output

    def test_sweep_unknown_benchmark_raises_before_forking(self):
        with pytest.raises(KeyError):
            main(["sweep", "nope", "--jobs", "2"])


class TestDesignCacheRoundTrip:
    """CLI round trips of --design-cache / --allocation-strategy."""

    FAST = ["--trials", "200", "--local-trials", "60"]

    def test_evaluate_warm_cache_is_byte_identical_without_searches(
        self, tmp_path, capsys
    ):
        from repro.design import allocation_call_count, reset_allocation_call_count

        cache = str(tmp_path / "design_cache.json")
        assert main(["evaluate", "sym6_145", *self.FAST, "--design-cache", cache]) == 0
        cold = capsys.readouterr().out
        assert (tmp_path / "design_cache.json").exists()

        reset_allocation_call_count()
        assert main(["evaluate", "sym6_145", *self.FAST, "--design-cache", cache]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert allocation_call_count() == 0

    def test_sweep_warm_cache_output_identical_across_jobs(self, tmp_path, capsys):
        """The acceptance grid at the CLI surface: with a warm cache and the
        analytic-guided ablation, sweep output is byte-identical for
        --jobs 1 vs --jobs 4."""
        cache = str(tmp_path / "design_cache.json")
        ablation = ["sweep", "sym6_145", *self.FAST, "--configs", "eff-full",
                    "--design-cache", cache, "--allocation-strategy",
                    "analytic-guided"]
        assert main([*ablation, "--jobs", "1"]) == 0
        warm_serial = capsys.readouterr().out
        assert (tmp_path / "design_cache.json").exists()
        assert main([*ablation, "--jobs", "4"]) == 0
        warm_parallel = capsys.readouterr().out
        assert warm_parallel == warm_serial

    def test_ablation_changes_sweep_output(self, tmp_path, capsys):
        assert main(["sweep", "sym6_145", *self.FAST, "--configs", "eff-full"]) == 0
        base = capsys.readouterr().out
        assert main(["sweep", "sym6_145", *self.FAST, "--configs", "eff-full",
                     "--allocation-strategy", "analytic-guided"]) == 0
        ablation = capsys.readouterr().out
        assert ablation != base


class TestCacheBackendFlag:
    """``--cache-backend`` routes unprefixed cache paths to a backend."""

    FAST = ["--trials", "200", "--local-trials", "60"]

    def test_store_path_prefixing(self):
        from repro.cli import _store_path

        assert _store_path(None, "sqlite") is None
        assert _store_path("cache.json", "auto") == "cache.json"
        assert _store_path("cache", "sharded") == "sharded:cache"
        # An explicit scheme on the path always wins over the flag.
        assert _store_path("json:cache", "sqlite") == "json:cache"

    def test_evaluate_writes_sqlite_design_cache(self, tmp_path, capsys):
        from repro.persistence import SQLITE_MAGIC

        cache = tmp_path / "design-cache"
        assert main(["evaluate", "sym6_145", *self.FAST,
                     "--design-cache", str(cache),
                     "--cache-backend", "sqlite"]) == 0
        capsys.readouterr()
        assert cache.read_bytes()[: len(SQLITE_MAGIC)] == SQLITE_MAGIC

    def test_evaluate_writes_sharded_design_cache(self, tmp_path, capsys):
        cache = tmp_path / "design-cache"
        assert main(["evaluate", "sym6_145", *self.FAST,
                     "--design-cache", str(cache),
                     "--cache-backend", "sharded"]) == 0
        capsys.readouterr()
        assert cache.is_dir()
        assert (cache / "shards.json").exists()

    def test_resume_without_checkpoint_is_an_error(self, capsys):
        assert main(["sweep", "sym6_145", *self.FAST, "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err


class TestScreeningAndStatsFlags:
    FAST = ["--trials", "200", "--local-trials", "60"]

    @staticmethod
    def _drop_process_caches():
        """Drop every cache keyed without the screening flag, so the
        unscreened run actually recomputes instead of replaying the
        screened run's memoized plans."""
        from repro.design import reset_shared_caches
        from repro.evaluation import parallel

        parallel.reset_worker_state()
        reset_shared_caches()

    def test_no_screening_sweep_output_is_byte_identical(self, capsys):
        """The acceptance criterion at the CLI surface: screening on vs
        off produces byte-identical sweep output."""
        from repro.design import allocation_call_count, reset_allocation_call_count

        base = ["sweep", "sym6_145", *self.FAST, "--configs", "eff-full"]
        self._drop_process_caches()
        assert main(base) == 0
        screened = capsys.readouterr().out
        self._drop_process_caches()
        reset_allocation_call_count()
        assert main([*base, "--no-screening"]) == 0
        unscreened = capsys.readouterr().out
        assert allocation_call_count() > 0
        assert unscreened == screened

    def test_evaluate_cache_stats_report(self, capsys):
        assert main(["evaluate", "sym6_145", *self.FAST, "--cache-stats"]) == 0
        output = capsys.readouterr().out
        assert "cache stats:" in output
        assert "design/frequency" in output
        assert "routing" in output
        assert "hit-rate" in output

    def test_sweep_cache_stats_report_serial_and_sharded(self, capsys):
        serial = ["sweep", "sym6_145", *self.FAST, "--configs", "eff-layout-only",
                  "--cache-stats"]
        assert main(serial) == 0
        output = capsys.readouterr().out
        assert "cache stats:" in output
        assert main([*serial, "--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        assert "cache stats:" in sharded
        assert "not aggregated" in sharded
