"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_subcommand(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_design_defaults(self):
        args = build_parser().parse_args(["design", "sym6_145"])
        assert args.buses is None
        assert args.trials == 10_000

    def test_evaluate_accepts_multiple_benchmarks(self):
        args = build_parser().parse_args(["evaluate", "sym6_145", "qft_16", "--plot"])
        assert args.benchmarks == ["sym6_145", "qft_16"]
        assert args.plot

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "sym6_145"])
        assert args.command == "sweep"
        assert args.jobs == 1
        assert args.trials == 10_000
        assert args.configs is None

    def test_sweep_accepts_jobs_and_configs(self):
        args = build_parser().parse_args(
            ["sweep", "sym6_145", "qft_16", "--jobs", "4", "--configs", "eff-full"]
        )
        assert args.benchmarks == ["sym6_145", "qft_16"]
        assert args.jobs == 4
        assert args.configs == ["eff-full"]

    def test_sweep_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "sym6_145", "--configs", "nope"])

    def test_router_knob_defaults(self):
        for command in ("evaluate", "sweep"):
            args = build_parser().parse_args([command, "sym6_145"])
            assert args.router_passes == 1
            assert args.router_restarts == 1

    def test_router_knobs_accepted(self):
        args = build_parser().parse_args(
            ["sweep", "sym6_145", "--router-passes", "3", "--router-restarts", "4"]
        )
        assert args.router_passes == 3
        assert args.router_restarts == 4

    def test_even_router_passes_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "sym6_145", "--trials", "50", "--router-passes", "2"])


class TestCommands:
    def test_list_outputs_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "sym6_145" in output
        assert "qft_16" in output
        assert "synthetic substitute" in output

    def test_profile_outputs_matrix_and_degree_list(self, capsys):
        assert main(["profile", "sym6_145"]) == 0
        output = capsys.readouterr().out
        assert "coupling strength matrix" in output
        assert "coupling degree list" in output

    def test_design_with_explicit_bus_count(self, capsys):
        assert main(["design", "sym6_145", "--buses", "1", "--trials", "500"]) == 0
        output = capsys.readouterr().out
        assert "estimated yield" in output
        assert "Architecture:" in output

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["profile", "nope"])

    def test_sweep_prints_table(self, capsys):
        assert main(
            ["sweep", "sym6_145", "--jobs", "2", "--trials", "300",
             "--configs", "eff-layout-only"]
        ) == 0
        output = capsys.readouterr().out
        assert "sym6_145" in output
        assert "eff-layout-only" in output

    def test_sweep_unknown_benchmark_raises_before_forking(self):
        with pytest.raises(KeyError):
            main(["sweep", "nope", "--jobs", "2"])
