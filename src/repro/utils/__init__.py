"""Small shared utilities (deterministic RNG helpers, validation)."""

from repro.utils.rng import deterministic_rng, seed_for

__all__ = ["deterministic_rng", "seed_for"]
