"""Deterministic random number generation helpers.

Everything in this library that uses randomness (benchmark synthesis,
Monte Carlo yield simulation, random bus selection) is seeded explicitly
so that test runs and benchmark reproductions are repeatable.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seed_for(*parts: object) -> int:
    """Derive a stable 32-bit seed from an arbitrary tuple of labels.

    Python's built-in ``hash`` is salted per process, so we hash the
    string representation of the parts with SHA-256 instead.
    """
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def deterministic_rng(*parts: object) -> np.random.Generator:
    """A numpy Generator whose seed is derived from the given labels."""
    return np.random.default_rng(seed_for(*parts))
