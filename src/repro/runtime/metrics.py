"""Cross-layer structured metrics: counters and timers for every engine.

One process-local :class:`MetricsRegistry` (reached via
:func:`global_metrics`) collects counters (cache hits per stage,
screening prune totals, swap counts, Algorithm 3 Monte Carlo calls) and
wall-time accumulators from the yield, routing, and design layers.

Three operations make the registry safe to thread through parallel
sweeps without touching the byte-identity contract:

* :meth:`MetricsRegistry.snapshot` — a plain-dict copy of the current
  state, picklable across process boundaries;
* :func:`diff_snapshots` — the delta a worker task produced, computed
  against a snapshot taken when the task started;
* :meth:`MetricsRegistry.merge` / :func:`merge_snapshots` — pure
  key-wise sums, so merging worker deltas into the parent is
  associative and order-independent: any task-completion order yields
  the same merged totals.

The registry observes; it never influences computation, so metrics can
never perturb sweep output.

``--metrics-out`` emits the registry as a versioned JSON envelope
(``format: repro-metrics, version: 1``).  :func:`validate_metrics`
checks a report against that schema without third-party dependencies;
CI runs it over the sweep-smoke artifact.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

METRICS_FORMAT = "repro-metrics"
METRICS_VERSION = 1

#: Counter suffix pair from which ``derived`` hit rates are computed.
_HIT_SUFFIX = "/hits"
_MISS_SUFFIX = "/misses"

Snapshot = Dict[str, Dict[str, object]]


class MetricsRegistry:
    """Thread-safe counters plus ``{count, total_s}`` wall-time timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # -- recording ---------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        amount = int(amount)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def increment_many(self, amounts: Dict[str, int]) -> None:
        """Add several counters under one lock acquisition.

        The hot-path form of :meth:`increment`: per-ranking call sites
        (e.g. the screening instrumentation) record their whole counter
        group in a single locked update instead of one lock round trip
        per counter.
        """
        with self._lock:
            counters = self._counters
            for name, amount in amounts.items():
                counters[name] = counters.get(name, 0) + int(amount)

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation of ``seconds`` wall time under ``name``."""
        seconds = float(seconds)
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                entry = {"count": 0, "total_s": 0.0}
                self._timers[name] = entry
            entry["count"] += 1
            entry["total_s"] += seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and :meth:`observe` it under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Snapshot:
        """A picklable copy of the full registry state."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {name: dict(entry) for name, entry in self._timers.items()},
            }

    # -- combining ---------------------------------------------------------

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Pure key-wise addition: merging deltas in any order produces the
        same totals, which is what makes worker→parent aggregation
        deterministic for any ``--jobs N`` scheduling.
        """
        counters = snapshot.get("counters", {})
        timers = snapshot.get("timers", {})
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(amount)
            for name, observed in timers.items():
                entry = self._timers.get(name)
                if entry is None:
                    entry = {"count": 0, "total_s": 0.0}
                    self._timers[name] = entry
                entry["count"] += int(observed["count"])
                entry["total_s"] += float(observed["total_s"])

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()


_GLOBAL = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry every engine records into."""
    return _GLOBAL


def empty_snapshot() -> Snapshot:
    return {"counters": {}, "timers": {}}


def diff_snapshots(current: Snapshot, baseline: Snapshot) -> Snapshot:
    """The work recorded between ``baseline`` and ``current``.

    Counters/timers absent from ``baseline`` count from zero; entries
    that did not change are dropped, so deltas stay small on the wire.
    """
    base_counters = baseline.get("counters", {})
    base_timers = baseline.get("timers", {})
    counters = {}
    for name, amount in current.get("counters", {}).items():
        delta = int(amount) - int(base_counters.get(name, 0))
        if delta:
            counters[name] = delta
    timers = {}
    for name, observed in current.get("timers", {}).items():
        before = base_timers.get(name, {"count": 0, "total_s": 0.0})
        count = int(observed["count"]) - int(before["count"])
        total_s = float(observed["total_s"]) - float(before["total_s"])
        if count or total_s:
            timers[name] = {"count": count, "total_s": total_s}
    return {"counters": counters, "timers": timers}


def merge_snapshots(*snapshots: Snapshot) -> Snapshot:
    """Key-wise sum of snapshots; associative and order-independent."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


# -- the versioned JSON report (``--metrics-out``) -------------------------


def metrics_report(
    snapshot: Snapshot,
    *,
    command: Optional[str] = None,
    config_digest: Optional[str] = None,
    jobs: Optional[int] = None,
) -> Dict[str, object]:
    """Wrap a snapshot in the versioned ``repro-metrics`` envelope."""
    counters = {name: int(v) for name, v in sorted(snapshot.get("counters", {}).items())}
    timers = {
        name: {"count": int(v["count"]), "total_s": float(v["total_s"])}
        for name, v in sorted(snapshot.get("timers", {}).items())
    }
    return {
        "format": METRICS_FORMAT,
        "version": METRICS_VERSION,
        "command": command,
        "config_digest": config_digest,
        "jobs": jobs,
        "counters": counters,
        "timers": timers,
        "derived": _derived_metrics(counters),
    }


def _derived_metrics(counters: Mapping[str, int]) -> Dict[str, float]:
    """Ratios recomputed from counters so they stay consistent post-merge."""
    derived: Dict[str, float] = {}
    for name, hits in counters.items():
        if not name.endswith(_HIT_SUFFIX):
            continue
        base = name[: -len(_HIT_SUFFIX)]
        misses = counters.get(base + _MISS_SUFFIX, 0)
        total = hits + misses
        if total:
            derived[base + "/hit_rate"] = hits / total
    candidates = counters.get("screening/candidates", 0)
    if candidates:
        derived["screening/prune_fraction"] = (
            counters.get("screening/pruned", 0) / candidates
        )
    routes = counters.get("routing/routes", 0)
    if routes:
        derived["routing/swaps_per_route"] = counters.get("routing/swaps", 0) / routes
    tasks = counters.get("supervisor/tasks", 0)
    if tasks:
        derived["supervisor/retries_per_task"] = (
            counters.get("supervisor/retries", 0) / tasks
        )
        derived["supervisor/quarantine_fraction"] = (
            counters.get("supervisor/quarantined_tasks", 0) / tasks
        )
    return dict(sorted(derived.items()))


_REPORT_KEYS = {
    "format", "version", "command", "config_digest", "jobs",
    "counters", "timers", "derived",
}
_REQUIRED_KEYS = {"format", "version", "counters", "timers", "derived"}


def validate_metrics(report: object) -> Dict[str, object]:
    """Validate a ``--metrics-out`` report against the v1 schema.

    Hand-rolled (no jsonschema dependency); raises :class:`ValueError`
    naming the offending field, and returns the report on success.
    """
    if not isinstance(report, dict):
        raise ValueError(f"metrics report must be an object, got {type(report).__name__}")
    missing = _REQUIRED_KEYS - report.keys()
    if missing:
        raise ValueError(f"metrics report missing keys: {sorted(missing)}")
    unknown = report.keys() - _REPORT_KEYS
    if unknown:
        raise ValueError(f"metrics report has unknown keys: {sorted(unknown)}")
    if report["format"] != METRICS_FORMAT:
        raise ValueError(f"bad metrics format: {report['format']!r}")
    if report["version"] != METRICS_VERSION:
        raise ValueError(f"unsupported metrics version: {report['version']!r}")
    for key in ("command", "config_digest"):
        value = report.get(key)
        if value is not None and not isinstance(value, str):
            raise ValueError(f"metrics {key!r} must be a string or null")
    jobs = report.get("jobs")
    if jobs is not None and (not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1):
        raise ValueError(f"metrics 'jobs' must be a positive integer or null, got {jobs!r}")
    counters = report["counters"]
    if not isinstance(counters, dict):
        raise ValueError("metrics 'counters' must be an object")
    for name, value in counters.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"counter name must be a non-empty string, got {name!r}")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"counter {name!r} must be a non-negative integer, got {value!r}")
    timers = report["timers"]
    if not isinstance(timers, dict):
        raise ValueError("metrics 'timers' must be an object")
    for name, entry in timers.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"timer name must be a non-empty string, got {name!r}")
        if not isinstance(entry, dict) or entry.keys() != {"count", "total_s"}:
            raise ValueError(f"timer {name!r} must be an object with keys count, total_s")
        count = entry["count"]
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            raise ValueError(f"timer {name!r} count must be a non-negative integer")
        total_s = entry["total_s"]
        if not isinstance(total_s, (int, float)) or isinstance(total_s, bool) or total_s < 0:
            raise ValueError(f"timer {name!r} total_s must be a non-negative number")
    derived = report["derived"]
    if not isinstance(derived, dict):
        raise ValueError("metrics 'derived' must be an object")
    for name, value in derived.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"derived name must be a non-empty string, got {name!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"derived {name!r} must be a number, got {value!r}")
    return report


def validate_metrics_file(path: Union[str, Path]) -> Dict[str, object]:
    """Load ``path`` as JSON and :func:`validate_metrics` it."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return validate_metrics(report)


def write_metrics(path: Union[str, Path], report: Dict[str, object]) -> None:
    """Validate and atomically write a report as deterministic JSON."""
    from repro.persistence import atomic_write_text

    validate_metrics(report)
    atomic_write_text(Path(path), json.dumps(report, indent=2, sort_keys=True) + "\n")
