"""The runtime session: one owner for warm engines, caches, and stores.

A :class:`Session` binds one frozen :class:`~repro.runtime.config.RuntimeConfig`
to lazily constructed shared state — the :class:`~repro.mapping.engine.RoutingEngine`
(with its persistent :class:`~repro.mapping.engine.RoutingCache`), the
:class:`~repro.design.engine.DesignEngine` (with its persistent
:class:`~repro.design.engine.DesignCache`), the sweep checkpoint store,
and the process-wide ``YieldSimulator`` noise-tensor caches those engines
share — and exposes digest-keyed entry points (:meth:`Session.design`,
:meth:`Session.route`, :meth:`Session.evaluate`, :meth:`Session.sweep`).

Two properties make this the surface a long-lived serving tier can mount:

* **One session per config per process.** Sessions register themselves
  in a process-level registry keyed by ``config.digest()`` (store paths
  canonicalized first, so relative/symlink aliases of one cache file
  share one warm engine).  :func:`session_for` is the get-or-create
  entry used by the CLI and by every sweep worker.
* **Concurrent identical requests dedupe.** Entry points serialize
  engine access (the engines are not thread-safe) and track in-flight
  request keys: a thread asking for work another thread is already
  computing waits for it, then serves the answer from the now-warm
  engine caches — one engine call total, counted under the
  ``session/deduped_requests`` metric.

Everything a session returns is byte-identical to what fresh per-call
engines would produce: engines are transparent caches over pure
deterministic functions, and the session adds no state of its own.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

from repro.benchmarks.library import get_benchmark
from repro.circuit.circuit import QuantumCircuit
from repro.design.engine import DesignEngine, DesignOptions, circuit_design_key
from repro.evaluation.checkpoint import SweepCheckpoint
from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import (
    DEFAULT_CONFIGS,
    EvaluationSettings,
    ExperimentResult,
    design_engine_for,
    evaluate_benchmark,
)
from repro.hardware.architecture import Architecture
from repro.mapping.engine import (
    RoutingEngine,
    architecture_cache_key,
    circuit_cache_key,
    profile_cache_key,
)
from repro.profiling.profiler import CircuitProfile
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import MetricsRegistry, global_metrics

T = TypeVar("T")


class Session:
    """Warm engines, caches, and stores for one runtime configuration.

    Everything is constructed lazily: creating a session is cheap, and a
    fully-warm resumed sweep that never routes never builds a routing
    engine.  Construction also registers the session in the process
    registry under ``config.digest()`` (latest wins), so in-process
    sweep tasks find the same warm engines the CLI command used.
    """

    def __init__(self, config: Optional[RuntimeConfig] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.config = config or RuntimeConfig()
        self.metrics = metrics or global_metrics()
        self._settings: Optional[EvaluationSettings] = None
        self._lock = threading.RLock()  # serializes engine compute
        self._flight_lock = threading.Lock()
        self._inflight: Dict[Tuple, threading.Event] = {}
        self._routing_engine: Optional[RoutingEngine] = None
        self._design_engine: Optional[DesignEngine] = None
        self._checkpoint: Optional[SweepCheckpoint] = None
        # Persisted-entry watermarks: merge_save only when an engine
        # computed something the store has not seen from this session.
        self._merged_routing_misses = 0
        self._merged_design_misses = 0
        # Screening-stats watermark: the process-wide screening counters
        # at construction time, so :meth:`screening_stats` reports only
        # this session's work — no stale counts leak between sessions.
        from repro.collision import screening_stats as _screening_stats

        self._screening_baseline = _screening_stats()
        _register(self)

    # -- lazily constructed shared state -----------------------------------

    @property
    def settings(self) -> EvaluationSettings:
        """The evaluation-layer view of this session's config (cached)."""
        if self._settings is None:
            self._settings = self.config.evaluation_settings()
        return self._settings

    @property
    def routing_engine(self) -> RoutingEngine:
        """The shared routing engine, warm-loaded from the persistent cache."""
        with self._lock:
            if self._routing_engine is None:
                engine = RoutingEngine(self.config.routing)
                if self.config.routing_cache_path:
                    engine.cache.load(self.config.routing_cache_path, missing_ok=True)
                self._routing_engine = engine
        return self._routing_engine

    @property
    def design_engine(self) -> DesignEngine:
        """The shared design engine, warm-loaded from the persistent cache."""
        with self._lock:
            if self._design_engine is None:
                self._design_engine = design_engine_for(self.settings)
        return self._design_engine

    @property
    def checkpoint(self) -> Optional[SweepCheckpoint]:
        """The sweep checkpoint store, snapshot-loaded when resuming."""
        if not self.config.checkpoint_path:
            return None
        with self._lock:
            if self._checkpoint is None:
                self._checkpoint = SweepCheckpoint(self.config.checkpoint_path)
                if self.config.resume:
                    self._checkpoint.load()
        return self._checkpoint

    @property
    def has_routing_engine(self) -> bool:
        """Whether the routing engine was ever constructed (tests/metrics)."""
        return self._routing_engine is not None

    @property
    def has_design_engine(self) -> bool:
        """Whether the design engine was ever constructed (tests/metrics)."""
        return self._design_engine is not None

    # -- request dedup ------------------------------------------------------

    def _deduped(self, key: Tuple, compute: Callable[[], T]) -> T:
        """Run ``compute`` unless an identical request is already in flight.

        The owning thread computes under the session lock; followers
        wait for it, then recompute under the lock themselves — by then
        the engines are warm, so the follower's call is a cache hit and
        the expensive work ran exactly once.
        """
        while True:
            with self._flight_lock:
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    owner = True
                else:
                    owner = False
            if owner:
                try:
                    with self._lock:
                        return compute()
                finally:
                    with self._flight_lock:
                        del self._inflight[key]
                    event.set()
            self.metrics.increment("session/deduped_requests")
            event.wait()

    # -- digest-keyed entry points ------------------------------------------

    def design_options(self, **overrides) -> DesignOptions:
        """Design-flow options derived from this session's config."""
        base = dict(
            sigma_ghz=self.config.sigma_ghz,
            local_trials=self.config.frequency_local_trials,
            allocation_strategy=self.config.allocation_strategy,
            frequency_screening=self.config.screening,
        )
        base.update(overrides)
        return DesignOptions(**base)

    def design(
        self,
        circuit: QuantumCircuit,
        max_four_qubit_buses: int = 0,
        options: Optional[DesignOptions] = None,
        name: Optional[str] = None,
    ) -> Architecture:
        """Design one architecture (see :meth:`DesignEngine.design`)."""
        options = options or self.design_options()
        key = ("design", circuit_design_key(circuit), max_four_qubit_buses,
               _options_key(options), name)
        return self._deduped(
            key,
            lambda: self.design_engine.design(
                circuit, max_four_qubit_buses, options, name=name
            ),
        )

    def design_series(
        self,
        circuit: QuantumCircuit,
        max_buses: Optional[int] = None,
        options: Optional[DesignOptions] = None,
    ) -> List[Architecture]:
        """Design a bus-count series (see :meth:`DesignEngine.design_series`)."""
        options = options or self.design_options()
        key = ("design_series", circuit_design_key(circuit), max_buses,
               _options_key(options))
        return self._deduped(
            key,
            lambda: self.design_engine.design_series(circuit, max_buses, options),
        )

    def route(
        self,
        circuit: QuantumCircuit,
        architecture: Architecture,
        profile: Optional[CircuitProfile] = None,
        keep_routed_circuit: Optional[bool] = None,
    ):
        """Route a circuit (see :meth:`RoutingEngine.route`)."""
        if keep_routed_circuit is None:
            keep_routed_circuit = self.config.keep_routed_circuits
        key = ("route", circuit_cache_key(circuit),
               architecture_cache_key(architecture),
               profile_cache_key(profile), keep_routed_circuit)
        return self._deduped(
            key,
            lambda: self.routing_engine.route(
                circuit, architecture, profile=profile,
                keep_routed_circuit=keep_routed_circuit,
            ),
        )

    def evaluate(
        self,
        benchmark,
        configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
    ) -> ExperimentResult:
        """Evaluate one benchmark (name or circuit) on this session's engines."""
        circuit = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        configs = tuple(configs)
        key = ("evaluate", circuit_design_key(circuit),
               tuple(config.value for config in configs))
        return self._deduped(
            key,
            lambda: evaluate_benchmark(
                circuit, configs, settings=self.settings,
                engine=self.routing_engine, design_engine=self.design_engine,
            ),
        )

    def sweep(
        self,
        benchmarks: Iterable[str],
        configs=None,
        jobs: int = 1,
    ):
        """Run the parallel evaluation sweep on this session's config.

        With ``jobs=1`` the sweep tasks run in this process and find this
        session through the registry; with ``jobs>1`` workers rebuild an
        equivalent session from the pickled settings (same digest) and
        their metrics deltas merge back into this process's registry.
        """
        from repro.evaluation.parallel import SweepExecutor

        executor = (
            SweepExecutor(settings=self.settings, jobs=jobs)
            if configs is None
            else SweepExecutor(settings=self.settings, configs=configs, jobs=jobs)
        )
        return executor.run(benchmarks)

    # -- persistence --------------------------------------------------------

    def persist_routing(self) -> Optional[int]:
        """Merge newly computed routings into the persistent store, if any.

        Returns the store's entry count after the merge, or None when
        there is no store, no engine, or nothing new since the last merge
        (each lookup miss is a subsequent ``put``, so the miss count is a
        watermark of entries the store may not have).
        """
        path = self.config.routing_cache_path
        with self._lock:
            engine = self._routing_engine
            if not path or engine is None:
                return None
            if engine.cache.misses <= self._merged_routing_misses:
                return None
            self._merged_routing_misses = engine.cache.misses
            return engine.cache.merge_save(path)

    def persist_design(self) -> Optional[int]:
        """Merge newly computed frequency plans into the persistent store."""
        path = self.config.design_cache_path
        with self._lock:
            engine = self._design_engine
            if not path or engine is None:
                return None
            if engine.frequency_cache.misses <= self._merged_design_misses:
                return None
            self._merged_design_misses = engine.frequency_cache.misses
            return engine.frequency_cache.merge_save(path)

    def persist(self) -> Dict[str, Optional[int]]:
        """Persist both engine caches; a dict of store entry counts."""
        return {"routing": self.persist_routing(), "design": self.persist_design()}

    def record_task_failure(self, failure: Dict[str, object]) -> bool:
        """Record a supervised sweep's quarantined task in the checkpoint.

        ``failure`` is the supervisor's structured failure record (task
        kind, content key, identity, per-attempt reasons).  Returns
        False when this session has no checkpoint store to record into
        — the supervisor then only reports the failure in memory.
        """
        checkpoint = self.checkpoint
        if checkpoint is None:
            return False
        checkpoint.record_failure(dict(failure))
        return True

    # -- observability ------------------------------------------------------

    def screening_stats(self) -> Dict[str, object]:
        """This session's screening work: counts and phase-ns deltas.

        The process-wide screening counters are monotone; the delta
        against the construction-time watermark is exactly what this
        session (and anything sharing the process since) screened.  If
        :func:`repro.collision.reset_screening_stats` zeroed the globals
        after this session was built, the raw counts are below the
        watermark — the clamp then reports the post-reset counts rather
        than negative values.
        """
        from repro.collision import screening_stats as _screening_stats

        current = _screening_stats()
        baseline = self._screening_baseline
        stats: Dict[str, object] = {}
        for key, value in current.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                before = baseline.get(key, 0)
                delta = value - before
                stats[key] = delta if delta >= 0 else value
            else:
                stats[key] = value  # e.g. the active backend name
        return stats

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-cache stats dicts for every engine this session constructed."""
        stats: Dict[str, Dict[str, int]] = {}
        with self._lock:
            if self._routing_engine is not None:
                stats["routing"] = self._routing_engine.cache.stats()
            if self._design_engine is not None:
                for stage, stage_stats in self._design_engine.stats().items():
                    stats[f"design/{stage}"] = stage_stats
        return stats


def _options_key(options: DesignOptions) -> Tuple:
    """Hashable value identity of design options, for request dedup keys."""
    return (
        options.bus_strategy,
        options.frequency_strategy,
        options.sigma_ghz,
        options.local_trials,
        options.random_bus_seed,
        options.frequency_seed,
        options.frequency_refinement_passes,
        options.allocation_strategy,
        options.frequency_screening,
    )


# ---------------------------------------------------------------------------
# The process-level session registry, keyed by config content digest.
# ---------------------------------------------------------------------------

# Reentrant: session_for holds it across get-or-create, and creating a
# Session registers itself under the same lock.
_REGISTRY_LOCK = threading.RLock()
_PROCESS_SESSIONS: Dict[str, Session] = {}


def _register(session: Session) -> None:
    with _REGISTRY_LOCK:
        _PROCESS_SESSIONS[session.config.digest()] = session


def _resolve_config(config: Optional[RuntimeConfig],
                    settings: Optional[EvaluationSettings]) -> RuntimeConfig:
    if config is not None and settings is not None:
        raise ValueError("pass config or settings, not both")
    if settings is not None:
        return RuntimeConfig.from_settings(settings)
    return config or RuntimeConfig()


def session_for(config: Optional[RuntimeConfig] = None, *,
                settings: Optional[EvaluationSettings] = None) -> Session:
    """The process's session for this config, created on first use.

    Keyed by :meth:`RuntimeConfig.digest`, which canonicalizes store
    paths — so two configs naming the same cache file through different
    relative/symlink spellings share one session and one warm engine.
    """
    config = _resolve_config(config, settings)
    with _REGISTRY_LOCK:
        session = _PROCESS_SESSIONS.get(config.digest())
        if session is not None:
            return session
        return Session(config)


def peek_session(config: Optional[RuntimeConfig] = None, *,
                 settings: Optional[EvaluationSettings] = None) -> Optional[Session]:
    """The existing session for this config, or None (never creates one)."""
    config = _resolve_config(config, settings)
    with _REGISTRY_LOCK:
        return _PROCESS_SESSIONS.get(config.digest())


def process_sessions() -> List[Session]:
    """Every live session in this process's registry."""
    with _REGISTRY_LOCK:
        return list(_PROCESS_SESSIONS.values())


def reset_process_sessions() -> None:
    """Drop every registered session (engines, caches, checkpoints).

    The test-isolation / fork-hygiene hook: after this, the next
    :func:`session_for` call builds cold state from scratch.
    """
    with _REGISTRY_LOCK:
        _PROCESS_SESSIONS.clear()
