"""The frozen runtime configuration: resolved once, digested, carried everywhere.

:class:`RuntimeConfig` is the single object that replaces field-by-field
plumbing of cache paths, backend schemes, and router/screening knobs
through ``EvaluationSettings`` → workers → CLI.  It is:

* **frozen and picklable** — resolved once (from CLI flags and/or a
  ``--runtime-config`` JSON file) and shipped to sweep workers intact;
* **content-digestable** — :meth:`RuntimeConfig.digest` is a SHA-256
  over the canonical JSON payload, with every store path canonicalized
  via :func:`canonical_store_path` first.  Sessions are keyed by this
  digest, so relative/symlink aliases of one cache file resolve to one
  session and one warm engine (the same bug class PR 6 fixed for
  persistence locks);
* **convertible** — :meth:`RuntimeConfig.evaluation_settings` produces
  the evaluation-layer :class:`~repro.evaluation.experiment.EvaluationSettings`
  view, and :meth:`RuntimeConfig.from_settings` converts back, so the
  two layers can never drift apart field-wise.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.evaluation.experiment import DEFAULT_EVALUATION_ROUTING, EvaluationSettings
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ
from repro.mapping.sabre import SabreParameters
from repro.persistence import parse_store_path


def canonical_store_path(path: Optional[str]) -> Optional[str]:
    """Canonicalize a store path, preserving its backend scheme prefix.

    ``cache.json``, ``./cache.json``, and a symlink alias all resolve to
    the same absolute real path; an explicit ``json:`` / ``sharded:`` /
    ``sqlite:`` scheme is split off first and reattached after
    resolution, so backend selection survives canonicalization.
    """
    if path is None:
        return None
    scheme, raw = parse_store_path(path)
    resolved = Path(raw).resolve()
    return f"{scheme}:{resolved}" if scheme else str(resolved)


_PATH_FIELDS = ("routing_cache_path", "design_cache_path", "checkpoint_path")


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything a runtime session needs, resolved once and frozen.

    Field semantics match :class:`~repro.evaluation.experiment.EvaluationSettings`
    one-for-one (see its docstring); this class adds the canonical-JSON
    digest, path canonicalization, and JSON round-tripping that make the
    configuration addressable: two configs with equal digests are served
    by one warm :class:`~repro.runtime.session.Session` per process.
    """

    yield_trials: int = 10_000
    sigma_ghz: float = DEFAULT_SIGMA_GHZ
    yield_seed: int = 7
    frequency_local_trials: int = 2000
    random_bus_seeds: Tuple[int, ...] = (1, 2, 3, 4, 5)
    keep_routed_circuits: bool = False
    routing: SabreParameters = DEFAULT_EVALUATION_ROUTING
    routing_cache_path: Optional[str] = None
    allocation_strategy: str = "bfs-greedy"
    design_cache_path: Optional[str] = None
    screening: bool = True
    checkpoint_path: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "random_bus_seeds", tuple(int(s) for s in self.random_bus_seeds))
        if isinstance(self.routing, Mapping):
            object.__setattr__(self, "routing", SabreParameters(**dict(self.routing)))
        # Reuse the evaluation layer's validation (strategy name, resume
        # requires a checkpoint) so a bad config fails at resolution
        # time, not after workers fork.
        self.evaluation_settings()

    # -- conversions -------------------------------------------------------

    def evaluation_settings(self) -> EvaluationSettings:
        """The evaluation-layer view of this config (exact field mirror)."""
        return EvaluationSettings(**dataclasses.asdict(self) | {"routing": self.routing})

    @classmethod
    def from_settings(cls, settings: EvaluationSettings) -> "RuntimeConfig":
        """Lift an :class:`EvaluationSettings` into the runtime layer."""
        payload = dataclasses.asdict(settings)
        payload["routing"] = settings.routing
        payload["random_bus_seeds"] = tuple(settings.random_bus_seeds)
        return cls(**payload)

    # -- canonical form + digest -------------------------------------------

    def canonical(self) -> "RuntimeConfig":
        """This config with every store path canonicalized."""
        updates = {
            name: canonical_store_path(getattr(self, name))
            for name in _PATH_FIELDS
            if getattr(self, name) is not None
        }
        return dataclasses.replace(self, **updates) if updates else self

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON-serializable form digest() hashes."""
        data = dataclasses.asdict(self)
        data["routing"] = dataclasses.asdict(self.routing)
        data["random_bus_seeds"] = list(self.random_bus_seeds)
        for name in _PATH_FIELDS:
            data[name] = canonical_store_path(data[name])
        return data

    def digest(self) -> str:
        """SHA-256 content digest of the canonical payload.

        Store paths are canonicalized first, so relative/symlink aliases
        of the same cache file digest identically — the process-level
        session registry keys on this.
        """
        encoded = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    # -- JSON round trip ----------------------------------------------------

    def to_json(self) -> str:
        """Deterministic JSON (non-canonicalized paths, as configured)."""
        data = dataclasses.asdict(self)
        data["routing"] = dataclasses.asdict(self.routing)
        data["random_bus_seeds"] = list(self.random_bus_seeds)
        return json.dumps(data, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "RuntimeConfig":
        """Build a config from a JSON-decoded mapping; unknown keys fail."""
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown runtime-config keys: {sorted(unknown)}")
        payload = dict(data)
        if "random_bus_seeds" in payload:
            payload["random_bus_seeds"] = tuple(payload["random_bus_seeds"])
        return cls(**payload)

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "RuntimeConfig":
        """Load a ``--runtime-config`` JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"runtime config {path} must be a JSON object")
        return cls.from_mapping(data)
