"""The runtime layer: one `Session` owning warm engines, caches, and metrics.

Three pieces, layered so every other package can import them without
cycles:

* :mod:`repro.runtime.metrics` — a process-local, mergeable
  :class:`~repro.runtime.metrics.MetricsRegistry` of counters and
  wall-time accumulators.  Stdlib-only, so the yield/routing/design
  engines can import it from anywhere in the stack.
* :mod:`repro.runtime.config` — the frozen, picklable, content-digestable
  :class:`~repro.runtime.config.RuntimeConfig` resolved once from CLI
  flags / config JSON and carried through workers unchanged.
* :mod:`repro.runtime.session` — the :class:`~repro.runtime.session.Session`
  object that lazily constructs and owns the shared engines, caches, and
  persistence stores, and dedupes identical concurrent requests by
  content digest.

Submodules are imported lazily (PEP 562): the engines import
``repro.runtime.metrics`` while *they* are still being imported, so this
``__init__`` must never eagerly pull in :mod:`repro.runtime.session`
(which imports the engines back).
"""

from typing import TYPE_CHECKING

_CONFIG_EXPORTS = frozenset({
    "RuntimeConfig",
    "canonical_store_path",
})
_METRICS_EXPORTS = frozenset({
    "METRICS_FORMAT",
    "METRICS_VERSION",
    "MetricsRegistry",
    "diff_snapshots",
    "empty_snapshot",
    "global_metrics",
    "merge_snapshots",
    "metrics_report",
    "validate_metrics",
    "validate_metrics_file",
    "write_metrics",
})
_SESSION_EXPORTS = frozenset({
    "Session",
    "peek_session",
    "process_sessions",
    "reset_process_sessions",
    "session_for",
})

__all__ = sorted(_CONFIG_EXPORTS | _METRICS_EXPORTS | _SESSION_EXPORTS)


def __getattr__(name: str):
    if name in _METRICS_EXPORTS:
        from repro.runtime import metrics as module
    elif name in _CONFIG_EXPORTS:
        from repro.runtime import config as module
    elif name in _SESSION_EXPORTS:
        from repro.runtime import session as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)


if TYPE_CHECKING:  # pragma: no cover - static-analysis aliases only
    from repro.runtime.config import RuntimeConfig, canonical_store_path
    from repro.runtime.metrics import (
        METRICS_FORMAT,
        METRICS_VERSION,
        MetricsRegistry,
        diff_snapshots,
        empty_snapshot,
        global_metrics,
        merge_snapshots,
        metrics_report,
        validate_metrics,
        validate_metrics_file,
        write_metrics,
    )
    from repro.runtime.session import (
        Session,
        peek_session,
        process_sessions,
        reset_process_sessions,
        session_for,
    )
