"""Minimal OpenQASM 2.0 import/export.

The paper's benchmarks originate from QISKit / RevLib / ScaffCC, all of
which interchange circuits as OpenQASM 2.0.  This module provides enough
of the format to round-trip the circuits this library generates and to
load externally produced QASM files with the standard ``qelib1.inc`` gate
set (no custom ``gate`` definitions, no classical control).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, ONE_QUBIT_GATES, TWO_QUBIT_GATES


class QasmError(ValueError):
    """Raised when a QASM string cannot be parsed."""


_QREG_RE = re.compile(r"^qreg\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<size>\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<size>\d+)\s*\]$")
_ARG_RE = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<index>\d+)\s*\]$")
_GATE_RE = re.compile(
    r"^(?P<gate>[A-Za-z_][A-Za-z0-9_]*)\s*(\((?P<params>[^)]*)\))?\s*(?P<args>.+)$"
)

#: Safe names usable inside QASM parameter expressions.
_EVAL_GLOBALS = {"__builtins__": {}, "pi": math.pi, "sin": math.sin, "cos": math.cos,
                 "sqrt": math.sqrt, "exp": math.exp}

#: Gate-name translations from common QASM aliases into our IR names.
_NAME_ALIASES = {"ccx": "ccx", "cu1": "cp", "p": "u1", "phase": "u1"}


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    if gate.name == "measure":
        (qubit,) = gate.qubits
        return f"measure q[{qubit}] -> c[{qubit}];"
    if gate.name == "barrier":
        if gate.qubits:
            args = ",".join(f"q[{q}]" for q in gate.qubits)
            return f"barrier {args};"
        return "barrier q;"
    params = ""
    if gate.params:
        params = "(" + ",".join(f"{p!r}" for p in gate.params) + ")"
    args = ",".join(f"q[{q}]" for q in gate.qubits)
    return f"{gate.name}{params} {args};"


def circuit_from_qasm(text: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 string into a :class:`QuantumCircuit`.

    Supports the flat single-register style emitted by this library as
    well as multiple quantum registers (indices are concatenated in
    declaration order).  ``ccx`` gates are decomposed on the fly so that
    the returned circuit is already in the CNOT + single-qubit basis.
    """
    from repro.circuit.decompose import decompose_toffoli

    statements = _split_statements(text)
    qreg_offsets: Dict[str, int] = {}
    total_qubits = 0
    gates: List[Gate] = []

    for statement in statements:
        if statement.startswith(("OPENQASM", "include", "creg")) or not statement:
            continue
        match = _QREG_RE.match(statement)
        if match:
            qreg_offsets[match.group("name")] = total_qubits
            total_qubits += int(match.group("size"))
            continue
        if statement.startswith("measure"):
            gates.append(Gate("measure", (_parse_measure(statement, qreg_offsets),)))
            continue
        if statement.startswith("barrier"):
            qubits = _parse_barrier(statement, qreg_offsets, total_qubits)
            gates.append(Gate("barrier", qubits))
            continue
        gate_name, params, qubits = _parse_gate(statement, qreg_offsets)
        if gate_name == "ccx":
            gates.extend(decompose_toffoli(*qubits))
        else:
            gates.append(Gate(gate_name, qubits, params))

    if total_qubits == 0:
        raise QasmError("no qreg declaration found")
    circuit = QuantumCircuit(total_qubits, name=name)
    circuit.extend(gates)
    return circuit


def _split_statements(text: str) -> List[str]:
    no_comments = re.sub(r"//[^\n]*", "", text)
    return [stmt.strip() for stmt in no_comments.replace("\n", " ").split(";")]


def _resolve_arg(arg: str, qreg_offsets: Dict[str, int]) -> int:
    match = _ARG_RE.match(arg.strip())
    if not match:
        raise QasmError(f"cannot parse qubit argument {arg!r}")
    name = match.group("name")
    if name not in qreg_offsets:
        raise QasmError(f"unknown register {name!r}")
    return qreg_offsets[name] + int(match.group("index"))


def _parse_measure(statement: str, qreg_offsets: Dict[str, int]) -> int:
    body = statement[len("measure"):].strip()
    source = body.split("->")[0].strip()
    return _resolve_arg(source, qreg_offsets)


def _parse_barrier(statement: str, qreg_offsets: Dict[str, int], total: int) -> Tuple[int, ...]:
    body = statement[len("barrier"):].strip()
    if not body:
        return tuple(range(total))
    qubits: List[int] = []
    for arg in body.split(","):
        arg = arg.strip()
        if _ARG_RE.match(arg):
            qubits.append(_resolve_arg(arg, qreg_offsets))
        elif arg in qreg_offsets:
            # A bare register name means "all qubits of that register"; we
            # approximate with all declared qubits, which is what a global
            # barrier means for dependency purposes.
            return tuple(range(total))
        else:
            raise QasmError(f"cannot parse barrier argument {arg!r}")
    return tuple(qubits)


def _parse_gate(statement: str, qreg_offsets: Dict[str, int]):
    match = _GATE_RE.match(statement)
    if not match:
        raise QasmError(f"cannot parse statement {statement!r}")
    raw_name = match.group("gate").lower()
    gate_name = _NAME_ALIASES.get(raw_name, raw_name)
    params_text = match.group("params")
    params: Tuple[float, ...] = ()
    if params_text:
        params = tuple(_eval_param(p) for p in params_text.split(","))
    qubits = tuple(_resolve_arg(arg, qreg_offsets) for arg in match.group("args").split(","))
    if gate_name not in ONE_QUBIT_GATES | TWO_QUBIT_GATES | {"ccx"}:
        raise QasmError(f"unsupported gate {raw_name!r}")
    return gate_name, params, qubits


def _eval_param(expression: str) -> float:
    expression = expression.strip()
    if not re.fullmatch(r"[0-9eE+\-*/(). pisqrtcoxn]*", expression):
        raise QasmError(f"unsafe parameter expression {expression!r}")
    try:
        return float(eval(expression, _EVAL_GLOBALS))  # noqa: S307 - sanitized above
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate parameter {expression!r}") from exc
