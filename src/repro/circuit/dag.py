"""Gate dependency DAG used by the SWAP router.

The mapper (``repro.mapping``) consumes two-qubit gates in dependency
order: a gate becomes executable only once all earlier gates acting on any
of its qubits have been executed.  :class:`CircuitDAG` captures exactly
that partial order, exposing a mutable *front layer* interface in the
style of the SABRE algorithm (Li et al., ASPLOS 2019 — reference [18] of
the paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, GateKind, TWO_QUBIT_GATES


@dataclass
class DAGNode:
    """A node in the dependency DAG.

    Attributes:
        index: Position of the gate in the original circuit.
        gate: The gate itself.
        predecessors: Indices of nodes that must execute before this one.
        successors: Indices of nodes that depend on this one.
        two_qubit: Cached ``gate.is_two_qubit`` (the router checks it on
            every front-layer scan; the property re-derives the gate kind
            from its name each call).
    """

    index: int
    gate: Gate
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)
    two_qubit: bool = field(init=False)

    def __post_init__(self) -> None:
        # Direct frozenset membership instead of the kind property: this
        # runs once per gate per DAG build and is equivalent (measure and
        # barrier are not in TWO_QUBIT_GATES).
        self.two_qubit = self.gate.name in TWO_QUBIT_GATES


class CircuitDAG:
    """Dependency DAG over the gates of a circuit.

    Barriers order the gates around them but are not emitted as nodes to
    execute; measurements and single-qubit gates are kept so that the
    router can reproduce the *total* post-mapping gate count used as the
    performance metric in Section 5.1.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self._circuit = circuit
        self._nodes: Dict[int, DAGNode] = {}
        self._build()
        # Flat, index-addressed traversal tables (node indices are original
        # circuit positions, so a list indexed by position beats a dict of
        # dataclasses in the router's hot BFS loops; gaps left by removed
        # barrier nodes simply hold empty entries).
        size = len(circuit.gates)
        self._succ_sorted: List[List[int]] = [[] for _ in range(size)]
        self._two_qubit_flags = bytearray(size)
        for index, node in self._nodes.items():
            self._succ_sorted[index] = sorted(node.successors)
            self._two_qubit_flags[index] = node.two_qubit

    def _build(self) -> None:
        last_on_qubit: Dict[int, int] = {}
        for index, gate in enumerate(self._circuit.gates):
            if gate.name == "barrier":
                # A barrier acts as an ordering point on the qubits it spans
                # (or all qubits when it spans none explicitly).
                qubits = gate.qubits or tuple(range(self._circuit.num_qubits))
                node = DAGNode(index, gate)
                for qubit in qubits:
                    if qubit in last_on_qubit:
                        pred = last_on_qubit[qubit]
                        node.predecessors.add(pred)
                        self._nodes[pred].successors.add(index)
                    last_on_qubit[qubit] = index
                self._nodes[index] = node
                continue
            node = DAGNode(index, gate)
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    pred = last_on_qubit[qubit]
                    node.predecessors.add(pred)
                    self._nodes[pred].successors.add(index)
                last_on_qubit[qubit] = index
            self._nodes[index] = node
        # Drop barrier nodes now that their ordering effect has been applied;
        # rewire their predecessors to their successors.
        for index in [i for i, n in self._nodes.items() if n.gate.kind is GateKind.BARRIER]:
            node = self._nodes.pop(index)
            for succ in node.successors:
                self._nodes[succ].predecessors.discard(index)
                self._nodes[succ].predecessors.update(node.predecessors)
            for pred in node.predecessors:
                self._nodes[pred].successors.discard(index)
                self._nodes[pred].successors.update(node.successors)

    # -- read-only structure -------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        return self._circuit

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def node(self, index: int) -> DAGNode:
        return self._nodes[index]

    def nodes(self) -> List[DAGNode]:
        """All nodes sorted by original circuit position."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def topological_order(self) -> List[DAGNode]:
        """Kahn's algorithm; ties broken by original circuit order."""
        in_degree = {i: len(n.predecessors) for i, n in self._nodes.items()}
        ready = sorted(i for i, d in in_degree.items() if d == 0)
        order: List[DAGNode] = []
        while ready:
            index = ready.pop(0)
            order.append(self._nodes[index])
            for succ in sorted(self._nodes[index].successors):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    # Keep `ready` sorted so the order is deterministic.
                    ready.append(succ)
                    ready.sort()
        if len(order) != len(self._nodes):
            raise RuntimeError("cycle detected in circuit DAG (should be impossible)")
        return order

    def front_layer(self) -> List[DAGNode]:
        """Nodes with no predecessors (initially executable gates)."""
        return [self._nodes[i] for i in sorted(self._nodes) if not self._nodes[i].predecessors]


class ExecutionFrontier:
    """Mutable traversal state over a :class:`CircuitDAG`.

    The router repeatedly asks for the current *front layer* (gates whose
    dependencies are satisfied), executes some of them, and advances.  This
    class owns the bookkeeping so the routing algorithm stays readable.
    """

    def __init__(self, dag: CircuitDAG) -> None:
        self._dag = dag
        # Flat, index-addressed predecessor counts (same layout as the DAG's
        # traversal tables; gaps from removed barriers stay at zero and are
        # never referenced because no live node lists them as a successor).
        self._remaining_preds: List[int] = [0] * len(dag._succ_sorted)
        self._front: Set[int] = set()
        for index, node in dag._nodes.items():
            count = len(node.predecessors)
            self._remaining_preds[index] = count
            if count == 0:
                self._front.add(index)
        self._executed: Set[int] = set()

    @property
    def done(self) -> bool:
        """True once every gate has been executed."""
        return len(self._executed) == self._dag.num_nodes

    @property
    def num_executed(self) -> int:
        return len(self._executed)

    @property
    def remaining(self) -> int:
        """Number of gates not yet executed."""
        return self._dag.num_nodes - len(self._executed)

    def front_nodes(self) -> List[DAGNode]:
        """Currently executable gates, in original circuit order."""
        return [self._dag.node(i) for i in sorted(self._front)]

    def execute(self, index: int) -> List[DAGNode]:
        """Mark gate ``index`` as executed and return newly unblocked nodes."""
        if index not in self._front:
            raise ValueError(f"gate {index} is not currently executable")
        self._front.discard(index)
        self._executed.add(index)
        unblocked: List[DAGNode] = []
        remaining = self._remaining_preds
        nodes = self._dag._nodes
        for succ in self._dag._succ_sorted[index]:
            remaining[succ] -= 1
            if not remaining[succ]:
                self._front.add(succ)
                unblocked.append(nodes[succ])
        return unblocked

    def lookahead_nodes(self, depth: int) -> List[DAGNode]:
        """Up to ``depth`` not-yet-executable two-qubit gates beyond the front layer.

        Used by the SABRE-style extended-set heuristic: SWAP decisions
        consider gates that will become executable soon, not just the
        immediately blocked ones.
        """
        result: List[DAGNode] = []
        if depth <= 0:
            return result
        # Every node reachable from a front node's successors is a strict
        # descendant of the front, so it can be neither executed nor in the
        # front itself — visited-tracking alone suffices.  Nodes are
        # deduplicated at enqueue time (first enqueue claims the BFS slot,
        # same order as dedup-at-pop) so each node enters the queue once.
        # The walk runs on the DAG's flat index tables (byte flags and
        # presorted successor lists) — this is the router's hottest loop.
        successors = self._dag._succ_sorted
        two_qubit = self._dag._two_qubit_flags
        visited = bytearray(len(successors))
        queue: deque = deque()
        for index in sorted(self._front):
            for successor in successors[index]:
                if not visited[successor]:
                    visited[successor] = 1
                    queue.append(successor)
        dag_node = self._dag.node
        while queue:
            index = queue.popleft()
            if two_qubit[index]:
                result.append(dag_node(index))
                if len(result) >= depth:
                    break
            for successor in successors[index]:
                if not visited[successor]:
                    visited[successor] = 1
                    queue.append(successor)
        return result
