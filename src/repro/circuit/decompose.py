"""Decomposition of multi-qubit gates into the CNOT + single-qubit basis.

The paper assumes (Section 2.1) that every circuit has already been
decomposed so that only single-qubit gates and CNOTs remain.  The
reversible-logic benchmarks (RevLib-style arithmetic) are naturally
expressed with Toffoli and multi-controlled-X gates, so this module
provides the standard decompositions:

* Toffoli (CCX) -> 6 CNOTs + 9 single-qubit gates (textbook network).
* Multi-controlled X with ``k`` controls -> recursive V-chain style
  decomposition using borrowed ancillae when available, otherwise the
  quadratic no-ancilla construction built from CCX.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import Gate, cx, h, t, tdg


def decompose_toffoli(control_a: int, control_b: int, target: int) -> List[Gate]:
    """Standard 6-CNOT decomposition of the Toffoli gate.

    Nielsen & Chuang, Figure 4.9.  The exact single-qubit phases are
    irrelevant to the architecture flow (only the CNOT structure is
    profiled) but we keep the textbook network so gate counts are honest.
    """
    a, b, c = control_a, control_b, target
    return [
        h(c),
        cx(b, c),
        tdg(c),
        cx(a, c),
        t(c),
        cx(b, c),
        tdg(c),
        cx(a, c),
        t(b),
        t(c),
        h(c),
        cx(a, b),
        t(a),
        tdg(b),
        cx(a, b),
    ]


def decompose_mcx(
    controls: Sequence[int],
    target: int,
    ancillae: Optional[Sequence[int]] = None,
) -> List[Gate]:
    """Decompose a multi-controlled X gate into CNOT + single-qubit gates.

    Args:
        controls: Control qubit indices (any number >= 0).
        target: Target qubit index.
        ancillae: Optional work qubits.  With at least ``len(controls) - 2``
            ancillae the linear V-chain construction is used; otherwise the
            gate is decomposed recursively without ancillae (gate count grows
            quadratically, matching what a real reversible-logic synthesis
            tool would emit on a narrow register).

    Returns:
        A flat list of gates in the CNOT + single-qubit basis.
    """
    controls = list(controls)
    ancillae = list(ancillae or [])
    overlap = set(controls) & set(ancillae)
    if overlap:
        raise ValueError(f"ancillae {sorted(overlap)} overlap with controls")
    if target in controls or target in ancillae:
        raise ValueError("target qubit may not be a control or ancilla")

    if not controls:
        return [Gate("x", (target,))]
    if len(controls) == 1:
        return [cx(controls[0], target)]
    if len(controls) == 2:
        return decompose_toffoli(controls[0], controls[1], target)

    if len(ancillae) >= len(controls) - 2:
        return _mcx_v_chain(controls, target, ancillae[: len(controls) - 2])
    return _mcx_no_ancilla(controls, target)


def _mcx_v_chain(controls: Sequence[int], target: int, ancillae: Sequence[int]) -> List[Gate]:
    """Linear-depth V-chain decomposition using ``len(controls) - 2`` ancillae."""
    gates: List[Gate] = []
    # Compute AND-chains into the ancillae.
    gates.extend(decompose_toffoli(controls[0], controls[1], ancillae[0]))
    for i in range(2, len(controls) - 1):
        gates.extend(decompose_toffoli(controls[i], ancillae[i - 2], ancillae[i - 1]))
    # Final Toffoli onto the target.
    gates.extend(decompose_toffoli(controls[-1], ancillae[len(controls) - 3], target))
    # Uncompute the chain.
    for i in range(len(controls) - 2, 1, -1):
        gates.extend(decompose_toffoli(controls[i], ancillae[i - 2], ancillae[i - 1]))
    gates.extend(decompose_toffoli(controls[0], controls[1], ancillae[0]))
    return gates


def _mcx_no_ancilla(controls: Sequence[int], target: int) -> List[Gate]:
    """Recursive no-ancilla decomposition (quadratic CNOT count).

    Based on the classic Barenco et al. construction: C^n(X) is split into
    two C^(n-1)(V)-style blocks glued with Toffolis.  We approximate the
    controlled-roots-of-X with the same two-qubit structure (cx) because
    only the coupling structure matters for profiling and routing; the
    single-qubit corrections are emitted as ``t``/``tdg`` placeholders.
    """
    gates: List[Gate] = []
    if len(controls) <= 2:
        return decompose_mcx(controls, target)
    head, last = controls[:-1], controls[-1]
    # controlled-V between last control and target.
    gates.append(t(target))
    gates.append(cx(last, target))
    gates.append(tdg(target))
    # C^{n-1}X on the remaining controls targeting the last control.
    gates.extend(_mcx_no_ancilla(head, last) if len(head) > 2 else decompose_mcx(head, last))
    # controlled-V dagger.
    gates.append(t(target))
    gates.append(cx(last, target))
    gates.append(tdg(target))
    gates.extend(_mcx_no_ancilla(head, last) if len(head) > 2 else decompose_mcx(head, last))
    # C^{n-1}V on head controls and target: recurse with one fewer control.
    gates.extend(_mcx_no_ancilla(head, target) if len(head) > 2 else decompose_mcx(head, target))
    return gates


def decompose_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return a copy of ``circuit`` with swap/rzz/cz/cp rewritten into CNOT + 1q gates.

    Gates already in the basic basis are passed through untouched.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit.gates:
        out.extend(_decompose_gate(gate))
    return out


def _decompose_gate(gate: Gate) -> Iterable[Gate]:
    if gate.name == "swap":
        a, b = gate.qubits
        return [cx(a, b), cx(b, a), cx(a, b)]
    if gate.name == "cz":
        a, b = gate.qubits
        return [h(b), cx(a, b), h(b)]
    if gate.name in ("cp", "crz"):
        a, b = gate.qubits
        theta = gate.params[0]
        return [
            Gate("rz", (a,), (theta / 2,)),
            cx(a, b),
            Gate("rz", (b,), (-theta / 2,)),
            cx(a, b),
            Gate("rz", (b,), (theta / 2,)),
        ]
    if gate.name in ("rzz", "rxx"):
        a, b = gate.qubits
        theta = gate.params[0]
        prefix: List[Gate] = []
        suffix: List[Gate] = []
        if gate.name == "rxx":
            prefix = [h(a), h(b)]
            suffix = [h(a), h(b)]
        return prefix + [cx(a, b), Gate("rz", (b,), (theta,)), cx(a, b)] + suffix
    return [gate]
