"""Gate objects for the quantum circuit IR.

A :class:`Gate` is an immutable record of a named operation applied to one
or two qubits (plus optional real parameters).  The architecture design
flow only distinguishes between single-qubit operations, two-qubit
operations, and measurements (Section 3 of the paper), but the IR keeps
the full gate names so that circuits can be round-tripped through OpenQASM
and so that the mapper can reason about gate semantics (e.g. SWAP
insertion and CNOT counting).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Tuple


class GateKind(enum.Enum):
    """Coarse classification of operations used by the profiler."""

    SINGLE_QUBIT = "single_qubit"
    TWO_QUBIT = "two_qubit"
    MEASUREMENT = "measurement"
    BARRIER = "barrier"


#: Names of supported single-qubit gates.
ONE_QUBIT_GATES = frozenset(
    {
        "id",
        "h",
        "x",
        "y",
        "z",
        "s",
        "sdg",
        "t",
        "tdg",
        "rx",
        "ry",
        "rz",
        "u1",
        "u2",
        "u3",
        "sx",
    }
)

#: Names of supported two-qubit gates.
TWO_QUBIT_GATES = frozenset({"cx", "cz", "cp", "crz", "swap", "rzz", "rxx"})

#: Number of parameters each parameterised gate expects.
_PARAM_COUNTS = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "cp": 1,
    "crz": 1,
    "rzz": 1,
    "rxx": 1,
}


@dataclass(frozen=True)
class Gate:
    """A single operation in a quantum circuit.

    Attributes:
        name: Lower-case gate name (``"cx"``, ``"h"``, ``"measure"`` ...).
        qubits: Logical qubit indices the gate acts on (1 or 2 entries,
            except ``barrier`` which may span any number).
        params: Real-valued parameters (rotation angles), possibly empty.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.qubits and self.name != "barrier":
            raise ValueError(f"gate {self.name!r} must act on at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits}")
        if self.name in ONE_QUBIT_GATES and len(self.qubits) != 1:
            raise ValueError(f"{self.name!r} acts on exactly one qubit, got {self.qubits}")
        if self.name in TWO_QUBIT_GATES and len(self.qubits) != 2:
            raise ValueError(f"{self.name!r} acts on exactly two qubits, got {self.qubits}")
        expected_params = _PARAM_COUNTS.get(self.name, 0)
        if self.name in _PARAM_COUNTS and len(self.params) != expected_params:
            raise ValueError(
                f"{self.name!r} expects {expected_params} parameter(s), got {len(self.params)}"
            )

    @property
    def kind(self) -> GateKind:
        """Coarse classification used by the profiler."""
        if self.name == "measure":
            return GateKind.MEASUREMENT
        if self.name == "barrier":
            return GateKind.BARRIER
        if self.name in TWO_QUBIT_GATES:
            return GateKind.TWO_QUBIT
        return GateKind.SINGLE_QUBIT

    @property
    def is_two_qubit(self) -> bool:
        """True for gates that require a physical qubit connection."""
        return self.kind is GateKind.TWO_QUBIT

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def remap(self, mapping) -> "Gate":
        """Return a copy of the gate with qubits translated through ``mapping``.

        Only operand distinctness is re-validated (the one invariant a
        non-injective mapping can break); name, parameter, and arity checks
        from ``__post_init__`` are skipped because translation cannot
        violate them and the router remaps one gate per executed operation,
        making redundant re-validation a measurable cost.

        Args:
            mapping: A dict-like or callable from old index to new index.

        Raises:
            ValueError: When the mapping sends two operands to the same qubit.
        """
        if callable(mapping):
            new_qubits = tuple(mapping(q) for q in self.qubits)
        else:
            new_qubits = tuple(mapping[q] for q in self.qubits)
        if len(new_qubits) > 1 and len(set(new_qubits)) != len(new_qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {new_qubits}")
        new = object.__new__(Gate)
        object.__setattr__(new, "name", self.name)
        object.__setattr__(new, "qubits", new_qubits)
        object.__setattr__(new, "params", self.params)
        return new

    def __str__(self) -> str:
        params = ""
        if self.params:
            params = "(" + ", ".join(f"{p:.6g}" for p in self.params) + ")"
        qubits = ", ".join(f"q{q}" for q in self.qubits)
        return f"{self.name}{params} {qubits}"


# ---------------------------------------------------------------------------
# Convenience constructors.  These keep call sites readable:
#   circuit.append(cx(0, 1))  instead of  circuit.append(Gate("cx", (0, 1)))
# ---------------------------------------------------------------------------


def h(qubit: int) -> Gate:
    """Hadamard gate."""
    return Gate("h", (qubit,))


def x(qubit: int) -> Gate:
    """Pauli-X gate."""
    return Gate("x", (qubit,))


def y(qubit: int) -> Gate:
    """Pauli-Y gate."""
    return Gate("y", (qubit,))


def z(qubit: int) -> Gate:
    """Pauli-Z gate."""
    return Gate("z", (qubit,))


def s(qubit: int) -> Gate:
    """Phase gate (sqrt(Z))."""
    return Gate("s", (qubit,))


def sdg(qubit: int) -> Gate:
    """Adjoint phase gate."""
    return Gate("sdg", (qubit,))


def t(qubit: int) -> Gate:
    """T gate (fourth root of Z)."""
    return Gate("t", (qubit,))


def tdg(qubit: int) -> Gate:
    """Adjoint T gate."""
    return Gate("tdg", (qubit,))


def rx(theta: float, qubit: int) -> Gate:
    """X-rotation by ``theta``."""
    return Gate("rx", (qubit,), (float(theta),))


def ry(theta: float, qubit: int) -> Gate:
    """Y-rotation by ``theta``."""
    return Gate("ry", (qubit,), (float(theta),))


def rz(theta: float, qubit: int) -> Gate:
    """Z-rotation by ``theta``."""
    return Gate("rz", (qubit,), (float(theta),))


def u1(lam: float, qubit: int) -> Gate:
    """Diagonal single-qubit phase gate."""
    return Gate("u1", (qubit,), (float(lam),))


def u2(phi: float, lam: float, qubit: int) -> Gate:
    """IBM u2 gate (pi/2 rotation with two phases)."""
    return Gate("u2", (qubit,), (float(phi), float(lam)))


def u3(theta: float, phi: float, lam: float, qubit: int) -> Gate:
    """General single-qubit rotation."""
    return Gate("u3", (qubit,), (float(theta), float(phi), float(lam)))


def cx(control: int, target: int) -> Gate:
    """CNOT gate."""
    return Gate("cx", (control, target))


def cz(control: int, target: int) -> Gate:
    """Controlled-Z gate."""
    return Gate("cz", (control, target))


def cp(theta: float, control: int, target: int) -> Gate:
    """Controlled-phase gate."""
    return Gate("cp", (control, target), (float(theta),))


def swap(a: int, b: int) -> Gate:
    """SWAP gate."""
    return Gate("swap", (a, b))


def rzz(theta: float, a: int, b: int) -> Gate:
    """Two-qubit ZZ interaction, the building block of Ising evolution."""
    return Gate("rzz", (a, b), (float(theta),))


def measure(qubit: int) -> Gate:
    """Computational-basis measurement."""
    return Gate("measure", (qubit,))


def barrier(*qubits: int) -> Gate:
    """Barrier pseudo-gate (ignored by profiling and routing)."""
    return Gate("barrier", tuple(qubits))


def is_clifford_angle(theta: float, tol: float = 1e-9) -> bool:
    """Return True when ``theta`` is a multiple of pi/2 (used by tests)."""
    return abs((theta / (math.pi / 2)) - round(theta / (math.pi / 2))) < tol
