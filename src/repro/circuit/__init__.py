"""Quantum circuit intermediate representation.

This subpackage provides the circuit substrate used by the rest of the
library: gate objects, a :class:`QuantumCircuit` container, a dependency
DAG used by the SWAP router, multi-controlled gate decomposition into the
CNOT + single-qubit basis, and OpenQASM 2.0 import/export.
"""

from repro.circuit.gates import (
    Gate,
    GateKind,
    ONE_QUBIT_GATES,
    TWO_QUBIT_GATES,
    barrier,
    cx,
    cz,
    h,
    measure,
    rx,
    ry,
    rz,
    s,
    sdg,
    swap,
    t,
    tdg,
    u1,
    u2,
    u3,
    x,
    y,
    z,
)
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDAG, DAGNode
from repro.circuit.decompose import decompose_circuit, decompose_mcx, decompose_toffoli
from repro.circuit.qasm import QasmError, circuit_from_qasm, circuit_to_qasm

__all__ = [
    "Gate",
    "GateKind",
    "QuantumCircuit",
    "CircuitDAG",
    "DAGNode",
    "ONE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "decompose_circuit",
    "decompose_toffoli",
    "decompose_mcx",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "QasmError",
    "h",
    "x",
    "y",
    "z",
    "s",
    "sdg",
    "t",
    "tdg",
    "rx",
    "ry",
    "rz",
    "u1",
    "u2",
    "u3",
    "cx",
    "cz",
    "swap",
    "measure",
    "barrier",
]
