"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuit.gates.Gate` objects
acting on ``num_qubits`` logical qubits.  It is deliberately minimal: the
architecture design flow needs gate ordering, two-qubit structure, and
qubit counts — it does not simulate state vectors.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.circuit.gates import Gate, GateKind


class QuantumCircuit:
    """An ordered sequence of gates on a fixed register of logical qubits.

    Args:
        num_qubits: Size of the logical qubit register.
        name: Optional human-readable name (used in reports and figures).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: List[Gate] = []
        self._gates_tuple: Optional[Tuple[Gate, ...]] = None
        self._content_hash: Optional[int] = None
        self.name = name

    # -- basic container protocol -------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of logical qubits in the register."""
        return self._num_qubits

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple (cached until the next append)."""
        if self._gates_tuple is None:
            self._gates_tuple = tuple(self._gates)
        return self._gates_tuple

    def content_hash(self) -> int:
        """A 64-bit digest of the gate sequence, cached until the next append.

        Routing caches key circuits by value; hashing thousands of gate
        dataclasses per lookup would dwarf the lookup itself, so the digest
        is computed once per mutation generation.  It is derived from
        SHA-256 over a canonical per-gate encoding — **not** Python's
        salted ``hash()`` — so the same circuit digests identically in
        every process, which persisted routing caches rely on for their
        keys to match across invocations.
        """
        if self._content_hash is None:
            digest = hashlib.sha256()
            for gate in self.gates:
                digest.update(repr((gate.name, gate.qubits, gate.params)).encode())
            self._content_hash = int.from_bytes(digest.digest()[:8], "big")
        return self._content_hash

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self._num_qubits == other._num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"num_gates={len(self._gates)})"
        )

    # -- construction -------------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating qubit indices.  Returns ``self`` for chaining."""
        for qubit in gate.qubits:
            if not 0 <= qubit < self._num_qubits:
                raise ValueError(
                    f"gate {gate} uses qubit {qubit} outside register of size {self._num_qubits}"
                )
        self._gates.append(gate)
        self._gates_tuple = None
        self._content_hash = None
        return self

    def append_unchecked(self, gate: Gate) -> None:
        """Append a gate without qubit-range validation.

        For hot loops that construct gates on indices already known to be
        in range (the router appends one gate per executed operation);
        everything else should use :meth:`append`.
        """
        self._gates.append(gate)
        self._gates_tuple = None
        self._content_hash = None

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append every gate from ``gates``."""
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all gates of ``other`` (registers must be compatible)."""
        if other.num_qubits > self._num_qubits:
            raise ValueError(
                f"cannot compose a {other.num_qubits}-qubit circuit onto "
                f"a {self._num_qubits}-qubit circuit"
            )
        return self.extend(other.gates)

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Return a shallow copy (gates are immutable, so this is safe).

        The cached gate tuple and content digest carry over — they
        describe the same gate sequence — so copies hit the engines'
        identity fast paths instead of re-hashing or re-comparing
        thousands of gates; either cache resets independently on the
        copy's next append.
        """
        new = QuantumCircuit(self._num_qubits, name or self.name)
        new._gates = list(self._gates)
        new._gates_tuple = self._gates_tuple
        new._content_hash = self._content_hash
        return new

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None,
                     name: Optional[str] = None) -> "QuantumCircuit":
        """Return a new circuit with every qubit index translated through ``mapping``."""
        size = num_qubits if num_qubits is not None else self._num_qubits
        new = QuantumCircuit(size, name or self.name)
        for gate in self._gates:
            new.append(gate.remap(mapping))
        return new

    # -- statistics used throughout the paper -------------------------------------

    def count_gates(self, predicate: Optional[Callable[[Gate], bool]] = None) -> int:
        """Count gates, optionally restricted to those satisfying ``predicate``."""
        if predicate is None:
            return len(self._gates)
        return sum(1 for gate in self._gates if predicate(gate))

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (the quantity profiled in Section 3)."""
        return self.count_gates(lambda g: g.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        return self.count_gates(lambda g: g.kind is GateKind.SINGLE_QUBIT)

    @property
    def num_measurements(self) -> int:
        return self.count_gates(lambda g: g.kind is GateKind.MEASUREMENT)

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def two_qubit_pairs(self) -> List[Tuple[int, int]]:
        """Ordered (control, target) pairs of every two-qubit gate."""
        return [tuple(g.qubits) for g in self._gates if g.is_two_qubit]

    def used_qubits(self) -> List[int]:
        """Sorted list of qubit indices touched by at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return sorted(used)

    def depth(self) -> int:
        """Circuit depth counting single- and two-qubit gates (barriers ignored)."""
        layer_of_qubit = [0] * self._num_qubits
        depth = 0
        for gate in self._gates:
            if gate.kind is GateKind.BARRIER:
                continue
            layer = 1 + max(layer_of_qubit[q] for q in gate.qubits)
            for qubit in gate.qubits:
                layer_of_qubit[qubit] = layer
            depth = max(depth, layer)
        return depth

    def two_qubit_depth(self) -> int:
        """Circuit depth counting only two-qubit gates."""
        layer_of_qubit = [0] * self._num_qubits
        depth = 0
        for gate in self._gates:
            if not gate.is_two_qubit:
                continue
            layer = 1 + max(layer_of_qubit[q] for q in gate.qubits)
            for qubit in gate.qubits:
                layer_of_qubit[qubit] = layer
            depth = max(depth, layer)
        return depth

    # -- summaries -----------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A compact dictionary describing the circuit (used by reports)."""
        return {
            "name": self.name,
            "num_qubits": self._num_qubits,
            "num_gates": len(self._gates),
            "num_two_qubit_gates": self.num_two_qubit_gates,
            "num_single_qubit_gates": self.num_single_qubit_gates,
            "num_measurements": self.num_measurements,
            "depth": self.depth(),
            "two_qubit_depth": self.two_qubit_depth(),
        }
