"""repro — application-specific superconducting quantum processor architecture design.

This package reproduces "Towards Efficient Superconducting Quantum
Processor Architecture Design" (Li, Ding, Xie — ASPLOS 2020).  The public
API mirrors the paper's design flow:

* :mod:`repro.circuit` — quantum circuit IR (the programs being designed for).
* :mod:`repro.benchmarks` — the twelve evaluation programs.
* :mod:`repro.profiling` — coupling strength matrix / coupling degree list.
* :mod:`repro.hardware` — lattices, buses, architectures, IBM baselines.
* :mod:`repro.collision` — frequency-collision model and Monte Carlo yield.
* :mod:`repro.design` — layout design, bus selection, frequency allocation.
* :mod:`repro.mapping` — SABRE-style qubit mapping (performance metric).
* :mod:`repro.evaluation` — the paper's five experiment configurations.

Quickstart::

    from repro import design_architecture, profile_circuit
    from repro.benchmarks import get_benchmark
    from repro.collision import YieldSimulator
    from repro.mapping import route_circuit

    circuit = get_benchmark("uccsd_ansatz_8")
    profile = profile_circuit(circuit)
    architecture = design_architecture(circuit, max_four_qubit_buses=2)
    yield_rate = YieldSimulator(trials=2000, seed=7).estimate(architecture).yield_rate
    routed = route_circuit(circuit, architecture)
    print(yield_rate, routed.total_gates)
"""

from repro.circuit import QuantumCircuit
from repro.profiling import CircuitProfile, profile_circuit
from repro.design import DesignFlow, design_architecture, design_architecture_series
from repro.hardware import Architecture

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "CircuitProfile",
    "profile_circuit",
    "DesignFlow",
    "design_architecture",
    "design_architecture_series",
    "Architecture",
    "__version__",
]
