"""Shared cache-file machinery for persisted result caches.

Both persisted caches of the code base — the routing-result cache
(:class:`~repro.mapping.engine.RoutingCache`) and the design-stage cache
(:class:`~repro.design.engine.DesignCache`) — store counts-only JSON
files that many processes read and rewrite concurrently: every worker of
a ``sweep --jobs N`` warm-loads the file, and whichever processes
accumulated new results merge them back at the end of their run.  This
module owns the machinery that makes those files safe to share:

* **Atomic writes** — :func:`write_cache_file` writes to a temporary
  file in the destination directory and ``os.replace``\\ s it into
  place, so a reader (or the survivor of a crashed writer) can never
  observe a torn or truncated file.
* **Format and version validation** — :func:`read_cache_entries`
  rejects files with the wrong ``format`` marker *and* files with an
  unknown ``version``: a future version-2 file fails loudly instead of
  being half-parsed by version-1 code.
* **Per-path merge locks** — :func:`cache_file_lock` serializes the
  read-merge-rewrite cycle that extends an existing file, so concurrent
  writers sharing one cache path cannot silently drop each other's
  entries.  The lock combines an in-process :class:`threading.Lock`
  (keyed by absolute path) with an ``fcntl`` file lock on a ``.lock``
  sidecar, covering both threads within a process and sibling worker
  processes.  On platforms without ``fcntl`` the in-process lock still
  applies; cross-process merges degrade to last-writer-wins of the
  *merged* states, which can only lose entries written in the window
  between a load and a replace.
* **JSON key codecs** — :func:`listify` / :func:`tuplify` convert the
  nested tuples of cache keys to and from JSON arrays.

Cache classes stay in charge of their own entry schemas; this module
only standardizes the envelope (``{"format", "version", "entries"}``)
and the concurrency discipline around it.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]

#: In-process merge locks, one per absolute cache path.  ``fcntl`` locks
#: are per open file description, not per thread, so threads sharing a
#: process need their own serialization layer.
_PROCESS_LOCKS: Dict[str, threading.Lock] = {}
_PROCESS_LOCKS_GUARD = threading.Lock()


def listify(value):
    """Tuples to lists, recursively (JSON encoding of cache keys)."""
    if isinstance(value, tuple):
        return [listify(item) for item in value]
    return value


def tuplify(value):
    """Lists to tuples, recursively (JSON decoding of cache keys)."""
    if isinstance(value, list):
        return tuple(tuplify(item) for item in value)
    return value


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses a filesystem boundary; a crash between write
    and rename leaves the previous file contents untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # mkstemp creates 0o600 files; keep the destination's existing
    # permissions (or conventional 0o644 for a new file) so a cache
    # shared between users stays readable after a rewrite.
    try:
        mode = path.stat().st_mode & 0o777
    except OSError:
        mode = 0o644
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            os.chmod(tmp_name, mode)
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_cache_file(
    path: PathLike, file_format: str, version: int, entries: List[dict]
) -> int:
    """Atomically write a cache file in the standard envelope.

    Returns the number of entries written.
    """
    payload = {"format": file_format, "version": version, "entries": entries}
    atomic_write_text(path, json.dumps(payload) + "\n")
    return len(entries)


def read_cache_entries(
    path: PathLike,
    file_format: str,
    version: int,
    missing_ok: bool = False,
    kind: Optional[str] = None,
) -> Optional[List[dict]]:
    """Read and validate a cache file; return its entry list.

    Args:
        path: Cache file location.
        file_format: Expected ``format`` marker.
        version: The (single) supported schema version.  Files declaring
            any other version are rejected with a clear error instead of
            being half-parsed.
        missing_ok: Return ``None`` for a nonexistent file instead of
            raising :class:`FileNotFoundError`.
        kind: Human-readable file kind for error messages (defaults to
            ``file_format``).
    """
    kind = kind or file_format
    path = Path(path)
    if not path.exists():
        if missing_ok:
            return None
        raise FileNotFoundError(f"{kind} file not found: {path}")
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != file_format:
        raise ValueError(f"{path} is not a {kind} file")
    found = payload.get("version")
    if found != version:
        raise ValueError(
            f"{path} declares unsupported {kind} version {found!r} "
            f"(this release reads version {version}); it was likely written "
            "by a newer release — delete the file or upgrade"
        )
    return payload["entries"]


def merge_loaded(cache, records: List[dict], decode) -> int:
    """Merge decoded file records into a bounded LRU cache.

    The shared tail of every persisted cache's ``load``: existing
    in-memory entries win under equal keys, and the return value counts
    the merged entries *still resident* afterwards — on a bounded cache,
    a file larger than the bound merges only its tail, and the count
    reflects that rather than masking the eviction.

    Args:
        cache: A cache exposing the in-package LRU protocol (the
            ``_entries`` mapping and ``put``) — i.e.
            :class:`~repro.mapping.engine.RoutingCache` or a
            :class:`~repro.design.engine.StageCache` subclass.
        records: The validated entry list of a cache file.
        decode: Maps one serialized record to its ``(key, value)`` pair.
    """
    merged_keys = []
    for record in records:
        key, value = decode(record)
        if key in cache._entries:
            continue
        cache.put(key, value)
        merged_keys.append(key)
    return sum(1 for key in merged_keys if key in cache._entries)


def _process_lock(key: str) -> threading.Lock:
    with _PROCESS_LOCKS_GUARD:
        lock = _PROCESS_LOCKS.get(key)
        if lock is None:
            lock = _PROCESS_LOCKS.setdefault(key, threading.Lock())
        return lock


@contextmanager
def cache_file_lock(path: PathLike) -> Iterator[None]:
    """Serialize a read-merge-rewrite cycle on ``path`` against other writers.

    Hold the lock across the *whole* cycle — load, merge, save — not
    just the write: atomic replacement alone cannot stop two concurrent
    mergers from both loading the same base state and the second replace
    discarding the first's additions.

    The lock is reentrant-unsafe (don't nest on the same path) and is
    taken on a ``<name>.lock`` sidecar rather than the cache file
    itself, so locking never interferes with the atomic replace.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    key = os.path.abspath(path)
    with _process_lock(key):
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = path.with_name(path.name + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def union_merge_save(
    path: PathLike,
    file_format: str,
    version: int,
    records: List[dict],
    key_of,
    kind: Optional[str] = None,
) -> int:
    """Extend the cache file at ``path`` with ``records``, concurrency-safe.

    The canonical end-of-run persistence step: under the per-path lock,
    the file's current entries are read and unioned with ``records``
    (``records`` win under equal ``key_of`` keys, file order is
    preserved, new entries append), and the union is written back
    atomically.  The merge happens at the *file* level, deliberately
    outside any in-memory cache: the persisted file accumulates every
    entry ever merged into it, never shrinking to a producer's LRU
    bound, and never dropping a concurrent writer's additions.

    Args:
        path: Cache file location.
        file_format: ``format`` marker of the envelope.
        version: Schema version written and required of the existing file.
        records: Serialized entries to merge in (JSON-compatible dicts).
        key_of: Maps a serialized record to its hashable identity; must
            agree for file-loaded and freshly serialized records.
        kind: Human-readable file kind for error messages.

    Returns the number of entries the rewritten file holds.
    """
    with cache_file_lock(path):
        existing = read_cache_entries(
            path, file_format, version, missing_ok=True, kind=kind
        )
        merged: Dict = {}
        for record in existing or []:
            merged[key_of(record)] = record
        for record in records:
            merged[key_of(record)] = record
        return write_cache_file(path, file_format, version, list(merged.values()))
