"""Findings, suppressions, and the committed baseline file.

The linter's unit of output is a :class:`Finding`: one rule violation at
one source location.  Three mechanisms decide whether a finding fails
the run:

* **Inline suppressions** — a ``# repro-lint: disable=RULE`` comment on
  the offending line (or on a comment line directly above it) silences
  that rule there.  ``disable=all`` silences every rule for the line.
* **The baseline file** — ``lint-baseline.json`` at the repository root
  records *accepted* findings, each with a mandatory one-line
  justification.  A finding matches a baseline entry by ``(rule, path,
  context)`` — the context is the stripped source line (or a symbolic
  context for project-level rules), so entries survive line-number
  drift.  Baseline entries that no longer match anything are reported
  as stale so the file cannot silently rot.
* Everything else is a **new finding** and fails the run.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

#: ``# repro-lint: disable=REPRO-D101`` or ``disable=REPRO-D101,REPRO-S201``
#: or ``disable=all``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``context`` is the finding's line-number-independent identity: the
    stripped source line for AST rules, or a symbolic marker such as
    ``field frequency_screening`` for project-level digest rules.  The
    baseline matches on ``(rule, path, context)``.
    """

    rule: str
    path: str
    line: int
    message: str
    context: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.context)


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, with its mandatory justification."""

    rule: str
    path: str
    context: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.context)


@dataclass
class LintReport:
    """The outcome of one lint run, split by disposition."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    checked_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.new

    def payload(self) -> Dict[str, object]:
        """A deterministic JSON-serializable image (the CI artifact)."""

        def finding_row(finding: Finding) -> Dict[str, object]:
            return {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "context": finding.context,
            }

        return {
            "format": "repro-lint-report",
            "version": 1,
            "checked_files": self.checked_files,
            "new": [finding_row(f) for f in sorted(self.new, key=Finding.key)],
            "baselined": [finding_row(f) for f in sorted(self.baselined, key=Finding.key)],
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "context": e.context,
                 "justification": e.justification}
                for e in sorted(self.stale_baseline, key=BaselineEntry.key)
            ],
        }


def suppressed_rules(source_lines: Sequence[str], line: int) -> frozenset:
    """The rule codes suppressed at 1-based ``line`` of ``source_lines``.

    A suppression applies from the flagged line itself or from a bare
    comment line directly above it (so long suppressions do not force
    long code lines).
    """
    codes: set = set()
    for candidate in (line, line - 1):
        if not 1 <= candidate <= len(source_lines):
            continue
        text = source_lines[candidate - 1]
        if candidate != line and not text.lstrip().startswith("#"):
            continue
        match = _SUPPRESS_RE.search(text)
        if match:
            codes.update(code.strip() for code in match.group(1).split(",") if code.strip())
    return frozenset(codes)


def is_suppressed(finding: Finding, source_lines: Sequence[str]) -> bool:
    codes = suppressed_rules(source_lines, finding.line)
    return "all" in codes or finding.rule in codes


# -- baseline file -----------------------------------------------------------


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Load and validate ``lint-baseline.json``; missing file means empty.

    Every entry must carry a non-empty ``justification`` — the baseline
    exists to record *why* a finding is accepted, not merely to mute it.
    """
    if not path.exists():
        return []
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline version {data.get('version')!r}")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    loaded = []
    for index, row in enumerate(entries):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: entry {index} must be an object")
        missing = {"rule", "path", "context", "justification"} - row.keys()
        if missing:
            raise ValueError(f"{path}: entry {index} missing keys {sorted(missing)}")
        justification = str(row["justification"]).strip()
        if not justification:
            raise ValueError(
                f"{path}: entry {index} ({row['rule']} at {row['path']}) has an "
                "empty justification; every baselined finding must say why it "
                "is accepted"
            )
        loaded.append(
            BaselineEntry(
                rule=str(row["rule"]),
                path=str(row["path"]),
                context=str(row["context"]),
                justification=justification,
            )
        )
    return loaded


def write_baseline(path: Path, entries: Sequence[BaselineEntry]) -> None:
    """Write a baseline file (used by ``--update-baseline``)."""
    payload = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": e.rule, "path": e.path, "context": e.context,
             "justification": e.justification}
            for e in sorted(entries, key=BaselineEntry.key)
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (new, baselined) and spot stale baseline entries.

    A baseline entry absorbs any number of findings with its key (one
    accepted pattern can legitimately match a repeated construct), and
    is stale only when it absorbed none.
    """
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {e.key(): e for e in entries}
    used: set = set()
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        entry = by_key.get(finding.key())
        if entry is None:
            new.append(finding)
        else:
            baselined.append(finding)
            used.add(entry.key())
    stale = [entry for entry in entries if entry.key() not in used]
    return new, baselined, stale


def baseline_entry_for(finding: Finding, justification: str) -> BaselineEntry:
    return BaselineEntry(
        rule=finding.rule, path=finding.path, context=finding.context,
        justification=justification,
    )


def default_baseline_path(root: Path) -> Path:
    return root / "lint-baseline.json"


def context_of(source_lines: Sequence[str], line: int) -> str:
    """The stripped source line at 1-based ``line`` (finding identity)."""
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
