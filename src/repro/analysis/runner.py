"""The lint driver: file discovery, rule dispatch, baseline, CLI.

``python -m repro.analysis`` (or ``repro-design lint``) walks the
default targets — ``src/``, ``benchmarks/``, ``examples/`` — in sorted
order, runs every registered AST rule on each file, runs the
project-level digest-completeness checks once, then filters through
inline suppressions and the committed baseline.  Exit status is ``1``
iff any non-baselined, non-suppressed finding remains, so CI can gate
on it directly; ``--report`` writes the full disposition as
deterministic JSON for the artifact trail.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

# Importing the rule modules registers their rules.
import repro.analysis.determinism  # noqa: F401  (registration import)
import repro.analysis.fork_safety  # noqa: F401  (registration import)
import repro.analysis.robustness  # noqa: F401  (registration import)
import repro.analysis.store_discipline  # noqa: F401  (registration import)
from repro.analysis import digest_check
from repro.analysis.findings import (
    Finding,
    LintReport,
    apply_baseline,
    baseline_entry_for,
    default_baseline_path,
    is_suppressed,
    load_baseline,
    sort_findings,
    write_baseline,
)
from repro.analysis.rules import ModuleContext, registered_rules

DEFAULT_TARGETS = ("src", "benchmarks", "examples")

#: Pseudo-rule for files the linter cannot parse at all.
PARSE_ERROR_RULE = "REPRO-E001"


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _collect_files(root: Path, targets: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for target in targets:
        base = Path(target)
        if not base.is_absolute():
            base = root / target
        if base.is_dir():
            files.extend(sorted(base.rglob("*.py")))
        elif base.suffix == ".py" and base.exists():
            files.append(base)
    seen = set()
    unique = []
    for path in files:
        key = str(path.resolve())
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def lint_source(source: str, path: str) -> List[Finding]:
    """Run every registered AST rule over one source text.

    Inline suppressions are honored; path-prefix rule exemptions are
    honored against ``path``.  This is the entry point the fixture and
    mutation tests drive.
    """
    try:
        module = ModuleContext.parse(source, path)
    except SyntaxError as error:
        return [Finding(
            rule=PARSE_ERROR_RULE, path=path, line=error.lineno or 1,
            message=f"syntax error: {error.msg}", context="",
        )]
    findings: List[Finding] = []
    for rule in registered_rules():
        if any(path.startswith(prefix) for prefix in rule.exempt_prefixes):
            continue
        for finding in rule.func(module):
            if not is_suppressed(finding, module.source_lines):
                findings.append(finding)
    return sort_findings(findings)


def lint_tree(
    root: Path,
    targets: Optional[Sequence[str]] = None,
    *,
    dynamic: bool = True,
    baseline_path: Optional[Path] = None,
) -> LintReport:
    """Lint a source tree and return the full disposition report."""
    root = root.resolve()
    if targets is None:
        targets = [t for t in DEFAULT_TARGETS if (root / t).is_dir()]
    report = LintReport()
    raw: List[Finding] = []
    for path in _collect_files(root, targets):
        relpath = _relpath(path, root)
        source = path.read_text(encoding="utf-8")
        raw.extend(lint_source(source, relpath))
        report.checked_files += 1
    if dynamic:
        raw.extend(digest_check.project_findings(root))
    baseline = load_baseline(baseline_path or default_baseline_path(root))
    new, baselined, stale = apply_baseline(sort_findings(raw), baseline)
    report.new = new
    report.baselined = baselined
    report.stale_baseline = stale
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Invariant linter: determinism, lock/store discipline, digest "
            "completeness, and fork/merge safety for the repro code base."
        ),
    )
    parser.add_argument(
        "targets", nargs="*", default=None,
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root (rule exemptions and the baseline resolve "
             "against it; default: current directory)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of accepted findings (default: "
             "<root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the full disposition as deterministic JSON "
             "(the CI artifact)",
    )
    parser.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the dynamic digest-completeness checks (REPRO-C3xx)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept every current finding with a "
             "TODO justification (then edit the justifications!)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in registered_rules():
            print(f"{rule.code}  {rule.summary}")
        print(f"{PARSE_ERROR_RULE}  file does not parse")
        return 0

    root = Path(args.root)
    baseline_path = Path(args.baseline) if args.baseline else None
    try:
        report = lint_tree(
            root,
            args.targets or None,
            dynamic=not args.no_dynamic,
            baseline_path=baseline_path,
        )
    except (OSError, ValueError) as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        entries = [
            baseline_entry_for(f, "TODO(repro-lint): justify this acceptance or fix it")
            for f in report.new
        ]
        # Keep still-matching entries (with their real justifications).
        kept = load_baseline(baseline_path or default_baseline_path(root))
        kept = [e for e in kept if e not in report.stale_baseline]
        path = baseline_path or default_baseline_path(root)
        write_baseline(path, kept + entries)
        print(f"repro lint: baseline updated with {len(entries)} new entries at {path}")
        return 0

    for finding in report.new:
        print(finding.render())
    for entry in report.stale_baseline:
        print(
            f"repro lint: warning: stale baseline entry {entry.rule} at "
            f"{entry.path} ({entry.context!r}) no longer matches anything",
            file=sys.stderr,
        )
    if args.report:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(
            json.dumps(report.payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    print(
        f"repro lint: {len(report.new)} new finding(s), "
        f"{len(report.baselined)} baselined, {report.checked_files} files checked"
    )
    return 0 if report.ok else 1
