"""Lock/store-discipline rules (REPRO-S2xx).

Every persisted cache of this repo — routing cache, design cache, sweep
checkpoint — is written exclusively through :mod:`repro.persistence`
store APIs (``merge_save`` / ``union_merge_save`` / atomic
replace-writes under per-path locks).  A raw ``open(..., "w")`` +
``json.dump`` aimed at a cache file bypasses the lock *and* the atomic
replace, reintroducing the torn-file and lost-update races PR 4 fixed.

* **REPRO-S201** — write-mode ``open()`` / ``Path.write_text`` /
  ``Path.write_bytes`` whose path expression looks cache-shaped
  (mentions ``cache`` / ``store`` / ``checkpoint`` / ``shard``)
  outside ``repro.persistence``.
* **REPRO-S202** — ``sqlite3.connect`` outside
  ``repro/persistence/sqlite.py``: the SQLite backend owns connection
  pragmas, transaction scope, and the upsert-merge discipline.
* **REPRO-S203** — ``os.replace`` / ``os.rename`` outside
  ``repro.persistence``: atomic replace-writes must flow through
  ``atomic_write_text`` so temp-file placement and fsync behavior stay
  in one place.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, call_keyword, rule

_CACHE_TOKENS = ("cache", "store", "checkpoint", "shard")
_WRITE_MODE_CHARS = set("wax+")


def _cache_shaped(module: ModuleContext, expr: ast.AST) -> bool:
    return any(
        token in name for name in module.name_tokens(expr) for token in _CACHE_TOKENS
    )


def _open_mode(call: ast.Call) -> Optional[str]:
    mode = call.args[1] if len(call.args) >= 2 else call_keyword(call, "mode")
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode expression: assume the worst


@rule(
    "REPRO-S201",
    "raw write to a cache-shaped path outside repro.persistence",
    exempt_prefixes=("src/repro/persistence/",),
)
def check_raw_cache_write(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        # open(path, "w"/...) on a cache-shaped path expression.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "open"
            and node.func.id not in module.aliases
            and node.args
        ):
            mode = _open_mode(node)
            writes = mode is None or bool(set(mode) & _WRITE_MODE_CHARS)
            path_expr = node.args[0]
            if writes and _cache_shaped(module, path_expr):
                findings.append(module.finding(
                    "REPRO-S201", node,
                    "raw write-mode open() on a cache-shaped path bypasses the "
                    "locked, atomic repro.persistence store APIs "
                    "(merge_save / union_merge_save / atomic_write_text)",
                ))
        # path.write_text(...) / path.write_bytes(...) on a cache-shaped receiver.
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"write_text", "write_bytes"}
            and _cache_shaped(module, node.func.value)
        ):
            findings.append(module.finding(
                "REPRO-S201", node,
                f".{node.func.attr}() on a cache-shaped path bypasses the "
                "locked, atomic repro.persistence store APIs",
            ))
    return findings


@rule(
    "REPRO-S202",
    "sqlite3.connect outside the persistence SQLite backend",
    exempt_prefixes=("src/repro/persistence/sqlite.py",),
)
def check_sqlite_outside_store(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if module.resolve(node.func) == "sqlite3.connect":
            findings.append(module.finding(
                "REPRO-S202", node,
                "sqlite3.connect outside repro/persistence/sqlite.py: the "
                "store backend owns connection pragmas, transactions, and "
                "the upsert-merge discipline",
            ))
    return findings


@rule(
    "REPRO-S203",
    "os.replace/os.rename outside the persistence atomic-write helper",
    exempt_prefixes=("src/repro/persistence/",),
)
def check_raw_atomic_replace(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve(node.func)
        if target in {"os.replace", "os.rename"}:
            findings.append(module.finding(
                "REPRO-S203", node,
                f"{target} outside repro.persistence: atomic replace-writes "
                "must flow through atomic_write_text so temp-file placement "
                "stays consistent",
            ))
    return findings
