"""Digest-completeness rules (REPRO-C3xx).

The cache/session stack is only sound if *every result-affecting knob*
reaches the content digests and cache keys that address persisted
state.  A knob that misses the digest is a silent-staleness bug: two
different configurations collide on one cache entry and the second one
serves the first one's results.  (PR 5 dodged exactly this by hand when
``frequency_screening`` was deliberately kept out of the design-cache
key — a decision that is *correct* but must be recorded, not implicit.)

These checks are semantic rather than syntactic, so they run against
the real classes:

* **REPRO-C301** — *digest probe*: for every
  :class:`~repro.runtime.config.RuntimeConfig` field, construct two
  configs differing only in that field and require
  :meth:`RuntimeConfig.digest` to differ.  A field whose variation does
  not move the digest — or that the probe cannot vary at all — fails.
* **REPRO-C302** — the same probe over every
  :class:`~repro.mapping.sabre.SabreParameters` field through the
  embedded ``routing`` payload.
* **REPRO-C303** — field-set mirror:
  :class:`~repro.evaluation.experiment.EvaluationSettings` and
  ``RuntimeConfig`` must declare identical field names, so a knob added
  to the evaluation layer cannot bypass the digested runtime layer.
* **REPRO-C304** — static key coverage: every
  :class:`~repro.design.engine.DesignOptions` field must appear in a
  stage cache-key expression (``key = (...)`` tuples referencing
  ``options.<field>``) in ``design/engine.py``; fields consumed by
  pre-memo dispatch instead are accepted via the baseline, each with a
  justification.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.findings import Finding

_CONFIG_PATH = "src/repro/runtime/config.py"
_SABRE_PATH = "src/repro/mapping/sabre.py"
_SETTINGS_PATH = "src/repro/evaluation/experiment.py"
_ENGINE_PATH = "src/repro/design/engine.py"

#: Known alternate values for strategy-style strings (validated fields
#: reject the generic ``value + suffix`` variant).
_STRATEGY_NAMES = ("bfs-greedy", "coordinate-descent", "analytic-guided")


def _generic_variant(value: Any) -> Any:
    """A value different from ``value`` under the same rough type."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.5
    if isinstance(value, str):
        if value in _STRATEGY_NAMES:
            return next(name for name in _STRATEGY_NAMES if name != value)
        return value + "-lint-probe"
    if isinstance(value, tuple):
        return value + (991_991,)
    if isinstance(value, list):
        return list(value) + [991_991]
    if value is None:
        return "lint-probe-store.json"
    if dataclasses.is_dataclass(value):
        return _vary_first_field(value)
    return None


def _vary_first_field(value: Any) -> Any:
    """A dataclass value with one probeable field changed."""
    for sub in dataclasses.fields(value):
        variant = _generic_variant(getattr(value, sub.name))
        if variant is None:
            continue
        try:
            return dataclasses.replace(value, **{sub.name: variant})
        except Exception:
            continue
    return None


#: Field-specific probe setup: extra base-field overrides applied to
#: *both* sides of the comparison, plus an explicit variant factory.
#: Needed where validation couples fields (``resume`` requires a
#: checkpoint) or constrains values (``passes`` must stay odd).
_SPECIAL_PROBES: Dict[str, Tuple[Dict[str, Any], Callable[[Any], Any]]] = {
    "resume": ({"checkpoint_path": "lint-probe-ck.sqlite"}, lambda value: not value),
    "passes": ({}, lambda value: value + 2),
    "restarts": ({}, lambda value: value + 1),
    "stall_threshold": ({}, lambda value: 9 if value is None else value + 1),
}


def probe_digest_fields(
    cls: type,
    *,
    digest: Optional[Callable[[Any], str]] = None,
    path: str = _CONFIG_PATH,
    rule: str = "REPRO-C301",
) -> List[Finding]:
    """Findings for every ``cls`` field whose variation leaves the digest fixed.

    ``cls`` must be a dataclass constructible with no arguments whose
    instances expose ``digest()`` (or pass an explicit ``digest``
    callable).  This is the check the mutation suite drives with a
    synthetic undigested field: popping a field from the digest payload
    must produce exactly one finding here.
    """
    digest_of = digest or (lambda obj: obj.digest())
    line = 1
    findings: List[Finding] = []
    for field in dataclasses.fields(cls):
        if not field.init:
            continue
        overrides, variant_of = _SPECIAL_PROBES.get(field.name, ({}, _generic_variant))
        try:
            base = cls(**overrides)
            variant_value = variant_of(getattr(base, field.name))
            if variant_value is None:
                raise ValueError("no generic variant for this field type")
            variant = dataclasses.replace(base, **{field.name: variant_value})
        except Exception as error:
            findings.append(Finding(
                rule=rule, path=path, line=line,
                message=(
                    f"field {field.name!r} of {cls.__name__} cannot be probed "
                    f"({error}); add an alternate value to "
                    "repro.analysis.digest_check so digest coverage stays "
                    "machine-checked"
                ),
                context=f"field {field.name}",
            ))
            continue
        if digest_of(base) == digest_of(variant):
            findings.append(Finding(
                rule=rule, path=path, line=line,
                message=(
                    f"field {field.name!r} of {cls.__name__} does not reach "
                    "the content digest: two configs differing only in it "
                    "collide on one cache/session key"
                ),
                context=f"field {field.name}",
            ))
    return findings


def runtime_config_findings() -> List[Finding]:
    """REPRO-C301 over the real :class:`RuntimeConfig`."""
    from repro.runtime.config import RuntimeConfig

    return probe_digest_fields(RuntimeConfig)


def routing_params_findings() -> List[Finding]:
    """REPRO-C302: every SabreParameters field must move the config digest."""
    from repro.mapping.sabre import SabreParameters
    from repro.runtime.config import RuntimeConfig

    findings: List[Finding] = []
    base_config = RuntimeConfig()
    base_digest = base_config.digest()
    for field in dataclasses.fields(SabreParameters):
        if not field.init:
            continue
        overrides, variant_of = _SPECIAL_PROBES.get(field.name, ({}, _generic_variant))
        del overrides  # routing fields never need base coupling
        try:
            variant_value = variant_of(getattr(base_config.routing, field.name))
            if variant_value is None:
                raise ValueError("no generic variant for this field type")
            routing = dataclasses.replace(
                base_config.routing, **{field.name: variant_value}
            )
            variant_digest = dataclasses.replace(base_config, routing=routing).digest()
        except Exception as error:
            findings.append(Finding(
                rule="REPRO-C302", path=_SABRE_PATH, line=1,
                message=(
                    f"routing field {field.name!r} cannot be probed ({error}); "
                    "add an alternate value to repro.analysis.digest_check"
                ),
                context=f"field {field.name}",
            ))
            continue
        if variant_digest == base_digest:
            findings.append(Finding(
                rule="REPRO-C302", path=_SABRE_PATH, line=1,
                message=(
                    f"SabreParameters field {field.name!r} does not reach "
                    "RuntimeConfig.digest(): routing results keyed by the "
                    "config digest would collide across different router "
                    "tunings"
                ),
                context=f"field {field.name}",
            ))
    return findings


def settings_mirror_findings() -> List[Finding]:
    """REPRO-C303: EvaluationSettings and RuntimeConfig must mirror field-wise."""
    from repro.evaluation.experiment import EvaluationSettings
    from repro.runtime.config import RuntimeConfig

    config_fields = {field.name for field in dataclasses.fields(RuntimeConfig)}
    settings_fields = {field.name for field in dataclasses.fields(EvaluationSettings)}
    findings: List[Finding] = []
    for name in sorted(settings_fields - config_fields):
        findings.append(Finding(
            rule="REPRO-C303", path=_SETTINGS_PATH, line=1,
            message=(
                f"EvaluationSettings field {name!r} has no RuntimeConfig "
                "mirror, so it bypasses the digested runtime layer; add it "
                "to RuntimeConfig (where the digest probe will cover it)"
            ),
            context=f"field {name}",
        ))
    for name in sorted(config_fields - settings_fields):
        findings.append(Finding(
            rule="REPRO-C303", path=_CONFIG_PATH, line=1,
            message=(
                f"RuntimeConfig field {name!r} has no EvaluationSettings "
                "mirror; RuntimeConfig.evaluation_settings() would fail or "
                "silently drop it"
            ),
            context=f"field {name}",
        ))
    return findings


def design_options_key_findings(
    root: Path,
    *,
    engine_source: Optional[str] = None,
    options_fields: Optional[Tuple[str, ...]] = None,
) -> List[Finding]:
    """REPRO-C304: every DesignOptions field in a stage cache key (or baselined).

    Statically collects ``options.<attr>`` references inside ``key =
    (...)`` assignments of ``design/engine.py``.  ``engine_source`` /
    ``options_fields`` exist for the mutation tests, which feed a
    doctored engine source.
    """
    if engine_source is None:
        engine_file = root / _ENGINE_PATH
        if not engine_file.exists():
            return []
        engine_source = engine_file.read_text(encoding="utf-8")
    if options_fields is None:
        from repro.design.engine import DesignOptions

        options_fields = tuple(
            field.name for field in dataclasses.fields(DesignOptions)
        )
    consumed = set()
    tree = ast.parse(engine_source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "key" for t in node.targets):
            continue
        for child in ast.walk(node.value):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == "options"
            ):
                consumed.add(child.attr)
    findings: List[Finding] = []
    for name in options_fields:
        if name in consumed:
            continue
        findings.append(Finding(
            rule="REPRO-C304", path=_ENGINE_PATH, line=1,
            message=(
                f"DesignOptions field {name!r} appears in no stage cache-key "
                "expression in design/engine.py: a plan cached under one "
                "value would be served for another; key it, or baseline it "
                "with a justification if it is provably result-transparent "
                "or consumed by pre-memo dispatch"
            ),
            context=f"field {name}",
        ))
    return findings


def project_findings(root: Path) -> List[Finding]:
    """All digest-completeness findings for the repository at ``root``.

    Returns nothing when the runtime package is not importable (linting
    a tree that is not this repo), so the AST rules still work anywhere.
    """
    if not (root / _CONFIG_PATH).exists():
        return []
    findings: List[Finding] = []
    findings.extend(runtime_config_findings())
    findings.extend(routing_params_findings())
    findings.extend(settings_mirror_findings())
    findings.extend(design_options_key_findings(root))
    return findings
