"""Invariant linter: static analysis for the repo's load-bearing contracts.

Four checker families, each encoding an invariant every PR has so far
defended by hand:

* **determinism** (``REPRO-D1xx``) — no unseeded RNG, wall-clock reads,
  or unordered iteration on any path that can reach results or digests;
* **lock/store discipline** (``REPRO-S2xx``) — every cache write flows
  through the locked, atomic :mod:`repro.persistence` store APIs;
* **digest completeness** (``REPRO-C3xx``) — every result-affecting
  knob of :class:`~repro.runtime.config.RuntimeConfig` /
  :class:`~repro.mapping.sabre.SabreParameters` /
  :class:`~repro.design.engine.DesignOptions` reaches the content
  digests and cache keys, proven by construction (digest probing);
* **fork/merge safety** (``REPRO-P4xx``) — worker payloads stay
  picklable-by-construction and metrics stay inside the associative
  counter/timer merge algebra.

Run it with ``python -m repro.analysis`` (or ``repro-design lint``);
see ``lint-baseline.json`` for the accepted-findings workflow and
``# repro-lint: disable=RULE`` for inline suppressions.
"""

from repro.analysis.findings import BaselineEntry, Finding, LintReport
from repro.analysis.runner import lint_source, lint_tree, main

__all__ = [
    "BaselineEntry",
    "Finding",
    "LintReport",
    "lint_source",
    "lint_tree",
    "main",
]
