"""Worker/supervision exception-discipline rules (REPRO-R5xx).

The supervised sweep path (PR 10) keeps a hard line between the two
kinds of exception handling it performs:

* **Fault boundaries** — the one place per layer where *any* failure is
  converted into a structured report for the supervisor to retry or
  quarantine.  These are explicitly marked with
  :func:`repro.faults.fault_boundary` so readers (and this linter) can
  see the swallow is intentional and the error is re-reported, not
  dropped.
* **Everything else** — handlers must name the exact exceptions they
  expect (``BrokenPipeError``, ``EOFError``, ``OSError``, ...).  A
  blanket ``except Exception`` anywhere else in the worker/supervision
  stack silently eats the very crashes the supervisor exists to detect,
  turning a retryable fault into a wrong answer.

* **REPRO-R501** — bare ``except:`` in a worker/supervision module.
  Bare handlers catch ``SystemExit`` / ``KeyboardInterrupt`` too, so an
  injected ``os._exit``-style fault or an operator Ctrl-C can be
  swallowed mid-task.
* **REPRO-R502** — ``except Exception`` / ``except BaseException`` in a
  worker/supervision module that neither re-raises nor sits inside a
  function decorated with ``fault_boundary``.

Both rules apply only to the modules that run under the supervisor
(:data:`_WORKER_PREFIXES`); handler style elsewhere in the repo is out
of scope for this family.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, rule

#: Repo-relative prefixes of the modules whose code runs inside (or
#: supervises) sweep worker processes.  Fixture tests pass synthetic
#: paths under these prefixes to exercise the rules.
_WORKER_PREFIXES = (
    "src/repro/evaluation/parallel.py",
    "src/repro/evaluation/supervisor.py",
    "src/repro/faults/",
)

_BLANKET_NAMES = {"Exception", "BaseException"}


def _in_worker_module(module: ModuleContext) -> bool:
    return any(module.path.startswith(prefix) for prefix in _WORKER_PREFIXES)


def _is_blanket_type(module: ModuleContext, node: Optional[ast.expr]) -> bool:
    """True when the handler type names Exception/BaseException.

    Covers the bare name, a dotted ``builtins.Exception``, and tuples
    that include either (``except (ValueError, Exception):`` is just as
    blanket as ``except Exception:``).
    """
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_is_blanket_type(module, element) for element in node.elts)
    if isinstance(node, ast.Name):
        return node.id in _BLANKET_NAMES
    if isinstance(node, ast.Attribute):
        resolved = module.resolve(node)
        return resolved is not None and resolved.split(".")[-1] in _BLANKET_NAMES
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a ``raise`` at its own level.

    Raises inside nested function definitions do not count: they run at
    some later call, not while the caught exception is in flight.
    """
    stack: List[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _decorator_name(node: ast.expr) -> Optional[str]:
    """Trailing identifier of a decorator expression (unwrapping calls)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _inside_fault_boundary(module: ModuleContext, node: ast.AST) -> bool:
    """True when ``node`` sits inside a ``@fault_boundary`` function."""
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in current.decorator_list:
                if _decorator_name(decorator) == "fault_boundary":
                    return True
        current = module.parent(current)
    return False


@rule(
    "REPRO-R501",
    "bare except in a worker/supervision module",
)
def check_bare_except(module: ModuleContext) -> Iterable[Finding]:
    if not _in_worker_module(module):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(module.finding(
                "REPRO-R501", node,
                "bare except in worker/supervision code also swallows "
                "SystemExit/KeyboardInterrupt; name the exceptions you "
                "expect, or use a @fault_boundary handler that reports them",
            ))
    return findings


@rule(
    "REPRO-R502",
    "blanket except Exception outside a sanctioned fault boundary",
)
def check_blanket_except(module: ModuleContext) -> Iterable[Finding]:
    if not _in_worker_module(module):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_blanket_type(module, node.type):
            continue
        if _reraises(node) or _inside_fault_boundary(module, node):
            continue
        findings.append(module.finding(
            "REPRO-R502",
            node,
            "except Exception in worker/supervision code swallows the "
            "crashes the supervisor exists to detect; catch specific "
            "exceptions, re-raise, or mark the function with "
            "@repro.faults.fault_boundary and report the failure",
        ))
    return findings
