"""Fork/merge-safety rules (REPRO-P4xx).

Sweep tasks are shipped to ``multiprocessing`` workers as pickled
payloads, and their metrics come back as snapshot deltas that the
parent folds together.  Two things keep that safe:

* **REPRO-P401** — objects crossing the fork boundary must be
  picklable-by-construction.  In any module that imports
  ``multiprocessing`` / ``concurrent.futures``, lambdas handed to pool
  mapping APIs and worker-payload dataclass fields holding callables or
  open handles are flagged: they pickle late (or never) and only fail
  under ``--jobs N``.
* **REPRO-P402** — the :class:`~repro.runtime.metrics.MetricsRegistry`
  merge algebra is associative only because every mutation goes through
  ``increment`` / ``increment_many`` / ``observe`` / ``merge``.
  Touching the private ``_counters`` / ``_timers`` dicts from outside
  ``repro/runtime/metrics.py`` can break the key-wise-sum contract that
  makes worker-delta merges order-independent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, rule

_POOL_METHODS = {
    "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async", "submit",
}
_UNPICKLABLE_ANNOTATION_TOKENS = ("Callable", "TextIO", "BinaryIO", "IO[")
_FORK_MODULES = {"multiprocessing", "concurrent"}


def _uses_fork(module: ModuleContext) -> bool:
    return bool(_FORK_MODULES & set(module.imported_modules))


def _is_dataclass_def(module: ModuleContext, node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = module.resolve(target)
        if resolved in {"dataclasses.dataclass", "dataclass"}:
            return True
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
    return False


@rule("REPRO-P401", "unpicklable construct in a multiprocessing module")
def check_fork_payloads(module: ModuleContext) -> Iterable[Finding]:
    if not _uses_fork(module):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _POOL_METHODS:
                values = list(node.args) + [kw.value for kw in node.keywords]
                for value in values:
                    if isinstance(value, ast.Lambda):
                        findings.append(module.finding(
                            "REPRO-P401", value,
                            f"lambda passed to .{node.func.attr}(): lambdas do "
                            "not pickle, so this fails only under --jobs N; "
                            "use a module-level function",
                        ))
        elif isinstance(node, ast.ClassDef) and _is_dataclass_def(module, node):
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                annotation = ast.unparse(statement.annotation)
                if any(token in annotation for token in _UNPICKLABLE_ANNOTATION_TOKENS):
                    findings.append(module.finding(
                        "REPRO-P401", statement,
                        f"dataclass field annotated {annotation!r} in a "
                        "multiprocessing module: callables and open handles "
                        "are not picklable-by-construction worker payload",
                    ))
    return findings


@rule(
    "REPRO-P402",
    "direct access to MetricsRegistry private state",
    exempt_prefixes=("src/repro/runtime/metrics.py",),
)
def check_metrics_algebra(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr in {"_counters", "_timers"}:
            findings.append(module.finding(
                "REPRO-P402", node,
                f"direct .{node.attr} access outside repro/runtime/metrics.py: "
                "only the increment/observe/merge API keeps the snapshot "
                "merge algebra associative (counters sum, timers sum "
                "count/total_s)",
            ))
    return findings
