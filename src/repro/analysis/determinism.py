"""Determinism rules (REPRO-D1xx).

The repo's core contract is byte-identical output for any ``--jobs``
count, backend, or thread count.  Every violation class these rules
catch has the same failure shape: a value that depends on process
state (global RNG, wall clock, filesystem enumeration order, hash
order) leaks into results, cache keys, or serialized artifacts, and
the divergence only shows up under a different scheduler or a
different machine.

* **REPRO-D101** — unseeded or global RNG (``np.random.*`` legacy
  functions, ``random.*`` module functions, seedless
  ``default_rng()`` / ``Random()``).
* **REPRO-D102** — wall-clock reads (``time.time``,
  ``datetime.now``, …).  ``time.perf_counter`` and friends stay legal:
  they feed the metrics timers, which observe but never influence
  results.
* **REPRO-D103** — filesystem enumeration (``os.listdir``,
  ``Path.iterdir`` / ``.glob``, ``glob.glob``) not directly wrapped in
  ``sorted(...)``.
* **REPRO-D104** — iterating a set literal/constructor (hash order).
* **REPRO-D105** — ``json.dump(s)`` without ``sort_keys=True`` outside
  the canonical serialization layer (``repro.persistence``), which owns
  the entry-payload byte format.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleContext, call_keyword, rule, truthy_constant

#: numpy.random attributes that are classes/constructors rather than
#: calls on the hidden global RandomState.
_NP_CONSTRUCTORS = {
    "default_rng", "SeedSequence", "RandomState",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}
#: numpy.random attributes that only wrap an existing seeded generator.
_NP_WRAPPERS = {"Generator", "BitGenerator"}

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_FS_FUNCTIONS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_METHODS = {"iterdir", "glob", "rglob"}


def _is_seedless(call: ast.Call) -> bool:
    return not call.args and not call.keywords


@rule("REPRO-D101", "unseeded or global RNG in a result-affecting module")
def check_unseeded_rng(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve(node.func)
        if target is None:
            continue
        if target.startswith("numpy.random."):
            attr = target[len("numpy.random."):]
            if attr in _NP_WRAPPERS or "." in attr:
                continue
            if attr in _NP_CONSTRUCTORS:
                if _is_seedless(node):
                    findings.append(module.finding(
                        "REPRO-D101", node,
                        f"numpy.random.{attr}() without an explicit seed: results "
                        "depend on OS entropy; derive a seed (see repro.utils.rng)",
                    ))
            else:
                findings.append(module.finding(
                    "REPRO-D101", node,
                    f"numpy.random.{attr} uses the hidden global RandomState; "
                    "use a seeded np.random.Generator instead",
                ))
        elif target == "random.Random":
            if _is_seedless(node):
                findings.append(module.finding(
                    "REPRO-D101", node,
                    "random.Random() without a seed: results depend on OS entropy",
                ))
        elif target == "random.SystemRandom":
            findings.append(module.finding(
                "REPRO-D101", node,
                "random.SystemRandom is nondeterministic by design; use a "
                "seeded generator",
            ))
        elif target.startswith("random.") and target.count(".") == 1:
            findings.append(module.finding(
                "REPRO-D101", node,
                f"{target} uses the process-global RNG; use a seeded "
                "random.Random or np.random.Generator instance",
            ))
    return findings


@rule("REPRO-D102", "wall-clock read in a result-affecting module")
def check_wall_clock(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve(node.func)
        if target in _WALL_CLOCK:
            findings.append(module.finding(
                "REPRO-D102", node,
                f"{target}() reads the wall clock; results and cache keys must "
                "not depend on when the code ran (time.perf_counter is fine "
                "for metrics timers)",
            ))
    return findings


@rule("REPRO-D103", "unsorted filesystem enumeration")
def check_unsorted_fs(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve(node.func)
        flagged = None
        if target in _FS_FUNCTIONS:
            flagged = f"{target}()"
        elif (
            target is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS
        ):
            flagged = f".{node.func.attr}()"
        if flagged is None or module.is_sorted_wrapped(node):
            continue
        findings.append(module.finding(
            "REPRO-D103", node,
            f"{flagged} enumerates the filesystem in OS order; wrap it in "
            "sorted(...) so downstream output cannot depend on directory "
            "layout",
        ))
    return findings


@rule("REPRO-D104", "iteration over a set (hash order)")
def check_set_iteration(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []

    def is_set_expr(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in {"set", "frozenset"}
            and expr.func.id not in module.aliases
        )

    for node in ast.walk(module.tree):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            if is_set_expr(expr):
                findings.append(module.finding(
                    "REPRO-D104", expr,
                    "iterating a set visits elements in hash order; sort it "
                    "(or iterate the original sequence) before the order can "
                    "reach output or digests",
                ))
    return findings


@rule(
    "REPRO-D105",
    "json.dump(s) without sort_keys=True outside the canonical "
    "serialization layer",
    exempt_prefixes=("src/repro/persistence/",),
)
def check_canonical_json(module: ModuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve(node.func)
        if target not in {"json.dump", "json.dumps"}:
            continue
        if truthy_constant(call_keyword(node, "sort_keys")):
            continue
        findings.append(module.finding(
            "REPRO-D105", node,
            f"{target} without sort_keys=True serializes dict insertion "
            "order; canonical JSON keeps artifacts byte-stable (the "
            "repro.persistence entry codecs are the one exempt layer)",
        ))
    return findings
