"""Shared AST machinery for the file-level lint rules.

Every file-level rule is a function ``(module: ModuleContext) ->
Iterable[Finding]`` registered through :func:`rule`.  The
:class:`ModuleContext` precomputes what most rules need:

* an **import alias map** so dotted call targets resolve to canonical
  paths (``np.random.default_rng`` → ``numpy.random.default_rng`` even
  under ``import numpy as np`` or ``from numpy import random``);
* a **parent map** so rules can ask structural questions ("is this
  ``os.listdir`` call the direct argument of ``sorted()``?");
* the raw source lines for suppression comments and finding contexts.

Rules are purely syntactic: they never import the module under
analysis, so the linter can run on broken or dependency-missing files
and on synthetic fixture snippets in tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, context_of

RuleFunc = Callable[["ModuleContext"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule: code, summary, path exemptions, body."""

    code: str
    summary: str
    func: RuleFunc
    #: Repo-relative posix path prefixes the rule does not apply to
    #: (e.g. the persistence package *is* the canonical write layer, so
    #: the raw-write rules exempt it).
    exempt_prefixes: Tuple[str, ...] = ()


_REGISTRY: Dict[str, Rule] = {}


def rule(code: str, summary: str, exempt_prefixes: Tuple[str, ...] = ()):
    """Register a file-level rule under ``code``."""

    def decorate(func: RuleFunc) -> RuleFunc:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code, summary, func, exempt_prefixes)
        return func

    return decorate


def registered_rules() -> List[Rule]:
    return [(_REGISTRY[code]) for code in sorted(_REGISTRY)]


@dataclass
class ModuleContext:
    """One parsed module plus the lookup structures rules share."""

    path: str                       # repo-relative posix path
    tree: ast.Module
    source_lines: Sequence[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    parents: Dict[int, ast.AST] = field(default_factory=dict)
    imported_modules: frozenset = frozenset()

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleContext":
        tree = ast.parse(source)
        context = cls(path=path, tree=tree, source_lines=source.splitlines())
        context.aliases = _import_aliases(tree)
        context.parents = _parent_map(tree)
        context.imported_modules = frozenset(
            root.split(".")[0] for root in context.aliases.values()
        )
        return context

    # -- helpers rules call -------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted path of a Name/Attribute chain, or None.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` if ``np`` aliases ``numpy``; a
        chain whose base name was never imported resolves to None, so a
        local variable that happens to be called ``random`` cannot
        trigger the RNG rules.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self.aliases.get(current.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(id(node))

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=code, path=self.path, line=line, message=message,
            context=context_of(self.source_lines, line),
        )

    def is_sorted_wrapped(self, node: ast.AST) -> bool:
        """True when ``node`` is a direct argument of ``sorted(...)``."""
        parent = self.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and node in parent.args
        )

    def name_tokens(self, node: ast.AST) -> List[str]:
        """Lower-cased identifier/string tokens inside an expression.

        Used by the store-discipline rules to decide whether a path
        expression "looks cache-shaped" (mentions cache/store/
        checkpoint/shard anywhere in its names or literals).
        """
        tokens: List[str] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                tokens.append(child.id.lower())
            elif isinstance(child, ast.Attribute):
                tokens.append(child.attr.lower())
            elif isinstance(child, ast.Constant) and isinstance(child.value, str):
                tokens.append(child.value.lower())
            elif isinstance(child, ast.arg):
                tokens.append(child.arg.lower())
        return tokens


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name → canonical dotted origin, for every import in the module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                origin = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay project-local
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def truthy_constant(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)
