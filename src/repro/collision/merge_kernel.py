"""Fused single-pass merge kernels behind the interval screening engine.

:mod:`repro.collision.screening` reduces every Algorithm 3 candidate
ranking to one computation: given each trial's violating intervals on
the candidate-frequency axis, count — for every candidate — the trials
whose interval *union* contains it, once with every interval widened by
the float-safety epsilon (an upper bound on the joint kernel's count)
and once narrowed by it (a lower bound).  PR 5 implemented that as a
chain of per-ranking numpy ops (``argsort`` + flattened-index gathers +
a shared merge + a disputed-trial re-merge), whose dispatch constants
dominated the cold path.  This module is the fused replacement:

* **In-band packing.**  Each interval becomes a single ``uint64``: the
  high 32 bits hold the low endpoint's float32 bits remapped to a
  sort-preserving unsigned key, the low 32 bits hold the high
  endpoint's raw float32 bits.  One ``np.sort`` on the packed matrix
  replaces the ``argsort``/take/take shuffle of three parallel arrays,
  and unpacking is pure bit arithmetic.  Infinite interval tails are
  clamped by the caller to finite band sentinels (:data:`CLAMP_GHZ`),
  so the sweep never meets a non-finite value.
* **One sweep, both spaces.**  The widened and narrowed merges share
  the sorted order and the running maximum of high endpoints; their
  component boundaries differ only in the decision threshold on the
  low-vs-previous-high gap (``> +2 eps`` widened, ``> -2 eps``
  narrowed).  Both are decided in a single pass over the sorted
  matrix — no dispute detection, no re-merge round trip.
* **Slot batching.**  Rows carry a *slot* index (one slot per ranked
  qubit), and the per-candidate counting lands every component in a
  ``(space, slot, bin)`` segmented histogram — so one kernel invocation
  prices an entire BFS frontier of local regions, amortizing every
  dispatch constant across the batch.

Three backends implement the identical contract and are selected with
``REPRO_SCREENING_BACKEND=python|numpy|native`` (default ``auto``:
``native`` when a C toolchain is available, ``numpy`` otherwise):

* ``numpy`` — the vectorized formulation above; the portable fast path.
* ``native`` — a small C kernel compiled once with the system ``cc``
  into a module-local build directory and loaded through ``ctypes``;
  it fuses sort, sweep, and counting into one pass per row.  When no
  toolchain (or no uniform candidate grid) is available it silently
  degrades to ``numpy`` — no third-party dependency is ever required.
* ``python`` — a scalar reference implementation (same float32 merge
  arithmetic, same float64 binning) used by the property suite to pin
  the other backends; orders of magnitude slower.

Every backend returns bit-identical ``(lower, upper)`` counts; the
correctness argument (why the two-threshold merge bounds the joint
kernel's counts) lives in :mod:`repro.collision.screening`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import warnings
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import faults

#: Finite stand-ins for the infinite tails of open-ended intervals
#: (``|x| > c34`` and the far condition-6 band).  Candidate grids live
#: within a fraction of a GHz of the 5.0-5.34 GHz band and every finite
#: endpoint is within a few GHz of it, so clamping at +-1e4 GHz changes
#: no merge decision and no candidate count while keeping the packed
#: sweep free of inf/NaN arithmetic.
CLAMP_GHZ = 1.0e4

#: Per-row sentinel padding interval: sorts after every real interval,
#: merges only with other sentinels, and bins past the last candidate,
#: contributing exactly zero to every count.  Lets rows of different
#: interval counts share one rectangular matrix.
SENTINEL = np.float32(3.0e38)

_ENV_VAR = "REPRO_SCREENING_BACKEND"
_BACKENDS = ("python", "numpy", "native")

_active_backend: Optional[str] = None
_native_kernel: Optional[Callable] = None
_native_failed = False


def _count_fallback(name: str) -> None:
    """Count a silent backend degradation in the metrics registry.

    Lazy import: this module must stay importable with zero runtime-layer
    dependencies (the property suite loads it standalone), and the
    counters only matter on the cold degradation paths.
    """
    from repro.runtime.metrics import global_metrics

    global_metrics().increment(name)


class CandidateBins:
    """Maps interval endpoints to per-candidate membership counts.

    ``counts(lows, highs)`` returns ``#{j : lows[j] < f < highs[j]}``
    for every candidate ``f`` of the (ascending) grid.  Valid for any
    interval collection with ``lows[j] < highs[j]`` (the identity
    ``[lo < f < hi] = [lo < f] - [hi <= f]`` holds per interval); when
    the intervals are pairwise disjoint within a trial, summing over a
    trial's intervals counts membership in their union.

    No endpoint is ever sorted: each lands in a candidate bin — by a
    multiply-floor on the uniform allocator grid, or one
    ``searchsorted`` against the few-dozen-entry grid otherwise — and a
    cumulative histogram turns bins into per-candidate counts.  The grid
    and the binning arithmetic stay in float64, so binning adds rounding
    far below even the single-family epsilon; float32 *endpoint* arrays
    (the merged path's matrices) are covered by the larger merged-path
    epsilon their callers use.  Exact grid/endpoint coincidences
    therefore always stay inside the widened/narrowed uncertainty the
    caller accounts for.
    """

    def __init__(self, candidates: np.ndarray) -> None:
        self.num = candidates.shape[0]
        self.candidates = np.asarray(candidates, dtype=float)
        steps = np.diff(self.candidates)
        self.uniform = steps.size > 0 and bool(
            (np.abs(steps - steps[0]) < 1e-9 * max(1.0, abs(steps[0]))).all()
        )
        if self.uniform:
            self.origin = float(self.candidates[0])
            self.inverse_step = float(1.0 / steps[0])

    def start_bins(self, lows: np.ndarray) -> np.ndarray:
        """Per endpoint: the first candidate index with ``f > lo``."""
        if not self.uniform:
            return np.searchsorted(self.candidates, lows, side="right")
        raw = np.floor((lows - self.origin) * self.inverse_step) + 1.0
        return np.clip(raw, 0, self.num).astype(np.int64)

    def end_bins(self, highs: np.ndarray) -> np.ndarray:
        """Per endpoint: the first candidate index with ``f >= hi``."""
        if not self.uniform:
            return np.searchsorted(self.candidates, highs, side="left")
        raw = np.ceil((highs - self.origin) * self.inverse_step)
        return np.clip(raw, 0, self.num).astype(np.int64)

    def counts(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        num = self.num
        # [lo_j < f_c]  <=>  c >= start_bin_j;  [hi_j <= f_c]  <=>  c >= end_bin_j.
        started = np.cumsum(
            np.bincount(self.start_bins(lows), minlength=num + 1)[:num]
        )
        ended = np.cumsum(
            np.bincount(self.end_bins(highs), minlength=num + 1)[:num]
        )
        return started - ended

    def bound_counts(
        self, lows: np.ndarray, highs: np.ndarray, epsilon
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(upper, lower) membership counts of intervals widened and
        narrowed by ``epsilon``, in one fused binning pass (the widened
        and narrowed endpoint arrays share segmented histograms)."""
        num = self.num
        size = lows.shape[0]
        start_bins = self.start_bins(np.concatenate((lows - epsilon, lows + epsilon)))
        end_bins = self.end_bins(np.concatenate((highs + epsilon, highs - epsilon)))
        start_bins[size:] += num + 1
        end_bins[size:] += num + 1
        started = np.bincount(
            start_bins, minlength=2 * (num + 1)
        ).reshape(2, num + 1)[:, :num].cumsum(axis=1)
        ended = np.bincount(
            end_bins, minlength=2 * (num + 1)
        ).reshape(2, num + 1)[:, :num].cumsum(axis=1)
        diff = started - ended
        return diff[0], diff[1]


#: Bounded memo of :class:`CandidateBins` by grid content.  Every ranking
#: of one allocation shares a grid, and whole sweeps share a handful of
#: grids, so the uniformity check and float64 copy run once per grid
#: instead of once per ranking.
_BINS_MEMO: Dict[bytes, CandidateBins] = {}
_BINS_MEMO_LIMIT = 64


def candidate_bins(candidates: np.ndarray) -> CandidateBins:
    """The (memoized) :class:`CandidateBins` for one candidate grid."""
    key = np.ascontiguousarray(candidates).tobytes()
    bins = _BINS_MEMO.get(key)
    if bins is None:
        bins = CandidateBins(candidates)
        while len(_BINS_MEMO) >= _BINS_MEMO_LIMIT:
            _BINS_MEMO.pop(next(iter(_BINS_MEMO)))
        _BINS_MEMO[key] = bins
    return bins


# ---------------------------------------------------------------------------
# In-band packing: (low, high) -> one sortable uint64 per interval.
# ---------------------------------------------------------------------------


def _sortable_keys(values: np.ndarray) -> np.ndarray:
    """Float32 bit patterns remapped so unsigned order == float order.

    The standard IEEE-754 trick: flip the sign bit of non-negative
    floats, complement the bits of negative ones.  Exact and invertible
    (:func:`_keys_to_floats`), so sorting packed integers sorts by the
    original float32 low endpoints with zero rounding.  Branchless: the
    arithmetic shift spreads the sign bit into an all-ones xor mask for
    negatives, leaving just the sign flip for non-negatives.
    """
    bits = values.view(np.uint32)
    mask = (values.view(np.int32) >> 31).view(np.uint32)
    return bits ^ (mask | np.uint32(0x80000000))


def _keys_to_floats(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_sortable_keys` (same branchless shape)."""
    mask = (keys.view(np.int32) >> 31).view(np.uint32)
    return (keys ^ (~mask | np.uint32(0x80000000))).view(np.float32)


#: uint32 views of a uint64 word are position-dependent: the sort key
#: must land in the numerically-high half.
_HIGH_WORD = 1 if sys.byteorder == "little" else 0


def pack_intervals(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Pack float32 ``(lows, highs)`` matrices into one uint64 matrix.

    High 32 bits: the low endpoint's sortable key (primary sort key).
    Low 32 bits: the high endpoint's raw bits (an arbitrary but
    deterministic tie-break; equal-low intervals merge identically in
    any order because the sweep only reads the running maximum).

    Written through a uint32 view of the uint64 buffer — two plain
    stores instead of widening casts, shifts, and an or.
    """
    lows = np.ascontiguousarray(lows, dtype=np.float32)
    highs = np.ascontiguousarray(highs, dtype=np.float32)
    packed = np.empty(lows.shape, dtype=np.uint64)
    words = packed.view(np.uint32).reshape(lows.shape + (2,))
    words[..., _HIGH_WORD] = _sortable_keys(lows)
    words[..., 1 - _HIGH_WORD] = highs.view(np.uint32)
    return packed


def unpack_intervals(packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Recover the float32 ``(lows, highs)`` matrices from packed form."""
    words = packed.view(np.uint32).reshape(packed.shape + (2,))
    lows = _keys_to_floats(np.ascontiguousarray(words[..., _HIGH_WORD]))
    highs = np.ascontiguousarray(words[..., 1 - _HIGH_WORD]).view(np.float32)
    return lows, highs


# ---------------------------------------------------------------------------
# The numpy backend: vectorized pack -> sort -> sweep -> segmented count.
# ---------------------------------------------------------------------------


#: Target bytes per float32 endpoint matrix chunk.  Row blocks around
#: this size keep the dozen-or-so full-matrix temporaries of one chunk
#: cache-resident, which measures ~35% faster per row than streaming the
#: whole multi-thousand-row matrix through memory.  Chunking is
#: bit-transparent: components never span rows, per-chunk counts are
#: exact int64 partial sums, and the lower clamp happens once at the end.
_CHUNK_BYTES = 98304


def _numpy_union_bounds(
    lows: np.ndarray,
    highs: np.ndarray,
    slots: np.ndarray,
    num_slots: int,
    bins: CandidateBins,
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray]:
    rows, cols = lows.shape
    chunk_rows = max(128, _CHUNK_BYTES // (cols * 4))
    counts = None
    for index in range(0, rows, chunk_rows):
        block = slice(index, index + chunk_rows)
        part = _numpy_counts_chunk(
            lows[block], highs[block], slots[block], num_slots, bins, epsilon
        )
        counts = part if counts is None else counts + part
    upper = counts[:num_slots]
    lower = counts[num_slots:2 * num_slots]
    np.maximum(lower, 0, out=lower)
    return lower, upper


def _numpy_counts_chunk(
    lows: np.ndarray,
    highs: np.ndarray,
    slots: np.ndarray,
    num_slots: int,
    bins: CandidateBins,
    epsilon: float,
) -> np.ndarray:
    rows, _cols = lows.shape
    packed = pack_intervals(lows, highs)
    # Callers pre-order columns so rows arrive nearly sorted; timsort
    # exploits that, the default introsort cannot.
    packed.sort(axis=1, kind="stable")
    lows_sorted, highs_sorted = unpack_intervals(packed)
    running_max = np.maximum.accumulate(highs_sorted, axis=1)

    # Low-vs-previous-high gap per trial; the first column's sentinel
    # always starts a component in both spaces.
    gap = np.empty_like(lows_sorted)
    gap[:, 0] = SENTINEL
    np.subtract(lows_sorted[:, 1:], running_max[:, :-1], out=gap[:, 1:])

    eps = np.float32(epsilon)
    two_eps = np.float32(2.0) * eps
    num = bins.num
    stride = num + 1
    start_parts: list = []
    end_parts: list = []

    def add_components(flat_starts, lows_flat, rmax_flat, row_slots, spaces):
        """Bin the components starting at ``flat_starts`` for each
        ``(segment_base, sign)`` space and append the endpoint bins.

        Column 0 always starts a component, so in flat index space every
        component ends one element before the next start (the final one
        at the last element) — no end masks or full-matrix boolean
        extractions needed.
        """
        ends = np.empty_like(flat_starts)
        ends[:-1] = flat_starts[1:] - 1
        ends[-1] = lows_flat.shape[0] - 1
        # The epsilon offset must happen in float64 to match the scalar
        # reference; a Python float scalar would NOT upcast the float32
        # gather (weak promotion), so convert explicitly.  The gathers
        # are component-sized, so the conversion is cheap.
        low64 = lows_flat[flat_starts].astype(np.float64)
        high64 = rmax_flat[ends].astype(np.float64)
        segment = row_slots[flat_starts // _cols] * stride
        if len(spaces) == 2:
            # Both spaces from one gather: a single fused binning pass
            # over the concatenated widened + narrowed endpoints.
            start_vals = np.concatenate((low64 - epsilon, low64 + epsilon))
            end_vals = np.concatenate((high64 + epsilon, high64 - epsilon))
            offsets = np.concatenate(
                (segment, segment + num_slots * stride)
            )
        else:
            ((segment_base, sign),) = spaces
            start_vals = low64 - sign * epsilon
            end_vals = high64 + sign * epsilon
            offsets = segment + segment_base * stride if segment_base else segment
        start_parts.append(bins.start_bins(start_vals) + offsets)
        end_parts.append(bins.end_bins(end_vals) + offsets)

    # Rows where some gap sits inside the 2-eps window need per-space
    # merges (widening vs narrowing flips a decision); everywhere else
    # one shared component extraction serves both spaces bit-identically
    # (gap > 0 agrees with both per-space thresholds once |gap| clears
    # the window, and the same float32 gap values feed all three tests).
    # Disputed rows still go through the shared extraction — their
    # components are routed to a discarded trash segment so the
    # col-0-always-starts invariant of the flat end trick holds without
    # compacting the (much larger) undisputed submatrix.
    disputed = (np.abs(gap) <= two_eps).any(axis=1)
    any_disputed = bool(disputed.any())
    trash = 2 * num_slots
    shared_slots = np.where(disputed, trash, slots) if any_disputed else slots
    starts = gap > np.float32(0.0)
    starts[:, 0] = True
    add_components(
        np.flatnonzero(starts), lows_sorted.ravel(), running_max.ravel(),
        shared_slots, ((0, 1.0), (num_slots, -1.0)),
    )
    if any_disputed:
        bad_rows = np.flatnonzero(disputed)
        sub_lows = lows_sorted[bad_rows].ravel()
        sub_rmax = running_max[bad_rows].ravel()
        sub_gap = gap[bad_rows]
        sub_slots = slots[bad_rows]
        # Widened intervals [lo - eps, hi + eps] stay disjoint across a
        # gap above +2 eps; narrowed ones [lo + eps, hi - eps] across
        # -2 eps.
        for segment_base, sign, margin in (
            (0, 1.0, two_eps), (num_slots, -1.0, -two_eps)
        ):
            sub_starts = sub_gap > margin
            sub_starts[:, 0] = True
            add_components(
                np.flatnonzero(sub_starts), sub_lows, sub_rmax, sub_slots,
                ((segment_base, sign),),
            )

    # Trash blocks: widened components of disputed rows land at block
    # 2*num_slots, narrowed ones at 3*num_slots.
    total = (3 * num_slots + 1) * stride
    started = np.bincount(np.concatenate(start_parts), minlength=total)
    ended = np.bincount(np.concatenate(end_parts), minlength=total)
    # Raw (unclamped) per-chunk counts; the caller sums chunks and
    # clamps the lower space once, matching the unchunked arithmetic.
    return (
        (started - ended)
        .reshape(3 * num_slots + 1, stride)[:, :num]
        .cumsum(axis=1)
    )


# ---------------------------------------------------------------------------
# The python backend: scalar reference with identical arithmetic.
# ---------------------------------------------------------------------------


def _python_union_bounds(
    lows: np.ndarray,
    highs: np.ndarray,
    slots: np.ndarray,
    num_slots: int,
    bins: CandidateBins,
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray]:
    rows, cols = lows.shape
    num = bins.num
    lower = np.zeros((num_slots, num), dtype=np.int64)
    upper = np.zeros((num_slots, num), dtype=np.int64)
    eps32 = np.float32(epsilon)
    two_eps = np.float32(2.0) * eps32
    packed_rows = pack_intervals(lows, highs)

    def add_component(out, slot, low, high, widen):
        low64 = float(low) - epsilon if widen else float(low) + epsilon
        high64 = float(high) + epsilon if widen else float(high) - epsilon
        start = int(bins.start_bins(np.array([low64]))[0])
        end = int(bins.end_bins(np.array([high64]))[0])
        # Mirror the vectorized histogram difference exactly, including
        # collapsed components whose counting identity goes negative
        # before the final clamp (e.g. a narrowed sliver).
        if start < end:
            out[slot, start:end] += 1
        elif end < start:
            out[slot, end:start] -= 1

    for row in range(rows):
        slot = int(slots[row])
        ordered = np.sort(packed_rows[row])
        row_lows, row_highs = unpack_intervals(ordered)
        running_max = row_highs[0]
        open_w = open_n = (row_lows[0], running_max)
        for col in range(1, cols):
            low = row_lows[col]
            gap = np.float32(low) - np.float32(running_max)
            if gap > two_eps:
                add_component(upper, slot, open_w[0], running_max, True)
                open_w = (low, None)
            if gap > -two_eps:
                add_component(lower, slot, open_n[0], running_max, False)
                open_n = (low, None)
            running_max = max(running_max, row_highs[col])
        add_component(upper, slot, open_w[0], running_max, True)
        add_component(lower, slot, open_n[0], running_max, False)
    np.maximum(lower, 0, out=lower)
    return lower, upper


# ---------------------------------------------------------------------------
# The native backend: one C pass per row, compiled on demand behind cc.
# ---------------------------------------------------------------------------

_NATIVE_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <pthread.h>
#include <unistd.h>

/* Sort-preserving unsigned remap of float32 bits (see _sortable_keys). */
static inline uint32_t sortable_key(float value) {
    uint32_t bits;
    memcpy(&bits, &value, 4);
    return (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
}

static inline float key_to_float(uint32_t key) {
    uint32_t bits = (key & 0x80000000u) ? (key & 0x7FFFFFFFu) : ~key;
    float value;
    memcpy(&value, &bits, 4);
    return value;
}

static inline float high_of(uint64_t packed) {
    uint32_t bits = (uint32_t)(packed & 0xFFFFFFFFu);
    float value;
    memcpy(&value, &bits, 4);
    return value;
}

static inline uint32_t float_bits(float value) {
    uint32_t bits;
    memcpy(&bits, &value, 4);
    return bits;
}

static inline int64_t clip_bin(double raw, int64_t num) {
    if (!(raw > 0.0)) return 0;           /* also catches NaN */
    if (raw > (double)num) return num;
    return (int64_t)raw;
}

/* Diff-array update for one merged component: counts[start..end) += 1
   via counts[start] += 1, counts[end] -= 1 (prefix-summed at the end).
   Matches the histogram-difference arithmetic of the numpy backend,
   including negative narrowed spans before the final clamp. */
static inline void add_component(
    int64_t *diff, double lo, double hi,
    double origin, double inv_step, int64_t num
) {
    int64_t start = clip_bin(floor((lo - origin) * inv_step) + 1.0, num);
    int64_t end = clip_bin(ceil((hi - origin) * inv_step), num);
    diff[start] += 1;
    diff[end] -= 1;
}

/* One worker's slice of rows, accumulating into a private diff buffer.
   Row order within a slice and slice boundaries never change the
   result: every update is an exact int64 increment, and integer
   addition is associative, so any partition sums to the same counts. */
typedef struct {
    const float *lows;
    const float *highs;
    const int64_t *slots;
    int64_t row_start, row_end, cols, num_slots, stride, num;
    double origin, inv_step, epsilon;
    int64_t *diff;   /* (2 * num_slots, stride), private to this worker */
    int failed;
} merge_task;

static void *merge_rows(void *arg) {
    merge_task *task = (merge_task *)arg;
    int64_t cols = task->cols;
    uint64_t *packed = (uint64_t *)malloc((size_t)cols * sizeof(uint64_t));
    if (!packed) { task->failed = 1; return NULL; }
    double origin = task->origin, inv_step = task->inv_step;
    double epsilon = task->epsilon;
    int64_t num = task->num, stride = task->stride;
    float two_eps = 2.0f * (float)epsilon;

    for (int64_t row = task->row_start; row < task->row_end; row++) {
        const float *row_lows = task->lows + row * cols;
        const float *row_highs = task->highs + row * cols;
        int64_t *upper_diff = task->diff + task->slots[row] * stride;
        int64_t *lower_diff =
            task->diff + (task->num_slots + task->slots[row]) * stride;
        for (int64_t col = 0; col < cols; col++) {
            packed[col] = ((uint64_t)sortable_key(row_lows[col]) << 32)
                        | (uint64_t)float_bits(row_highs[col]);
        }
        /* Insertion sort: rows are a few dozen intervals, mostly in
           near-sorted family order, where this beats qsort dispatch. */
        for (int64_t i = 1; i < cols; i++) {
            uint64_t value = packed[i];
            int64_t j = i - 1;
            while (j >= 0 && packed[j] > value) {
                packed[j + 1] = packed[j];
                j--;
            }
            packed[j + 1] = value;
        }
        float running_max = high_of(packed[0]);
        float open_w = key_to_float((uint32_t)(packed[0] >> 32));
        float open_n = open_w;
        for (int64_t col = 1; col < cols; col++) {
            float low = key_to_float((uint32_t)(packed[col] >> 32));
            float gap = low - running_max;
            if (gap > two_eps) {
                add_component(upper_diff, (double)open_w - epsilon,
                              (double)running_max + epsilon,
                              origin, inv_step, num);
                open_w = low;
            }
            if (gap > -two_eps) {
                add_component(lower_diff, (double)open_n + epsilon,
                              (double)running_max - epsilon,
                              origin, inv_step, num);
                open_n = low;
            }
            float high = high_of(packed[col]);
            if (high > running_max) running_max = high;
        }
        add_component(upper_diff, (double)open_w - epsilon,
                      (double)running_max + epsilon, origin, inv_step, num);
        add_component(lower_diff, (double)open_n + epsilon,
                      (double)running_max - epsilon, origin, inv_step, num);
    }
    free(packed);
    return NULL;
}

static int64_t thread_budget(int64_t rows) {
    const char *env = getenv("REPRO_SCREENING_THREADS");
    long want = 0;
    if (env && env[0]) want = strtol(env, NULL, 10);
    if (want <= 0) {
        long nproc = sysconf(_SC_NPROCESSORS_ONLN);
        want = nproc > 0 ? nproc : 1;
    }
    if (want > 16) want = 16;
    /* Spawning costs ~50us/thread; keep slices >= 512 rows. */
    int64_t by_rows = rows / 512;
    if (want > by_rows) want = by_rows;
    return want > 1 ? want : 1;
}

int fused_union_bounds(
    const float *lows, const float *highs,
    int64_t rows, int64_t cols,
    const int64_t *slots, int64_t num_slots,
    double origin, double inv_step, int64_t num,
    double epsilon,
    int64_t *lower, int64_t *upper   /* (num_slots, num), zeroed */
) {
    /* One diff row per (space, slot), prefix-summed into the outputs. */
    int64_t stride = num + 1;
    size_t diff_len = (size_t)(2 * num_slots) * (size_t)stride;
    int64_t nthreads = thread_budget(rows);
    merge_task tasks[16];
    pthread_t threads[16];
    int spawned[16] = {0};
    int failed = 0;
    for (int64_t t = 0; t < nthreads; t++) {
        tasks[t].lows = lows; tasks[t].highs = highs; tasks[t].slots = slots;
        tasks[t].row_start = rows * t / nthreads;
        tasks[t].row_end = rows * (t + 1) / nthreads;
        tasks[t].cols = cols; tasks[t].num_slots = num_slots;
        tasks[t].stride = stride; tasks[t].num = num;
        tasks[t].origin = origin; tasks[t].inv_step = inv_step;
        tasks[t].epsilon = epsilon;
        tasks[t].failed = 0;
        tasks[t].diff = (int64_t *)calloc(diff_len, sizeof(int64_t));
        if (!tasks[t].diff) failed = 1;
    }
    if (!failed) {
        for (int64_t t = 1; t < nthreads; t++) {
            spawned[t] = pthread_create(&threads[t], NULL, merge_rows,
                                        &tasks[t]) == 0;
        }
        merge_rows(&tasks[0]);
        for (int64_t t = 1; t < nthreads; t++) {
            if (spawned[t]) pthread_join(threads[t], NULL);
            else merge_rows(&tasks[t]);  /* degrade to inline, same result */
        }
        for (int64_t t = 0; t < nthreads; t++) failed |= tasks[t].failed;
    }
    if (!failed) {
        /* Fold worker buffers in worker order (exact int64 sums), then
           prefix-sum into the outputs. */
        int64_t *diff = tasks[0].diff;
        for (int64_t t = 1; t < nthreads; t++) {
            for (size_t i = 0; i < diff_len; i++) diff[i] += tasks[t].diff[i];
        }
        for (int64_t slot = 0; slot < num_slots; slot++) {
            int64_t *upper_diff = diff + slot * stride;
            int64_t *lower_diff = diff + (num_slots + slot) * stride;
            int64_t upper_run = 0, lower_run = 0;
            for (int64_t c = 0; c < num; c++) {
                upper_run += upper_diff[c];
                lower_run += lower_diff[c];
                upper[slot * num + c] = upper_run;
                lower[slot * num + c] = lower_run > 0 ? lower_run : 0;
            }
        }
    }
    for (int64_t t = 0; t < nthreads; t++) free(tasks[t].diff);
    return failed;
}
"""


def _build_native() -> Optional[Callable]:
    """Compile and load the C kernel; None when no toolchain cooperates.

    The shared object is cached in a module-local ``_native`` directory
    keyed by source digest, so each machine compiles at most once per
    kernel version.  Every failure mode (no compiler, sandboxed build
    dir, missing ctypes symbols) degrades to the numpy backend.
    """
    global _native_failed
    if _native_failed:
        return None
    try:
        digest = hashlib.sha256(_NATIVE_SOURCE.encode()).hexdigest()[:16]
        build_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_native")
        library = os.path.join(build_dir, f"fused_merge_{digest}.so")
        if not os.path.exists(library):
            os.makedirs(build_dir, exist_ok=True)
            source = os.path.join(build_dir, f"fused_merge_{digest}.c")
            with open(source, "w", encoding="utf-8") as handle:
                handle.write(_NATIVE_SOURCE)
            # -ffp-contract=off: the binning arithmetic must round every
            # intermediate exactly like numpy's — FMA contraction (the
            # gcc default at -O3 on FMA-baseline targets) could shift a
            # floor() result and break cross-backend identity.  Tuned
            # -march=native first; plain -O3 for compilers without it.
            flag_sets = (
                ["-O3", "-march=native", "-ffp-contract=off"],
                # No bare -O3 fallback: a compiler that cannot disable FP
                # contraction must not produce this kernel at all (the
                # numpy backend takes over instead).
                ["-O3", "-ffp-contract=off"],
            )
            for flags in flag_sets:
                build = subprocess.run(
                    ["cc", *flags, "-shared", "-fPIC", "-o", library, source,
                     "-lm", "-lpthread"],
                    capture_output=True, timeout=120,
                )
                if build.returncode == 0:
                    break
            else:
                build.check_returncode()
        lib = ctypes.CDLL(library)
        kernel = lib.fused_union_bounds
        kernel.restype = ctypes.c_int
        kernel.argtypes = [
            ctypes.POINTER(ctypes.c_float), ctypes.POINTER(ctypes.c_float),
            ctypes.c_int64, ctypes.c_int64,
            ctypes.POINTER(ctypes.c_int64), ctypes.c_int64,
            ctypes.c_double, ctypes.c_double, ctypes.c_int64,
            ctypes.c_double,
            ctypes.POINTER(ctypes.c_int64), ctypes.POINTER(ctypes.c_int64),
        ]
        return kernel
    except Exception:
        _native_failed = True
        return None


def _native_union_bounds(
    lows: np.ndarray,
    highs: np.ndarray,
    slots: np.ndarray,
    num_slots: int,
    bins: CandidateBins,
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray]:
    global _native_kernel
    if not bins.uniform:
        # Non-uniform grids take the searchsorted path; only the numpy
        # backend implements it (results are identical by contract).
        return _numpy_union_bounds(lows, highs, slots, num_slots, bins, epsilon)
    if _native_kernel is None:
        _native_kernel = _build_native()
        if _native_kernel is None:
            _count_fallback("screening/native_fallbacks")
            return _numpy_union_bounds(lows, highs, slots, num_slots, bins, epsilon)
    rows, cols = lows.shape
    lows32 = np.ascontiguousarray(lows, dtype=np.float32)
    highs32 = np.ascontiguousarray(highs, dtype=np.float32)
    slots64 = np.ascontiguousarray(slots, dtype=np.int64)
    lower = np.zeros((num_slots, bins.num), dtype=np.int64)
    upper = np.zeros((num_slots, bins.num), dtype=np.int64)
    status = _native_kernel(
        lows32.ctypes.data_as(ctypes.POINTER(ctypes.c_float)),
        highs32.ctypes.data_as(ctypes.POINTER(ctypes.c_float)),
        rows, cols,
        slots64.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)), num_slots,
        bins.origin, bins.inverse_step, bins.num,
        float(epsilon),
        lower.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        upper.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
    )
    if status != 0:  # allocation failure: degrade, never crash
        _count_fallback("screening/native_fallbacks")
        return _numpy_union_bounds(lows, highs, slots, num_slots, bins, epsilon)
    return lower, upper


# ---------------------------------------------------------------------------
# Backend selection.
# ---------------------------------------------------------------------------

_IMPLEMENTATIONS: Dict[str, Callable] = {
    "python": _python_union_bounds,
    "numpy": _numpy_union_bounds,
    "native": _native_union_bounds,
}


def available_backends() -> Tuple[str, ...]:
    """Backends that can run here (``native`` only with a C toolchain)."""
    names = ["python", "numpy"]
    global _native_kernel
    if _native_kernel is None and not _native_failed:
        _native_kernel = _build_native()
    if _native_kernel is not None:
        names.append("native")
    return tuple(names)


def _resolve_default() -> str:
    requested = os.environ.get(_ENV_VAR, "").strip().lower()
    if requested in _BACKENDS:
        if requested == "native" and "native" not in available_backends():
            _count_fallback("screening/backend_fallbacks")
            warnings.warn(
                f"{_ENV_VAR}=native requested but no C toolchain is available; "
                "falling back to the numpy backend (results are identical)",
                RuntimeWarning, stacklevel=3,
            )
            return "numpy"
        return requested
    if requested and requested != "auto":
        warnings.warn(
            f"unknown {_ENV_VAR}={requested!r}; expected one of "
            f"{_BACKENDS + ('auto',)}, using auto selection",
            RuntimeWarning, stacklevel=3,
        )
    return "native" if "native" in available_backends() else "numpy"


def active_backend() -> str:
    """The backend the fused kernel dispatches to (resolved lazily)."""
    global _active_backend
    if _active_backend is None:
        _active_backend = _resolve_default()
    return _active_backend


def set_backend(name: Optional[str]) -> str:
    """Force a backend (tests/benchmarks); ``None`` re-resolves the default.

    Returns the backend now active.  Selecting ``native`` without a
    toolchain raises — the silent-fallback path is only for the
    environment-variable default, where crashing would break the
    no-toolchain-required guarantee.
    """
    global _active_backend
    if name is None:
        _active_backend = None
        return active_backend()
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(f"unknown screening backend {name!r} (known: {_BACKENDS})")
    if name == "native" and "native" not in available_backends():
        raise ValueError("native screening backend unavailable: no C toolchain")
    _active_backend = name
    return _active_backend


def fused_union_bounds(
    lows: np.ndarray,
    highs: np.ndarray,
    slots: np.ndarray,
    num_slots: int,
    bins: CandidateBins,
    epsilon: float,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-slot (lower, upper) union-membership counts, fused.

    Args:
        lows, highs: ``(rows, cols)`` float32 interval endpoint matrices.
            Each row is one (slot, trial); unused columns carry
            :data:`SENTINEL` padding, infinite tails are pre-clamped to
            ``+-``:data:`CLAMP_GHZ`.  Within a row, intervals may overlap
            arbitrarily — the kernel merges them.
        slots: ``(rows,)`` int64 slot index of each row (which ranked
            qubit the row's trial belongs to).
        num_slots: Number of slots (max slot index + 1).
        bins: The candidate grid's :class:`CandidateBins`.
        epsilon: Float-safety margin; counts are returned for intervals
            narrowed (lower) and widened (upper) by it.

    Returns:
        ``(lower, upper)`` int64 arrays of shape ``(num_slots,
        num_candidates)``; bit-identical across backends.
    """
    if lows.size == 0 or bins.num == 0:
        zero = np.zeros((num_slots, bins.num), dtype=np.int64)
        return zero, zero.copy()
    # Chaos-test site for simulated kernel aborts (a plain None check
    # when no fault plan is armed, so the hot path stays hot).
    faults.maybe_inject("native-kernel")
    implementation = _IMPLEMENTATIONS[backend or active_backend()]
    return implementation(lows, highs, slots, num_slots, bins, epsilon)
