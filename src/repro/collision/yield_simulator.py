"""Monte Carlo yield simulation (paper Section 4.3.1).

The fabrication of each qubit perturbs its designed frequency by Gaussian
noise ``N(0, sigma)``.  A fabricated chip *fails* when any of the seven
collision conditions of Figure 3 is triggered by the post-fabrication
frequencies, evaluated over every connected pair and every
common-neighbour triple of the chip coupling graph.  The yield rate is
the fraction of successful fabrications over many Monte Carlo trials.

The simulation is fully vectorized over trials with numpy, so the paper's
configuration (10,000 trials per architecture) runs in milliseconds for
chips of a few dozen qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionThresholds,
    DEFAULT_THRESHOLDS,
    pair_collision_mask,
    triple_collision_mask,
)
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ

#: Trial count used by the paper's evaluation (10x IBM's own experiments).
PAPER_TRIAL_COUNT = 10_000


@dataclass(frozen=True)
class YieldEstimate:
    """Result of a Monte Carlo yield simulation."""

    yield_rate: float
    successes: int
    trials: int
    sigma_ghz: float

    @property
    def failure_rate(self) -> float:
        return 1.0 - self.yield_rate

    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate."""
        p = self.yield_rate
        return float(np.sqrt(max(p * (1.0 - p), 0.0) / self.trials))


class YieldSimulator:
    """Monte Carlo yield simulator with IBM's frequency-collision model.

    Args:
        trials: Number of fabrication trials (the paper uses 10,000).
        sigma_ghz: Fabrication precision, standard deviation of the
            Gaussian frequency noise in GHz (the paper uses 0.030).
        delta_ghz: Qubit anharmonicity in GHz.
        thresholds: Collision thresholds (defaults to Figure 3 values).
        seed: Seed for the noise generator; fixing it makes yield
            comparisons between architectures use common random numbers,
            reducing comparison variance.
    """

    def __init__(
        self,
        trials: int = PAPER_TRIAL_COUNT,
        sigma_ghz: float = DEFAULT_SIGMA_GHZ,
        delta_ghz: float = ANHARMONICITY_GHZ,
        thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
        seed: Optional[int] = None,
    ) -> None:
        if trials <= 0:
            raise ValueError("trial count must be positive")
        if sigma_ghz < 0:
            raise ValueError("sigma must be non-negative")
        self.trials = int(trials)
        self.sigma_ghz = float(sigma_ghz)
        self.delta_ghz = float(delta_ghz)
        self.thresholds = thresholds
        self.seed = seed

    # -- public API ----------------------------------------------------------

    def estimate(self, architecture: Architecture) -> YieldEstimate:
        """Estimate the yield rate of a fully designed architecture."""
        if not architecture.frequencies:
            raise ValueError(
                f"architecture {architecture.name!r} has no designed frequencies; "
                "run frequency allocation first"
            )
        qubits = architecture.qubits
        frequencies = np.array([architecture.frequencies[q] for q in qubits])
        index_of = {q: i for i, q in enumerate(qubits)}
        pairs = [(index_of[a], index_of[b]) for a, b in architecture.collision_pairs()]
        triples = [
            (index_of[j], index_of[i], index_of[k])
            for j, i, k in architecture.collision_triples()
        ]
        return self.estimate_from_arrays(frequencies, pairs, triples)

    def estimate_from_arrays(
        self,
        frequencies: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
    ) -> YieldEstimate:
        """Estimate yield for raw frequency/connectivity arrays.

        This is the entry point used by the frequency-allocation subroutine,
        which simulates small *local regions* rather than whole chips.
        """
        rng = np.random.default_rng(self.seed)
        frequencies = np.asarray(frequencies, dtype=float)
        num_qubits = frequencies.shape[0]
        noise = rng.normal(0.0, self.sigma_ghz, size=(self.trials, num_qubits))
        sampled = frequencies[None, :] + noise
        failed = self.collision_mask(sampled, pairs, triples)
        successes = int(self.trials - failed.sum())
        return YieldEstimate(
            yield_rate=successes / self.trials,
            successes=successes,
            trials=self.trials,
            sigma_ghz=self.sigma_ghz,
        )

    def collision_mask(
        self,
        sampled_frequencies: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
    ) -> np.ndarray:
        """Boolean per-trial mask: True where the fabricated chip has any collision."""
        pairs_array = np.asarray(pairs, dtype=int).reshape(-1, 2)
        triples_array = np.asarray(triples, dtype=int).reshape(-1, 3)
        failed_pairs = pair_collision_mask(
            sampled_frequencies,
            pairs_array[:, 0],
            pairs_array[:, 1],
            self.delta_ghz,
            self.thresholds,
        )
        failed_triples = triple_collision_mask(
            sampled_frequencies,
            triples_array[:, 0],
            triples_array[:, 1],
            triples_array[:, 2],
            self.delta_ghz,
            self.thresholds,
        )
        return failed_pairs | failed_triples

    def __repr__(self) -> str:
        return (
            f"YieldSimulator(trials={self.trials}, sigma_ghz={self.sigma_ghz}, "
            f"delta_ghz={self.delta_ghz}, seed={self.seed})"
        )


def estimate_yield(
    architecture: Architecture,
    trials: int = PAPER_TRIAL_COUNT,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    seed: Optional[int] = None,
) -> YieldEstimate:
    """One-call convenience wrapper around :class:`YieldSimulator`."""
    return YieldSimulator(trials=trials, sigma_ghz=sigma_ghz, seed=seed).estimate(architecture)
