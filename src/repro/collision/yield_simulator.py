"""Monte Carlo yield simulation (paper Section 4.3.1).

The fabrication of each qubit perturbs its designed frequency by Gaussian
noise ``N(0, sigma)``.  A fabricated chip *fails* when any of the seven
collision conditions of Figure 3 is triggered by the post-fabrication
frequencies, evaluated over every connected pair and every
common-neighbour triple of the chip coupling graph.  The yield rate is
the fraction of successful fabrications over many Monte Carlo trials.

The simulation is fully vectorized over trials with numpy, so the paper's
configuration (10,000 trials per architecture) runs in milliseconds for
chips of a few dozen qubits.

Design-space sweeps score many candidate frequency plans against the
*same* coupling graph.  :meth:`YieldSimulator.estimate_batch` evaluates a
whole ``(num_candidates, num_qubits)`` matrix of designs against one
shared noise tensor (common random numbers), so candidate comparisons
carry no Monte Carlo comparison noise and no per-candidate Python
overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionThresholds,
    DEFAULT_THRESHOLDS,
    pair_collision_mask,
    triple_collision_mask,
)
from repro.collision.screening import (
    ScreeningBounds,
    record_screening,
    screen_candidate_bounds,
    screen_candidate_bounds_batch,
    screening_applicable,
)
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ
from repro.runtime.metrics import global_metrics

_metrics = global_metrics()

#: Trial count used by the paper's evaluation (10x IBM's own experiments).
PAPER_TRIAL_COUNT = 10_000

#: Upper bound on the number of sampled-frequency elements
#: (candidates x trials x qubits) materialized per vectorized chunk of a
#: batched estimate.  The working set of one chunk is a small multiple of
#: this (gathered pair/triple columns), so the default keeps chunks
#: resident in a few hundred KB of cache — larger chunks are memory-bound
#: and measurably slower.
DEFAULT_CHUNK_ELEMENTS = 40_000


def _ascending_candidates(candidates: np.ndarray) -> np.ndarray:
    """Validate a screening candidate grid: strictly ascending or bust.

    The screen counts candidates by prefix sums over their order, so an
    unsorted grid would produce wrong counts silently; rejecting it is
    cheap (the grids are a few dozen entries).
    """
    candidates = np.asarray(candidates, dtype=float)
    if candidates.size > 1 and not (np.diff(candidates) > 0).all():
        raise ValueError(
            "screening candidate frequencies must be strictly ascending"
        )
    return candidates


@lru_cache(maxsize=1024)
def _cached_index_arrays(
    pairs: Tuple[Tuple[int, int], ...],
    triples: Tuple[Tuple[int, int, int], ...],
) -> Tuple[np.ndarray, np.ndarray]:
    """Immutable ``(pairs, triples)`` index arrays for one coupling topology.

    Sweeps call the simulator thousands of times on the same coupling
    graph; caching the Python-tuple -> numpy conversion removes the array
    rebuild from the hot path.
    """
    pairs_array = np.array(pairs, dtype=int).reshape(-1, 2)
    triples_array = np.array(triples, dtype=int).reshape(-1, 3)
    pairs_array.setflags(write=False)
    triples_array.setflags(write=False)
    return pairs_array, triples_array


def collision_index_arrays(
    pairs: Sequence[Tuple[int, int]],
    triples: Sequence[Tuple[int, int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize pair/triple index sequences to ``(N, 2)``/``(N, 3)`` arrays.

    Hashable inputs (sequences of tuples) are memoized per topology;
    ndarray inputs are only reshaped.
    """
    if isinstance(pairs, np.ndarray) or isinstance(triples, np.ndarray):
        pairs_array = np.asarray(pairs, dtype=int).reshape(-1, 2)
        triples_array = np.asarray(triples, dtype=int).reshape(-1, 3)
        return pairs_array, triples_array
    return _cached_index_arrays(
        tuple((int(a), int(b)) for a, b in pairs),
        tuple((int(j), int(i), int(k)) for j, i, k in triples),
    )


@dataclass(frozen=True)
class ScreenedCounts:
    """Result of a screened candidate ranking (see
    :meth:`YieldSimulator.screened_failure_counts`).

    Attributes:
        counts: ``(num_candidates,)`` int64 failed-trial counts.  Exact
            (bit-identical to the joint kernel) wherever ``known`` is
            True; a valid *lower bound* elsewhere.
        known: Boolean mask of candidates whose count is exact.  Every
            candidate achieving the minimum joint count is guaranteed
            known, so ``counts[known].min()`` is the true minimum and the
            tie set ``known & (counts == counts[known].min())`` is exactly
            the unscreened tie set.
        bounds: The interval-count bounds the screen derived (None when
            the ranking bypassed screening entirely).
        verified: How many candidate rows ran through the joint kernel.
        pruned: How many candidates were provably discarded unverified.
    """

    counts: np.ndarray
    known: np.ndarray
    bounds: Optional[ScreeningBounds]
    verified: int
    pruned: int


@dataclass(frozen=True)
class YieldEstimate:
    """Result of a Monte Carlo yield simulation."""

    yield_rate: float
    successes: int
    trials: int
    sigma_ghz: float

    @property
    def failure_rate(self) -> float:
        return 1.0 - self.yield_rate

    def standard_error(self) -> float:
        """Binomial standard error of the yield estimate."""
        p = self.yield_rate
        return float(np.sqrt(max(p * (1.0 - p), 0.0) / self.trials))


class YieldSimulator:
    """Monte Carlo yield simulator with IBM's frequency-collision model.

    Args:
        trials: Number of fabrication trials (the paper uses 10,000).
        sigma_ghz: Fabrication precision, standard deviation of the
            Gaussian frequency noise in GHz (the paper uses 0.030).
        delta_ghz: Qubit anharmonicity in GHz.
        thresholds: Collision thresholds (defaults to Figure 3 values).
        seed: Seed for the noise generator; fixing it makes yield
            comparisons between architectures use common random numbers,
            reducing comparison variance.
    """

    def __init__(
        self,
        trials: int = PAPER_TRIAL_COUNT,
        sigma_ghz: float = DEFAULT_SIGMA_GHZ,
        delta_ghz: float = ANHARMONICITY_GHZ,
        thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
        seed: Optional[int] = None,
    ) -> None:
        if trials <= 0:
            raise ValueError("trial count must be positive")
        if sigma_ghz < 0:
            raise ValueError("sigma must be non-negative")
        self.trials = int(trials)
        self.sigma_ghz = float(sigma_ghz)
        self.delta_ghz = float(delta_ghz)
        self.thresholds = thresholds
        self.seed = seed

    # -- public API ----------------------------------------------------------

    def estimate(self, architecture: Architecture) -> YieldEstimate:
        """Estimate the yield rate of a fully designed architecture."""
        if not architecture.frequencies:
            raise ValueError(
                f"architecture {architecture.name!r} has no designed frequencies; "
                "run frequency allocation first"
            )
        qubits = architecture.qubits
        frequencies = np.array([architecture.frequencies[q] for q in qubits])
        index_of = {q: i for i, q in enumerate(qubits)}
        pairs = [(index_of[a], index_of[b]) for a, b in architecture.collision_pairs()]
        triples = [
            (index_of[j], index_of[i], index_of[k])
            for j, i, k in architecture.collision_triples()
        ]
        _metrics.increment("yield/estimates")
        _metrics.increment("yield/trials", self.trials)
        with _metrics.timer("yield/estimate"):
            return self.estimate_from_arrays(frequencies, pairs, triples)

    def estimate_from_arrays(
        self,
        frequencies: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
    ) -> YieldEstimate:
        """Estimate yield for raw frequency/connectivity arrays.

        This is the entry point used by the frequency-allocation subroutine,
        which simulates small *local regions* rather than whole chips.
        """
        frequencies = np.asarray(frequencies, dtype=float)
        num_qubits = frequencies.shape[0]
        noise = self._draw_noise(num_qubits)
        sampled = frequencies[None, :] + noise
        failed = self.collision_mask(sampled, pairs, triples)
        successes = int(self.trials - failed.sum())
        return self._estimate_from_successes(successes)

    def estimate_batch(
        self,
        frequencies_batch: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
        max_chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> List[YieldEstimate]:
        """Estimate yield for many candidate frequency plans on one topology.

        All candidates are evaluated against a *single* ``(trials,
        num_qubits)`` noise tensor — the common-random-numbers scheme the
        paper prescribes for low-variance candidate comparisons — in one
        vectorized pass, chunked so that no intermediate tensor exceeds
        ``max_chunk_elements`` elements.

        Every batch size — including one — runs through the same chunked
        :meth:`failure_counts` kernel, so a row's estimate is
        bit-identical whether it is submitted alone or inside any larger
        batch.  Batches share the noise draw across candidates and factor
        each pair/triple frequency difference into a designed part (per
        candidate) and a noise part (computed once per batch), so batched
        sweeps replace sequential candidate loops at a fraction of the
        cost.

        Args:
            frequencies_batch: ``(num_candidates, num_qubits)`` designed
                frequencies (a single 1-D vector is treated as a batch of
                one).
            pairs: Connected pairs ``(j, k)``, as qubit column indices.
            triples: Triples ``(j, i, k)``, as qubit column indices.
            max_chunk_elements: Bound on candidates x trials x qubits
                elements materialized at once.

        Returns:
            One :class:`YieldEstimate` per candidate row, in order.
        """
        counts = self.failure_counts(
            frequencies_batch, pairs, triples,
            max_chunk_elements=max_chunk_elements,
        )
        return [
            self._estimate_from_successes(self.trials - int(count)) for count in counts
        ]

    def failure_counts(
        self,
        frequencies_batch: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
        noise: Optional[np.ndarray] = None,
        max_chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> np.ndarray:
        """Per-candidate failed-trial counts for a batch of frequency plans.

        The raw integer form of :meth:`estimate_batch` — one failed-trial
        count per candidate row, computed through the same vectorized
        kernels.  The frequency-allocation hot loop uses this entry point
        directly: it avoids per-candidate :class:`YieldEstimate` object
        construction and accepts a caller-owned ``noise`` tensor so common
        random numbers can be drawn once and reused across repeated
        scorings of the same qubit (refinement sweeps, pruned re-ranks).

        Args:
            frequencies_batch: ``(num_candidates, num_qubits)`` designed
                frequencies (a 1-D vector is a batch of one).
            pairs: Connected pairs ``(j, k)``, as qubit column indices.
            triples: Triples ``(j, i, k)``, as qubit column indices.
            noise: Optional ``(trials, num_qubits)`` fabrication-noise
                tensor.  When omitted it is drawn from this simulator's
                seed, which makes the result bit-identical to
                :meth:`estimate_batch` on the same inputs.
            max_chunk_elements: Bound on candidates x trials x qubits
                elements materialized at once.
        """
        frequencies_batch = np.atleast_2d(np.asarray(frequencies_batch, dtype=float))
        num_candidates, num_qubits = frequencies_batch.shape
        _metrics.increment("yield/kernel_calls")
        _metrics.increment("yield/kernel_rows", num_candidates)
        pairs_array, triples_array = collision_index_arrays(pairs, triples)
        if pairs_array.size == 0 and triples_array.size == 0:
            return np.zeros(num_candidates, dtype=np.int64)
        if noise is None:
            noise = self._draw_noise(num_qubits)
        if not self._foldable_thresholds():
            return self._failure_counts_generic(
                frequencies_batch, pairs_array, triples_array, noise, max_chunk_elements
            )
        return self._failure_counts_folded(
            frequencies_batch, pairs_array, triples_array, noise, max_chunk_elements
        )

    def screening_enabled(self) -> bool:
        """Whether screened candidate rankings use the interval fast path.

        Requires both the folded joint kernel (the ground truth screened
        survivors are verified against) and the disjoint-interval
        geometry of :func:`repro.collision.screening.screening_applicable`.
        When False, :meth:`screened_failure_counts` silently degrades to
        the full joint kernel — results are identical either way.
        """
        return self._foldable_thresholds() and screening_applicable(
            self.delta_ghz, self.thresholds
        )

    def candidate_failure_bounds(
        self,
        candidates: np.ndarray,
        qubit_index: int,
        base_frequencies: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
        noise: Optional[np.ndarray] = None,
    ) -> ScreeningBounds:
        """Per-candidate interval-count bounds for one scanned qubit.

        The raw bound layer of :meth:`screened_failure_counts`: for every
        candidate frequency of the qubit at ``qubit_index``, exact
        per-event failed-trial counts are combined into a lower bound
        (max over events) and an upper bound (sum over events) on the
        joint failure count the kernel of :meth:`failure_counts` would
        report.  Only valid when :meth:`screening_enabled` is True.
        """
        if not self.screening_enabled():
            raise ValueError(
                "interval screening is not applicable to these thresholds; "
                "check screening_enabled() before asking for bounds"
            )
        candidates = _ascending_candidates(candidates)
        base = np.asarray(base_frequencies, dtype=float)
        pairs_array, triples_array = collision_index_arrays(pairs, triples)
        if noise is None:
            noise = self._draw_noise(base.shape[0])
        return screen_candidate_bounds(
            candidates, qubit_index, base, pairs_array, triples_array,
            noise, self.delta_ghz, self.thresholds,
        )

    def screened_failure_counts(
        self,
        candidates: np.ndarray,
        qubit_index: int,
        base_frequencies: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
        noise: Optional[np.ndarray] = None,
        max_chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> ScreenedCounts:
        """Screen-then-verify failed-trial counts for one scanned qubit.

        The fast path of the Algorithm 3 candidate ranking: instead of
        running the joint kernel on every candidate row, interval-count
        bounds (:meth:`candidate_failure_bounds`) first decide candidates
        whose bounds coincide, then one incumbent (the smallest upper
        bound) is verified exactly, and every candidate whose *lower*
        bound exceeds the incumbent's exact count is discarded — provably
        worse, so never the winner under any tie-break that only inspects
        minimum-count candidates.  The joint kernel runs only on the
        surviving, still-undecided rows.

        The result is bit-identical to ranking with
        :meth:`failure_counts` wherever it matters: every candidate
        achieving the minimum count is ``known`` with its exact joint
        count.  When :meth:`screening_enabled` is False the method
        transparently computes every candidate exactly.

        Args:
            candidates: Candidate frequencies of the scanned qubit, in
                strictly ascending order (the allocator's grid and every
                subset of it; the screen's prefix-sum counting depends
                on it, so other orders are rejected).
            qubit_index: The scanned qubit's column in the region arrays.
            base_frequencies: Designed frequencies of the region's qubits
                (the scanned qubit's entry is ignored).
            pairs: Local pairs, as region column indices (each contains
                ``qubit_index``).
            triples: Local triples ``(j, i, k)``, as region column
                indices (each contains ``qubit_index``).
            noise: Optional ``(trials, region_size)`` CRN noise tensor;
                drawn from this simulator's seed when omitted.
            max_chunk_elements: Chunk bound for the verification kernel.
        """
        return self.screened_failure_counts_batch(
            candidates,
            [(qubit_index, base_frequencies, pairs, triples, noise)],
            max_chunk_elements=max_chunk_elements,
        )[0]

    def screened_failure_counts_batch(
        self,
        candidates: np.ndarray,
        regions: Sequence[
            Tuple[int, np.ndarray, Sequence, Sequence, Optional[np.ndarray]]
        ],
        max_chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> List[ScreenedCounts]:
        """Screen-then-verify rankings for many scanned qubits at once.

        The cross-qubit batched form of :meth:`screened_failure_counts`:
        all regions screen through one fused merge-kernel invocation
        (:func:`repro.collision.screening.screen_candidate_bounds_batch`),
        then each region's survivors are verified with its own joint
        kernel pass.  Per region the result is bit-identical to a
        sequential :meth:`screened_failure_counts` call — regions never
        share rows in the merge, and verification uses each region's own
        noise tensor — so callers are free to batch any set of rankings
        whose inputs do not depend on each other's outcomes.

        Args:
            candidates: Shared candidate grid, strictly ascending.
            regions: Per scanned qubit: ``(qubit_index, base_frequencies,
                pairs, triples, noise)`` with the same meaning as the
                :meth:`screened_failure_counts` arguments (``noise`` may
                be None to draw from the simulator's seed).
            max_chunk_elements: Chunk bound for the verification kernel.
        """
        candidates = _ascending_candidates(candidates)
        num_candidates = candidates.shape[0]
        results: List[Optional[ScreenedCounts]] = [None] * len(regions)

        def verify(rows, qubit_index, base, pairs_array, triples_array, noise):
            batch = np.repeat(base[None, :], rows.shape[0], axis=0)
            batch[:, qubit_index] = candidates[rows]
            return self.failure_counts(
                batch, pairs_array, triples_array, noise=noise,
                max_chunk_elements=max_chunk_elements,
            )

        enabled = self.screening_enabled()
        screenable = []
        for position, (qubit_index, base_frequencies, pairs, triples, noise) in (
            enumerate(regions)
        ):
            base = np.asarray(base_frequencies, dtype=float)
            pairs_array, triples_array = collision_index_arrays(pairs, triples)
            if pairs_array.size == 0 and triples_array.size == 0:
                results[position] = ScreenedCounts(
                    counts=np.zeros(num_candidates, dtype=np.int64),
                    known=np.ones(num_candidates, dtype=bool),
                    bounds=None, verified=0, pruned=0,
                )
                continue
            if noise is None:
                noise = self._draw_noise(base.shape[0])
            if not enabled:
                all_rows = np.arange(num_candidates)
                results[position] = ScreenedCounts(
                    counts=verify(
                        all_rows, qubit_index, base, pairs_array,
                        triples_array, noise,
                    ),
                    known=np.ones(num_candidates, dtype=bool),
                    bounds=None, verified=num_candidates, pruned=0,
                )
                continue
            screenable.append(
                (position, qubit_index, base, pairs_array, triples_array, noise)
            )
        if not screenable:
            return results

        bounds_batch = screen_candidate_bounds_batch(
            candidates,
            [region[1:] for region in screenable],
            self.delta_ghz, self.thresholds,
        )
        total_candidates = total_exact = total_verified = total_pruned = 0
        dispute_ns = joint_ns = 0
        for entry, bounds in zip(screenable, bounds_batch):
            position, qubit_index, base, pairs_array, triples_array, noise = entry
            started = time.perf_counter_ns()
            counts = bounds.lower.copy()
            known = bounds.exact.copy()
            exact_decided = int(known.sum())
            verified = 0
            survivors = None
            if not known.all():
                # A candidate whose lower bound exceeds the best upper
                # bound can never reach the minimum count (J >= lower >
                # min-upper >= the incumbent's J >= the minimum);
                # everything else that is still undecided gets one
                # batched joint-kernel pass.
                threshold = bounds.upper.min()
                if known.any():
                    threshold = min(threshold, counts[known].min())
                survivors = np.flatnonzero(~known & (bounds.lower <= threshold))
            dispute_ns += time.perf_counter_ns() - started
            if survivors is not None and survivors.size:
                started = time.perf_counter_ns()
                counts[survivors] = verify(
                    survivors, qubit_index, base, pairs_array,
                    triples_array, noise,
                )
                joint_ns += time.perf_counter_ns() - started
                known[survivors] = True
                verified = int(survivors.size)
            pruned = int(num_candidates - known.sum())
            total_candidates += num_candidates
            total_exact += exact_decided
            total_verified += verified
            total_pruned += pruned
            results[position] = ScreenedCounts(
                counts=counts, known=known, bounds=bounds,
                verified=verified, pruned=pruned,
            )
        record_screening(
            total_candidates, total_exact, total_verified, total_pruned,
            calls=len(screenable), dispute_ns=dispute_ns, joint_ns=joint_ns,
        )
        return results

    def _failure_counts_folded(
        self,
        frequencies_batch: np.ndarray,
        pairs_array: np.ndarray,
        triples_array: np.ndarray,
        noise: np.ndarray,
        max_chunk_elements: int,
    ) -> np.ndarray:
        """The folded-interval batch kernel (see :meth:`_foldable_thresholds`)."""
        num_candidates = frequencies_batch.shape[0]
        delta = self.delta_ghz
        t = self.thresholds
        # Common random numbers factored per connection: the noise part of
        # every pair/triple frequency difference is shared by all
        # candidates, so it is computed once per batch and only the cheap
        # designed-frequency offsets vary per candidate.
        pair_noise = np.empty((self.trials, 0))
        pair_designed = np.empty((num_candidates, 0))
        if pairs_array.size:
            pj, pk = pairs_array[:, 0], pairs_array[:, 1]
            pair_noise = noise[:, pj] - noise[:, pk]
            pair_designed = frequencies_batch[:, pj] - frequencies_batch[:, pk]
        triple_ik_noise = np.empty((self.trials, 0))
        triple_sum_noise = np.empty((self.trials, 0))
        triple_ik_designed = np.empty((num_candidates, 0))
        triple_sum_designed = np.empty((num_candidates, 0))
        if triples_array.size:
            tj, ti, tk = triples_array[:, 0], triples_array[:, 1], triples_array[:, 2]
            triple_ik_noise = noise[:, ti] - noise[:, tk]
            triple_sum_noise = 2.0 * noise[:, tj] - noise[:, ti] - noise[:, tk]
            triple_ik_designed = frequencies_batch[:, ti] - frequencies_batch[:, tk]
            triple_sum_designed = (
                2.0 * frequencies_batch[:, tj] + delta
                - frequencies_batch[:, ti] - frequencies_batch[:, tk]
            )
        # Folded condition constants (valid because _foldable_thresholds
        # guarantees every carve-out lies on the positive |diff| axis):
        # pair fails iff |diff| in [0, t1) u (c2-t2, c2+t2) u (c34, inf)
        # with c2 = -delta/2 and c34 = -delta - t3 (conditions 3 and 4
        # merge into one open-ended interval).
        c2 = -delta / 2.0
        c34 = -delta - t.condition_3_ghz
        c6 = -delta

        width = max(pair_noise.shape[1], triple_ik_noise.shape[1], 1)
        chunk = max(1, int(max_chunk_elements) // max(1, self.trials * width))
        counts = np.empty(num_candidates, dtype=np.int64)
        for start in range(0, num_candidates, chunk):
            stop = min(start + chunk, num_candidates)
            block = stop - start
            failed = np.zeros((block, self.trials), dtype=bool)
            if pairs_array.size:
                diff = (
                    pair_designed[start:stop, None, :] + pair_noise[None, :, :]
                ).reshape(block * self.trials, -1)
                np.abs(diff, out=diff)
                hit = diff < t.condition_1_ghz
                hit |= diff > c34
                np.subtract(diff, c2, out=diff)
                np.abs(diff, out=diff)
                hit |= diff < t.condition_2_ghz
                self._fold_any(hit, failed)
            if triples_array.size:
                diff = (
                    triple_ik_designed[start:stop, None, :] + triple_ik_noise[None, :, :]
                ).reshape(block * self.trials, -1)
                np.abs(diff, out=diff)
                hit = diff < t.condition_5_ghz
                np.subtract(diff, c6, out=diff)
                np.abs(diff, out=diff)
                hit |= diff < t.condition_6_ghz
                total = (
                    triple_sum_designed[start:stop, None, :] + triple_sum_noise[None, :, :]
                ).reshape(block * self.trials, -1)
                np.abs(total, out=total)
                hit |= total < t.condition_7_ghz
                self._fold_any(hit, failed)
            counts[start:stop] = failed.sum(axis=1)
        return counts

    def collision_mask(
        self,
        sampled_frequencies: np.ndarray,
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
    ) -> np.ndarray:
        """Boolean per-trial mask: True where the fabricated chip has any collision."""
        pairs_array, triples_array = collision_index_arrays(pairs, triples)
        return self._collision_mask_from_indices(
            sampled_frequencies, pairs_array, triples_array
        )

    # -- internals -----------------------------------------------------------

    def _draw_noise(self, num_qubits: int) -> np.ndarray:
        """The ``(trials, num_qubits)`` fabrication-noise tensor for this seed."""
        rng = np.random.default_rng(self.seed)
        return rng.normal(0.0, self.sigma_ghz, size=(self.trials, num_qubits))

    def _estimate_from_successes(self, successes: int) -> YieldEstimate:
        return YieldEstimate(
            yield_rate=successes / self.trials,
            successes=successes,
            trials=self.trials,
            sigma_ghz=self.sigma_ghz,
        )

    def _collision_mask_from_indices(
        self,
        sampled_frequencies: np.ndarray,
        pairs_array: np.ndarray,
        triples_array: np.ndarray,
    ) -> np.ndarray:
        if pairs_array.size == 0 and triples_array.size == 0:
            # No pair can collide on a connection-free region: all-success,
            # regardless of the sampled frequencies.
            return np.zeros(sampled_frequencies.shape[0], dtype=bool)
        failed_pairs = pair_collision_mask(
            sampled_frequencies,
            pairs_array[:, 0],
            pairs_array[:, 1],
            self.delta_ghz,
            self.thresholds,
        )
        failed_triples = triple_collision_mask(
            sampled_frequencies,
            triples_array[:, 0],
            triples_array[:, 1],
            triples_array[:, 2],
            self.delta_ghz,
            self.thresholds,
        )
        return failed_pairs | failed_triples

    def _foldable_thresholds(self) -> bool:
        """Whether the folded interval form of the conditions is applicable.

        The fast batched kernel folds each symmetric condition pair onto the
        positive ``|diff|`` axis, which is only valid when the anharmonicity
        is negative and large enough that no carve-out interval straddles
        zero.  The paper's constants satisfy this comfortably; exotic
        threshold configurations fall back to the generic kernel.
        """
        t = self.thresholds
        return (
            self.delta_ghz < 0.0
            and -self.delta_ghz / 2.0 > t.condition_2_ghz
            and -self.delta_ghz > t.condition_3_ghz
            and -self.delta_ghz > t.condition_6_ghz
        )

    @staticmethod
    def _fold_any(hit: np.ndarray, failed: np.ndarray) -> None:
        """OR a flat ``(rows, connections)`` hit matrix into ``failed`` rows.

        Column-wise accumulation: numpy's ``any(axis=1)`` walks the array
        row by row, which is an order of magnitude slower on the tall-thin
        matrices the batched kernel produces.
        """
        out = failed.reshape(-1)
        for column in range(hit.shape[1]):
            np.logical_or(out, hit[:, column], out=out)

    def _failure_counts_generic(
        self,
        frequencies_batch: np.ndarray,
        pairs_array: np.ndarray,
        triples_array: np.ndarray,
        noise: np.ndarray,
        max_chunk_elements: int,
    ) -> np.ndarray:
        """Chunked batch evaluation through the generic condition masks."""
        num_candidates, num_qubits = frequencies_batch.shape
        chunk = max(1, int(max_chunk_elements) // max(1, self.trials * num_qubits))
        counts = np.empty(num_candidates, dtype=np.int64)
        for start in range(0, num_candidates, chunk):
            block = frequencies_batch[start:start + chunk]
            sampled = (block[:, None, :] + noise[None, :, :]).reshape(-1, num_qubits)
            failed = self._collision_mask_from_indices(sampled, pairs_array, triples_array)
            counts[start:start + chunk] = failed.reshape(block.shape[0], self.trials).sum(axis=1)
        return counts

    def __repr__(self) -> str:
        return (
            f"YieldSimulator(trials={self.trials}, sigma_ghz={self.sigma_ghz}, "
            f"delta_ghz={self.delta_ghz}, seed={self.seed})"
        )


def estimate_yield(
    architecture: Architecture,
    trials: int = PAPER_TRIAL_COUNT,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    seed: Optional[int] = None,
) -> YieldEstimate:
    """One-call convenience wrapper around :class:`YieldSimulator`."""
    return YieldSimulator(trials=trials, sigma_ghz=sigma_ghz, seed=seed).estimate(architecture)
