"""Exact interval-count screening of Algorithm 3 candidate frequencies.

The frequency-allocation hot loop ranks every candidate frequency of one
scanned qubit by the joint Monte Carlo failure count of its local
collision region.  The joint kernel costs ``O(candidates x trials x
connections)`` — it materializes every (candidate, trial, connection)
frequency difference.  This module computes provably correct *per-event
interval counts* that bound — and almost always pin exactly — every
candidate's joint count in ``O(trials log trials + candidates)``, so the
expensive joint kernel only runs on the rare candidates the bounds
cannot decide.

**Why per-event failure sets are intervals.**  Fix the common-random-
numbers noise tensor and look at one collision event — one condition
family on one pair or triple of the local region.  Every such condition
depends on the scanned qubit's candidate frequency ``f`` through a
single monotone expression (``f`` enters each frequency difference
exactly once), so for each trial the set of candidate frequencies
violating the condition is an *interval* on the ``f`` axis: a
trial-specific shift of a constant threshold interval.

**From intervals to exact joint counts.**  The joint count ``J(f)`` is
the number of trials in which ``f`` lies in the *union* of that trial's
violating intervals.  Events that do not involve ``f`` at all
(spectator-spectator conditions of triples centred on the scanned
qubit) fail identical trial sets for every candidate: those trials are
counted once and removed.  For the remaining trials the per-trial union
is merged — sort each trial's interval endpoints, sweep a running
maximum — into *disjoint* components, after which counting becomes a
global prefix-sum over sorted endpoints: a candidate is inside exactly
``#{component lows < f} - #{component highs <= f}`` components, and
because components are disjoint within a trial that sum over all trials
*is* the number of failing trials.  No per-candidate work ever touches
the trial axis.

The sort/sweep/count itself lives in
:mod:`repro.collision.merge_kernel` as one fused pass over a packed
endpoint matrix (see that module for the backend registry and the
``REPRO_SCREENING_BACKEND`` selection); this module owns the physics —
turning a collision region into interval families — and the epsilon
bookkeeping that makes the counts safe against float rounding.

Regions with a single event family skip the merge entirely: one
family's intervals are pairwise disjoint by construction
(:func:`screening_applicable` checks the threshold geometry), so the
family's translated endpoint counts are already exact.

**Floating-point safety.**  The joint kernel evaluates conditions with
float arithmetic whose rounding differs from the interval-endpoint
arithmetic by a bounded amount (a few ULPs — ~1e-15 GHz — on the
float64 single-family path; ~1e-6 GHz on the float32 merged-matrix
path).  Every count is therefore computed twice: once with intervals
*widened* by the path's epsilon (:data:`SINGLE_FAMILY_EPSILON` or
:data:`SCREENING_EPSILON`, both far above the respective rounding and
far below the 1e-2 GHz candidate grid step), giving an upper bound
``J+``, and once *narrowed* by it, giving a lower bound ``J-``.  A
candidate within epsilon of a condition boundary gets ``J- < J+`` and
is handed to the joint kernel instead of being trusted to the bounds;
everywhere else ``J- == J+`` pins the joint count exactly.
Correctness never depends on the epsilon being tight, only on it
exceeding the path's rounding error.

**Why the fused two-threshold merge bounds both spaces.**  The kernel
merges each trial's sorted intervals twice from one sweep: a *widened*
component starts where the low-vs-previous-running-max gap exceeds
``+2 eps``, a *narrowed* one where it exceeds ``-2 eps``.  The upper
count is valid under *any* set of merge decisions: splitting
overlapping widened intervals or bridging disjoint ones only ever
overcounts the widened union, which already contains every kernel
failure.  The lower count is valid because (a) a gap above ``-2 eps``
means the narrowed intervals (pulled ``eps`` inward from each side)
are genuinely disjoint, so the emitted components never overlap and
their total size never exceeds the narrowed union; and (b) a gap at or
below ``-2 eps`` means the *true* (pre-float32) intervals genuinely
overlap — the float32 gap is within ~1e-6 of the true gap (endpoint
rounding; the subtraction itself is exact near zero by Sterbenz), and
``2 eps = 1e-5`` clears that with room — so bridging them keeps the
components inside the narrowed union's span.  Either way ``J- <= J(f)
<= J+`` holds for every candidate, which is the only property the
screen-then-verify decision logic relies on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.conditions import CollisionThresholds
from repro.collision.merge_kernel import (
    CLAMP_GHZ,
    SENTINEL,
    CandidateBins,
    active_backend,
    candidate_bins,
    fused_union_bounds,
)

#: Safety margin (GHz) between the interval-count arithmetic and the joint
#: kernel's float rounding.  The merged-interval matrices are built in
#: float32 (they are sort/scan bound), whose worst-case accumulated
#: rounding near 5.3 GHz is ~1e-6 GHz; the margin sits several times
#: above that and three decades below the 1e-2 GHz candidate grid step.
SCREENING_EPSILON = 5e-6

#: Margin used by the float64 single-family fast path, whose endpoint
#: arithmetic rounds at ~1e-15 GHz.  The tighter margin keeps the
#: single-family bounds exact for essentially every candidate.
SINGLE_FAMILY_EPSILON = 1e-9


@dataclass(frozen=True)
class ScreeningBounds:
    """Per-candidate bounds on the joint failed-trial count of one region.

    Attributes:
        lower: ``(num_candidates,)`` int64 — for every candidate, a count
            the joint kernel is *guaranteed* to reach (the narrowed
            merged-interval count).
        upper: ``(num_candidates,)`` int64 — a count the joint kernel is
            guaranteed not to exceed (the widened merged-interval count).
            Bounds agree — pinning the joint count exactly — unless the
            candidate sits within :data:`SCREENING_EPSILON` of a
            condition boundary.
        events: Number of distinct collision event families screened
            (deduplicated interval families plus the constant event).
    """

    lower: np.ndarray
    upper: np.ndarray
    events: int

    @property
    def exact(self) -> np.ndarray:
        """Boolean mask of candidates whose joint count the bounds pin."""
        return self.lower == self.upper


def screening_applicable(
    delta_ghz: float,
    thresholds: CollisionThresholds,
    epsilon: float = SCREENING_EPSILON,
) -> bool:
    """Whether the interval geometry supports exact per-event counts.

    Within one event family the member intervals must stay pairwise
    disjoint (the single-family fast path sums their counts) and every
    interval must keep positive width after the ``epsilon`` narrowing.
    The paper's constants satisfy every gap by an order of magnitude;
    exotic threshold configurations (which also defeat the folded joint
    kernel) simply disable screening.
    """
    t = thresholds
    if not delta_ghz < 0.0:
        return False
    margin = 4.0 * epsilon
    c2 = -delta_ghz / 2.0
    c34 = -delta_ghz - t.condition_3_ghz
    c6 = -delta_ghz
    widths = (
        t.condition_1_ghz, t.condition_2_ghz, t.condition_3_ghz,
        t.condition_5_ghz, t.condition_6_ghz, t.condition_7_ghz,
    )
    return (
        min(widths) > margin
        # pair family: (-t1, t1), +-(c2 -+ t2), |x| > c34 stay disjoint
        and t.condition_1_ghz + margin < c2 - t.condition_2_ghz
        and c2 + t.condition_2_ghz + margin < c34
        # spectator family: (-t5, t5) vs +-(c6 -+ t6)
        and t.condition_5_ghz + margin < c6 - t.condition_6_ghz
    )


def _interval_families(
    qubit_index: int,
    base: np.ndarray,
    pairs: np.ndarray,
    triples: np.ndarray,
    noise: np.ndarray,
    delta_ghz: float,
    thresholds: CollisionThresholds,
) -> Tuple[
    np.ndarray,
    List[Tuple[Tuple[float, float], ...]],
    Optional[np.ndarray],
]:
    """The region's deduplicated interval families and constant-event mask.

    Returns ``(shift_matrix, interval_lists, const_mask)``: column ``f``
    of the ``(trials, families)`` float64 shift matrix belongs to the
    family whose conditions are violated on trial ``t`` exactly when
    ``f_candidate - shift_matrix[t, f]`` lies in one of
    ``interval_lists[f]`` (constant, pairwise disjoint).  Families
    reached through several collision events — e.g. the
    spectator-difference conditions of two triples sharing the same
    spectator pair — are emitted once: duplicates change no union.
    All family shifts of one kind are computed as a single broadcast
    expression (one vectorized pass per kind instead of one numpy chain
    per family), with elementwise arithmetic identical to the per-family
    formulation.

    Open-ended tails (``|x| > c34`` and the far condition-6 band) are
    clamped to ``+-``:data:`CLAMP_GHZ` — far outside any candidate band,
    so no merge decision or candidate count changes — keeping the packed
    merge kernel free of non-finite arithmetic.

    The returned mask (or None) marks trials failing a *constant* event:
    spectator-spectator conditions of triples centred on the scanned
    qubit, which involve only assigned qubits and therefore fail the
    same trials for every candidate.  It is computed with the joint
    kernel's own arithmetic, so it is bit-exact, not epsilon-bounded.
    """
    t = thresholds
    c2 = -delta_ghz / 2.0
    c34 = -delta_ghz - t.condition_3_ghz
    c6 = -delta_ghz
    clamp = CLAMP_GHZ

    # Pair conditions 1-4 folded onto the signed difference axis x:
    # x in (-t1, t1) u +-(c2 -+ t2, c2 +- t2) u {|x| > c34}.  The set is
    # symmetric in x, so the scanned qubit's position in the pair (x =
    # +-(f - shift)) never matters.
    pair_intervals = (
        (-t.condition_1_ghz, t.condition_1_ghz),
        (c2 - t.condition_2_ghz, c2 + t.condition_2_ghz),
        (-c2 - t.condition_2_ghz, -c2 + t.condition_2_ghz),
        (c34, clamp),
        (-clamp, -c34),
    )
    # Triple conditions 5-6 on the spectator difference x = f_i - f_k
    # (also symmetric in x).
    spectator_intervals = (
        (-t.condition_5_ghz, t.condition_5_ghz),
        (c6 - t.condition_6_ghz, c6 + t.condition_6_ghz),
        (-c6 - t.condition_6_ghz, -c6 + t.condition_6_ghz),
    )
    c7_centre_intervals = ((-0.5 * t.condition_7_ghz, 0.5 * t.condition_7_ghz),)
    c7_spectator_intervals = ((-t.condition_7_ghz, t.condition_7_ghz),)

    q = int(qubit_index)
    # Group the deduplicated families by kind; each kind's shifts are one
    # broadcast expression over its member columns.
    difference_others: List[int] = []     # x = f + n_q - f_other^s ...
    difference_intervals: List[Tuple] = []  # ... against pair or spectator sets
    seen_pair = set()
    seen_spectator = set()
    centre_pairs: List[Tuple[int, int]] = []       # ("c7-centre", i, k)
    seen_centre = set()
    spectator_jo: List[Tuple[int, int]] = []       # ("c7-spectator", j, other)
    seen_spectator_jo = set()
    const_pairs: List[Tuple[int, int]] = []        # spectator-spectator events

    for a, b in pairs:
        other = int(b) if int(a) == q else int(a)
        # x = (f + noise_q) - (base_other + noise_other):
        # f - shift_t in interval  <=>  x in interval.
        if other not in seen_pair:
            seen_pair.add(other)
            difference_others.append(other)
            difference_intervals.append(pair_intervals)

    for j, i, k in triples:
        j, i, k = int(j), int(i), int(k)
        if q == j:
            # Conditions 5-6 involve only the two (assigned) spectators:
            # a constant event, evaluated with the kernel's arithmetic.
            const_pairs.append((i, k))
            # Condition 7: |2(f + n_j) + delta - f_i^s - f_k^s| < t7
            # <=>  f - shift_t in (-t7/2, t7/2).
            key = (min(i, k), max(i, k))
            if key not in seen_centre:
                seen_centre.add(key)
                centre_pairs.append((i, k))
        else:
            other = k if q == i else i
            # Spectator difference x = +-(f + noise_q - f_other^s).
            if other not in seen_spectator:
                seen_spectator.add(other)
                difference_others.append(other)
                difference_intervals.append(spectator_intervals)
            # Condition 7 with the scanned qubit as a spectator:
            # |2 f_j^s + delta - f_other^s - (f + n_q)| < t7
            # <=>  f - shift_t in (-t7, t7).
            if (j, other) not in seen_spectator_jo:
                seen_spectator_jo.add((j, other))
                spectator_jo.append((j, other))

    noise_q = noise[:, q]
    columns: List[np.ndarray] = []
    interval_lists: List[Tuple[Tuple[float, float], ...]] = []

    if difference_others:
        shifts = (
            base[difference_others][None, :] + noise[:, difference_others]
        ) - noise_q[:, None]
        columns.append(shifts)
        interval_lists.extend(difference_intervals)
    if centre_pairs:
        ii = [i for i, _ in centre_pairs]
        kk = [k for _, k in centre_pairs]
        shifts = 0.5 * (
            (base[ii] + base[kk] - delta_ghz)[None, :]
            + ((noise[:, ii] + noise[:, kk]) - 2.0 * noise_q[:, None])
        )
        columns.append(shifts)
        interval_lists.extend([c7_centre_intervals] * len(centre_pairs))
    if spectator_jo:
        jj = [j for j, _ in spectator_jo]
        oo = [o for _, o in spectator_jo]
        shifts = (
            (2.0 * base[jj] + delta_ghz - base[oo])[None, :]
            + ((2.0 * noise[:, jj] - noise[:, oo]) - noise_q[:, None])
        )
        columns.append(shifts)
        interval_lists.extend([c7_spectator_intervals] * len(spectator_jo))

    const_mask: Optional[np.ndarray] = None
    if const_pairs:
        ii = [i for i, _ in const_pairs]
        kk = [k for _, k in const_pairs]
        diff = np.abs((base[ii] - base[kk])[None, :] + (noise[:, ii] - noise[:, kk]))
        hit = diff < t.condition_5_ghz
        hit |= np.abs(diff - c6) < t.condition_6_ghz
        const_mask = hit.any(axis=1)

    if columns:
        shift_matrix = columns[0] if len(columns) == 1 else np.concatenate(columns, axis=1)
    else:
        shift_matrix = np.empty((noise.shape[0], 0), dtype=float)
    return shift_matrix, interval_lists, const_mask


def _single_family_counts(
    bins: CandidateBins,
    shifts: np.ndarray,
    intervals: Tuple[Tuple[float, float], ...],
    epsilon: float = SINGLE_FAMILY_EPSILON,
) -> Tuple[np.ndarray, np.ndarray]:
    """(lower, upper) counts for a region with one interval family.

    One family's intervals are pairwise disjoint, so its translated
    endpoint counts — all intervals batched into one broadcast and two
    binning passes — are the exact union count; no merge needed.  The
    arithmetic stays in float64, so the tight
    :data:`SINGLE_FAMILY_EPSILON` applies and the bounds pin the joint
    count for essentially every candidate.
    """
    xlo = np.array([pair[0] for pair in intervals])
    xhi = np.array([pair[1] for pair in intervals])
    lows = (shifts[:, None] + xlo[None, :]).ravel()
    highs = (shifts[:, None] + xhi[None, :]).ravel()
    upper, lower = bins.bound_counts(lows, highs, epsilon)
    # Narrowed counts of an empty narrowed interval cannot go negative
    # here (widths exceed 2 * epsilon by screening_applicable), but the
    # sum over intervals is clamped for symmetry with the merged path.
    np.maximum(lower, 0, out=lower)
    return lower.astype(np.int64), upper.astype(np.int64)


class _PreparedRegion:
    """One region's screen input after family building and band filtering."""

    __slots__ = ("events", "constant", "single", "lows", "highs")

    def __init__(self, events, constant, single, lows, highs):
        self.events = events          # family count incl. constant event
        self.constant = constant      # trials failing a constant event
        self.single = single          # (shifts, intervals) or None
        self.lows = lows              # (kept_trials, columns) float32 or None
        self.highs = highs


def _prepare_region(
    candidates: np.ndarray,
    qubit_index: int,
    base: np.ndarray,
    pairs: np.ndarray,
    triples: np.ndarray,
    noise: np.ndarray,
    delta_ghz: float,
    thresholds: CollisionThresholds,
    epsilon: float,
) -> _PreparedRegion:
    """Build one region's interval matrices, ready for the fused kernel."""
    shift_matrix, interval_lists, const_mask = _interval_families(
        qubit_index, base, pairs, triples, noise, delta_ghz, thresholds
    )
    events = len(interval_lists)

    constant = 0
    if const_mask is not None:
        events += 1
        constant = int(const_mask.sum())
        if constant:
            # Trials failing a candidate-independent event fail for every
            # candidate: count them once and keep only the rest, so the
            # interval unions never double-count them.
            shift_matrix = shift_matrix[~const_mask]

    # Drop interval columns no trial can land on a candidate: most
    # families carry carve-outs (the |x| > c34 tails, the far c6 band)
    # whose translates sit entirely outside the allowed frequency band,
    # and the merge pass is linear in the columns it has to sort.
    margin = 4.0 * epsilon
    band_lo = candidates[0] - margin if candidates.size else 0.0
    band_hi = candidates[-1] + margin if candidates.size else 0.0
    kept: List[Tuple[int, Tuple[Tuple[float, float], ...]]] = []
    if shift_matrix.shape[0] and shift_matrix.shape[1]:
        shift_min = shift_matrix.min(axis=0)
        shift_max = shift_matrix.max(axis=0)
        for column, intervals in enumerate(interval_lists):
            in_band = tuple(
                (xlo, xhi) for xlo, xhi in intervals
                if xlo + shift_min[column] < band_hi
                and xhi + shift_max[column] > band_lo
            )
            if in_band:
                kept.append((column, in_band))

    if not kept:
        return _PreparedRegion(events, constant, None, None, None)
    if len(kept) == 1:
        column, intervals = kept[0]
        return _PreparedRegion(
            events, constant, (shift_matrix[:, column], intervals), None, None
        )

    families: List[int] = []
    column_lo: List[float] = []
    column_hi: List[float] = []
    for column, intervals in kept:
        for xlo, xhi in intervals:
            families.append(column)
            column_lo.append(xlo)
            column_hi.append(xhi)
    family_of_column = np.array(families, dtype=np.intp)
    lo_offsets = np.array(column_lo, dtype=np.float32)
    hi_offsets = np.array(column_hi, dtype=np.float32)
    # Pre-order columns by the first trial's interval lows: rows differ
    # only by per-trial noise, so every row arrives nearly sorted and
    # the merge kernels' sorts run at their adaptive best case.  Column
    # order is immaterial to the result — each backend fully sorts the
    # packed endpoints per row before merging.
    shift32 = shift_matrix.astype(np.float32)
    order = np.argsort(shift32[0, family_of_column] + lo_offsets, kind="stable")
    family_of_column = family_of_column[order]
    gathered = shift32[:, family_of_column]
    lows = gathered + lo_offsets[order][None, :]
    highs = gathered + hi_offsets[order][None, :]
    return _PreparedRegion(events, constant, None, lows, highs)


def screen_candidate_bounds_batch(
    candidates: np.ndarray,
    regions: Sequence[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    delta_ghz: float,
    thresholds: CollisionThresholds,
    epsilon: float = SCREENING_EPSILON,
) -> List[ScreeningBounds]:
    """Joint-count bounds for many local regions in one fused kernel call.

    The cross-qubit batched ranking path: every region shares the
    candidate grid, and all multi-family regions stack their interval
    matrices — rows tagged with a per-region slot, columns padded to a
    common width with :data:`~repro.collision.merge_kernel.SENTINEL`
    intervals that count nothing — into a single
    :func:`~repro.collision.merge_kernel.fused_union_bounds` invocation,
    amortizing kernel dispatch across a whole BFS frontier.  Each
    region's bounds are identical to its own
    :func:`screen_candidate_bounds` call: the per-slot merge never mixes
    rows of different regions.

    Args:
        candidates: Shared candidate frequencies, ascending.
        regions: Per scanned qubit: ``(qubit_index, base_frequencies,
            pairs, triples, noise)`` exactly as accepted by
            :func:`screen_candidate_bounds`.
        delta_ghz, thresholds, epsilon: As for
            :func:`screen_candidate_bounds`.
    """
    pack_started = time.perf_counter_ns()
    candidates = np.asarray(candidates, dtype=float)
    bins = candidate_bins(candidates)
    prepared = [
        _prepare_region(
            candidates, qubit_index, np.asarray(base, dtype=float),
            pairs, triples, noise, delta_ghz, thresholds, epsilon,
        )
        for qubit_index, base, pairs, triples, noise in regions
    ]

    merged = [region for region in prepared if region.lows is not None]
    slot_of: Dict[int, int] = {
        id(region): slot for slot, region in enumerate(merged)
    }
    lower_merged = upper_merged = None
    merge_ns = 0
    if merged:
        width = max(region.lows.shape[1] for region in merged)
        rows = sum(region.lows.shape[0] for region in merged)
        lows = np.empty((rows, width), dtype=np.float32)
        highs = np.empty((rows, width), dtype=np.float32)
        slots = np.empty(rows, dtype=np.int64)
        cursor = 0
        for slot, region in enumerate(merged):
            count, cols = region.lows.shape
            lows[cursor:cursor + count, :cols] = region.lows
            highs[cursor:cursor + count, :cols] = region.highs
            if cols < width:  # sentinel intervals sort last, count nothing
                lows[cursor:cursor + count, cols:] = SENTINEL
                highs[cursor:cursor + count, cols:] = SENTINEL
            slots[cursor:cursor + count] = slot
            cursor += count
        merge_started = time.perf_counter_ns()
        pack_ns = merge_started - pack_started
        lower_merged, upper_merged = fused_union_bounds(
            lows, highs, slots, len(merged), bins, epsilon
        )
        merge_ns = time.perf_counter_ns() - merge_started
    else:
        pack_ns = time.perf_counter_ns() - pack_started

    results: List[ScreeningBounds] = []
    for region in prepared:
        if region.lows is not None:
            slot = slot_of[id(region)]
            lower = lower_merged[slot].copy()
            upper = upper_merged[slot].copy()
        elif region.single is not None:
            started = time.perf_counter_ns()
            shifts, intervals = region.single
            lower, upper = _single_family_counts(bins, shifts, intervals)
            merge_ns += time.perf_counter_ns() - started
        else:
            lower = np.zeros(candidates.shape[0], dtype=np.int64)
            upper = lower.copy()
        if region.constant:
            lower += region.constant
            upper += region.constant
        results.append(
            ScreeningBounds(lower=lower, upper=upper, events=region.events)
        )
    _STATS["pack_ns"] += pack_ns
    _STATS["merge_ns"] += merge_ns
    from repro.runtime.metrics import global_metrics

    metrics = global_metrics()
    metrics.observe("screening/pack", pack_ns * 1e-9)
    metrics.observe("screening/merge", merge_ns * 1e-9)
    return results


def screen_candidate_bounds(
    candidates: np.ndarray,
    qubit_index: int,
    base_frequencies: np.ndarray,
    pairs: np.ndarray,
    triples: np.ndarray,
    noise: np.ndarray,
    delta_ghz: float,
    thresholds: CollisionThresholds,
    epsilon: float = SCREENING_EPSILON,
) -> ScreeningBounds:
    """Joint failed-trial count bounds for every candidate frequency.

    Args:
        candidates: Candidate frequencies of the scanned qubit, in
            ascending order (the allocator's grid and every subset of it).
        qubit_index: Column of the scanned qubit in the region arrays.
        base_frequencies: Designed frequencies of the region's qubits; the
            scanned qubit's own entry is ignored.
        pairs: ``(P, 2)`` connected pairs, as region column indices; every
            pair must contain ``qubit_index``.
        triples: ``(T, 3)`` collision triples ``(j, i, k)``, as region
            column indices; every triple must contain ``qubit_index``.
        noise: ``(trials, region_size)`` CRN fabrication-noise tensor —
            the same tensor the joint kernel verifies survivors with.
        delta_ghz: Qubit anharmonicity (must satisfy
            :func:`screening_applicable` together with ``thresholds``).
        thresholds: Collision thresholds.
        epsilon: Float-safety margin (see module docstring).
    """
    return screen_candidate_bounds_batch(
        candidates,
        [(qubit_index, base_frequencies, pairs, triples, noise)],
        delta_ghz, thresholds, epsilon,
    )[0]


# ---------------------------------------------------------------------------
# Process-wide screening instrumentation (mirrors allocation_call_count):
# the benchmarks and tests read pruned-candidate fractions and the
# cold-path phase breakdown from here.
# ---------------------------------------------------------------------------

_STATS: Dict[str, int] = {
    "calls": 0,        # screened ranking calls
    "candidates": 0,   # candidates entering screened rankings
    "exact": 0,        # candidates decided by tight bounds alone
    "verified": 0,     # candidates verified by the joint kernel
    "pruned": 0,       # candidates provably discarded without verification
    "pack_ns": 0,      # family building + endpoint matrix packing
    "merge_ns": 0,     # fused merge kernel (sort + sweep + count)
    "dispute_ns": 0,   # survivor selection among undecided candidates
    "joint_ns": 0,     # joint-kernel verification of survivors
}

#: The phase-timer keys of :data:`_STATS`, in reporting order.
PHASE_KEYS = ("pack_ns", "merge_ns", "dispute_ns", "joint_ns")


def record_screening(
    candidates: int,
    exact: int,
    verified: int,
    pruned: int,
    *,
    calls: int = 1,
    dispute_ns: int = 0,
    joint_ns: int = 0,
) -> None:
    """Accumulate one screened ranking (or batch of them) into the stats.

    ``pack_ns``/``merge_ns`` accumulate at the kernel call site
    (:func:`screen_candidate_bounds_batch`); the decision/verification
    phases are timed by the caller and land here.  The same totals are
    mirrored into the structured metrics registry
    (:mod:`repro.runtime.metrics`) in one locked update, so
    ``--metrics-out`` reports prune fractions and the phase breakdown
    merged associatively across sweep workers.
    """
    _STATS["calls"] += calls
    _STATS["candidates"] += candidates
    _STATS["exact"] += exact
    _STATS["verified"] += verified
    _STATS["pruned"] += pruned
    _STATS["dispute_ns"] += dispute_ns
    _STATS["joint_ns"] += joint_ns
    from repro.runtime.metrics import global_metrics

    metrics = global_metrics()
    metrics.increment_many({
        "screening/calls": calls,
        "screening/candidates": candidates,
        "screening/exact": exact,
        "screening/verified": verified,
        "screening/pruned": pruned,
        f"screening/backend/{active_backend()}": calls,
    })
    # Wall-time phases ride the timer section: timers merge associatively
    # across workers exactly like counters, but are exempt from the
    # counter-delta determinism contract (wall time never repeats).
    metrics.observe("screening/dispute", dispute_ns * 1e-9)
    metrics.observe("screening/joint", joint_ns * 1e-9)


def screening_stats() -> Dict[str, object]:
    """Process-wide screening counters (see :func:`record_screening`).

    Includes the per-phase cold-path timers (:data:`PHASE_KEYS`) and the
    active merge-kernel ``backend`` name.
    """
    stats: Dict[str, object] = dict(_STATS)
    stats["backend"] = active_backend()
    return stats


def reset_screening_stats() -> Dict[str, object]:
    """Zero the process-wide screening counters; returns the previous values."""
    previous = screening_stats()
    for key in _STATS:
        _STATS[key] = 0
    return previous
