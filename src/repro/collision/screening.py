"""Exact interval-count screening of Algorithm 3 candidate frequencies.

The frequency-allocation hot loop ranks every candidate frequency of one
scanned qubit by the joint Monte Carlo failure count of its local
collision region.  The joint kernel costs ``O(candidates x trials x
connections)`` — it materializes every (candidate, trial, connection)
frequency difference.  This module computes provably correct *per-event
interval counts* that bound — and almost always pin exactly — every
candidate's joint count in ``O(trials log trials + candidates)``, so the
expensive joint kernel only runs on the rare candidates the bounds
cannot decide.

**Why per-event failure sets are intervals.**  Fix the common-random-
numbers noise tensor and look at one collision event — one condition
family on one pair or triple of the local region.  Every such condition
depends on the scanned qubit's candidate frequency ``f`` through a
single monotone expression (``f`` enters each frequency difference
exactly once), so for each trial the set of candidate frequencies
violating the condition is an *interval* on the ``f`` axis: a
trial-specific shift of a constant threshold interval.

**From intervals to exact joint counts.**  The joint count ``J(f)`` is
the number of trials in which ``f`` lies in the *union* of that trial's
violating intervals.  Events that do not involve ``f`` at all
(spectator-spectator conditions of triples centred on the scanned
qubit) fail identical trial sets for every candidate: those trials are
counted once and removed.  For the remaining trials the per-trial union
is merged — sort each trial's interval endpoints, sweep a running
maximum — into *disjoint* components, after which counting becomes a
global prefix-sum over sorted endpoints: a candidate is inside exactly
``#{component lows < f} - #{component highs <= f}`` components, and
because components are disjoint within a trial that sum over all trials
*is* the number of failing trials.  No per-candidate work ever touches
the trial axis.

Regions with a single event family skip the merge entirely: one
family's intervals are pairwise disjoint by construction
(:func:`screening_applicable` checks the threshold geometry), so the
family's translated endpoint counts are already exact.

**Floating-point safety.**  The joint kernel evaluates conditions with
float arithmetic whose rounding differs from the interval-endpoint
arithmetic by a bounded amount (a few ULPs — ~1e-15 GHz — on the
float64 single-family path; ~1e-6 GHz on the float32 merged-matrix
path).  Every count is therefore computed twice: once with intervals
*widened* by the path's epsilon (:data:`SINGLE_FAMILY_EPSILON` or
:data:`SCREENING_EPSILON`, both far above the respective rounding and
far below the 1e-2 GHz candidate grid step), giving an upper bound
``J+``, and once *narrowed* by it, giving a lower bound ``J-``.  A
candidate within epsilon of a condition boundary gets ``J- < J+`` and
is handed to the joint kernel instead of being trusted to the bounds;
everywhere else ``J- == J+`` pins the joint count exactly.
Correctness never depends on the epsilon being tight, only on it
exceeding the path's rounding error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collision.conditions import CollisionThresholds

#: Safety margin (GHz) between the interval-count arithmetic and the joint
#: kernel's float rounding.  The merged-interval matrices are built in
#: float32 (they are sort/scan bound), whose worst-case accumulated
#: rounding near 5.3 GHz is ~1e-6 GHz; the margin sits several times
#: above that and three decades below the 1e-2 GHz candidate grid step.
SCREENING_EPSILON = 5e-6

#: Margin used by the float64 single-family fast path, whose endpoint
#: arithmetic rounds at ~1e-15 GHz.  The tighter margin keeps the
#: single-family bounds exact for essentially every candidate.
SINGLE_FAMILY_EPSILON = 1e-9


@dataclass(frozen=True)
class ScreeningBounds:
    """Per-candidate bounds on the joint failed-trial count of one region.

    Attributes:
        lower: ``(num_candidates,)`` int64 — for every candidate, a count
            the joint kernel is *guaranteed* to reach (the narrowed
            merged-interval count).
        upper: ``(num_candidates,)`` int64 — a count the joint kernel is
            guaranteed not to exceed (the widened merged-interval count).
            Bounds agree — pinning the joint count exactly — unless the
            candidate sits within :data:`SCREENING_EPSILON` of a
            condition boundary.
        events: Number of distinct collision event families screened
            (deduplicated interval families plus the constant event).
    """

    lower: np.ndarray
    upper: np.ndarray
    events: int

    @property
    def exact(self) -> np.ndarray:
        """Boolean mask of candidates whose joint count the bounds pin."""
        return self.lower == self.upper


def screening_applicable(
    delta_ghz: float,
    thresholds: CollisionThresholds,
    epsilon: float = SCREENING_EPSILON,
) -> bool:
    """Whether the interval geometry supports exact per-event counts.

    Within one event family the member intervals must stay pairwise
    disjoint (the single-family fast path sums their counts) and every
    interval must keep positive width after the ``epsilon`` narrowing.
    The paper's constants satisfy every gap by an order of magnitude;
    exotic threshold configurations (which also defeat the folded joint
    kernel) simply disable screening.
    """
    t = thresholds
    if not delta_ghz < 0.0:
        return False
    margin = 4.0 * epsilon
    c2 = -delta_ghz / 2.0
    c34 = -delta_ghz - t.condition_3_ghz
    c6 = -delta_ghz
    widths = (
        t.condition_1_ghz, t.condition_2_ghz, t.condition_3_ghz,
        t.condition_5_ghz, t.condition_6_ghz, t.condition_7_ghz,
    )
    return (
        min(widths) > margin
        # pair family: (-t1, t1), +-(c2 -+ t2), |x| > c34 stay disjoint
        and t.condition_1_ghz + margin < c2 - t.condition_2_ghz
        and c2 + t.condition_2_ghz + margin < c34
        # spectator family: (-t5, t5) vs +-(c6 -+ t6)
        and t.condition_5_ghz + margin < c6 - t.condition_6_ghz
    )


def _interval_families(
    qubit_index: int,
    base: np.ndarray,
    pairs: np.ndarray,
    triples: np.ndarray,
    noise: np.ndarray,
    delta_ghz: float,
    thresholds: CollisionThresholds,
) -> Tuple[List[Tuple[np.ndarray, Tuple[Tuple[float, float], ...]]], Optional[np.ndarray]]:
    """The region's deduplicated interval families and constant-event mask.

    Each family is ``(shifts, intervals)``: on trial ``t`` the family's
    conditions are violated exactly when ``f - shifts[t]`` lies in one of
    the ``intervals`` (constant, pairwise disjoint).  Families reached
    through several collision events — e.g. the spectator-difference
    conditions of two triples sharing the same spectator pair — are
    emitted once: duplicates change no union.

    The returned mask (or None) marks trials failing a *constant* event:
    spectator-spectator conditions of triples centred on the scanned
    qubit, which involve only assigned qubits and therefore fail the
    same trials for every candidate.  It is computed with the joint
    kernel's own arithmetic, so it is bit-exact, not epsilon-bounded.
    """
    t = thresholds
    c2 = -delta_ghz / 2.0
    c34 = -delta_ghz - t.condition_3_ghz
    c6 = -delta_ghz
    inf = np.inf

    # Pair conditions 1-4 folded onto the signed difference axis x:
    # x in (-t1, t1) u +-(c2 -+ t2, c2 +- t2) u {|x| > c34}.  The set is
    # symmetric in x, so the scanned qubit's position in the pair (x =
    # +-(f - shift)) never matters.
    pair_intervals = (
        (-t.condition_1_ghz, t.condition_1_ghz),
        (c2 - t.condition_2_ghz, c2 + t.condition_2_ghz),
        (-c2 - t.condition_2_ghz, -c2 + t.condition_2_ghz),
        (c34, inf),
        (-inf, -c34),
    )
    # Triple conditions 5-6 on the spectator difference x = f_i - f_k
    # (also symmetric in x).
    spectator_intervals = (
        (-t.condition_5_ghz, t.condition_5_ghz),
        (c6 - t.condition_6_ghz, c6 + t.condition_6_ghz),
        (-c6 - t.condition_6_ghz, -c6 + t.condition_6_ghz),
    )

    q = int(qubit_index)
    families: Dict[Tuple, Tuple[np.ndarray, Tuple[Tuple[float, float], ...]]] = {}
    const_mask: Optional[np.ndarray] = None

    for a, b in pairs:
        other = int(b) if int(a) == q else int(a)
        # x = (f + noise_q) - (base_other + noise_other):
        # f - shift_t in interval  <=>  x in interval.
        key = ("pair", other)
        if key not in families:
            shifts = base[other] + noise[:, other] - noise[:, q]
            families[key] = (shifts, pair_intervals)

    for j, i, k in triples:
        j, i, k = int(j), int(i), int(k)
        if q == j:
            # Conditions 5-6 involve only the two (assigned) spectators:
            # a constant event, evaluated with the kernel's arithmetic.
            diff = np.abs((base[i] - base[k]) + (noise[:, i] - noise[:, k]))
            hit = diff < t.condition_5_ghz
            hit |= np.abs(diff - c6) < t.condition_6_ghz
            const_mask = hit if const_mask is None else (const_mask | hit)
            # Condition 7: |2(f + n_j) + delta - f_i^s - f_k^s| < t7
            # <=>  f - shift_t in (-t7/2, t7/2).
            key = ("c7-centre", min(i, k), max(i, k))
            if key not in families:
                shifts = 0.5 * (
                    (base[i] + base[k] - delta_ghz)
                    + (noise[:, i] + noise[:, k] - 2.0 * noise[:, q])
                )
                families[key] = (
                    shifts, ((-0.5 * t.condition_7_ghz, 0.5 * t.condition_7_ghz),)
                )
        else:
            other = k if q == i else i
            # Spectator difference x = +-(f + noise_q - f_other^s).
            key = ("spectator", other)
            if key not in families:
                shifts = base[other] + noise[:, other] - noise[:, q]
                families[key] = (shifts, spectator_intervals)
            # Condition 7 with the scanned qubit as a spectator:
            # |2 f_j^s + delta - f_other^s - (f + n_q)| < t7
            # <=>  f - shift_t in (-t7, t7).
            key = ("c7-spectator", j, other)
            if key not in families:
                shifts = (
                    (2.0 * base[j] + delta_ghz - base[other])
                    + (2.0 * noise[:, j] - noise[:, other] - noise[:, q])
                )
                families[key] = (
                    shifts, ((-t.condition_7_ghz, t.condition_7_ghz),)
                )

    return list(families.values()), const_mask


class _CandidateBins:
    """Maps interval endpoints to per-candidate membership counts.

    ``counts(lows, highs)`` returns ``#{j : lows[j] < f < highs[j]}``
    for every candidate ``f`` of the (ascending) grid.  Valid for any
    interval collection with ``lows[j] < highs[j]`` (the identity
    ``[lo < f < hi] = [lo < f] - [hi <= f]`` holds per interval); when
    the intervals are pairwise disjoint within a trial, summing over a
    trial's intervals counts membership in their union.

    No endpoint is ever sorted: each lands in a candidate bin — by a
    multiply-floor on the uniform allocator grid, or one
    ``searchsorted`` against the few-dozen-entry grid otherwise — and a
    cumulative histogram turns bins into per-candidate counts.  The grid
    and the binning arithmetic stay in float64, so binning adds rounding
    far below even :data:`SINGLE_FAMILY_EPSILON`; float32 *endpoint*
    arrays (the merged path's matrices) are covered by the larger
    :data:`SCREENING_EPSILON` their path uses.  Exact grid/endpoint
    coincidences therefore always stay inside the widened/narrowed
    uncertainty the caller accounts for.
    """

    def __init__(self, candidates: np.ndarray) -> None:
        self.num = candidates.shape[0]
        self.candidates = np.asarray(candidates, dtype=float)
        steps = np.diff(self.candidates)
        self.uniform = steps.size > 0 and bool(
            (np.abs(steps - steps[0]) < 1e-9 * max(1.0, abs(steps[0]))).all()
        )
        if self.uniform:
            self.origin = float(self.candidates[0])
            self.inverse_step = float(1.0 / steps[0])

    def _start_bins(self, lows: np.ndarray) -> np.ndarray:
        """Per endpoint: the first candidate index with ``f > lo``."""
        if not self.uniform:
            return np.searchsorted(self.candidates, lows, side="right")
        raw = np.floor((lows - self.origin) * self.inverse_step) + 1.0
        return np.clip(raw, 0, self.num).astype(np.int64)

    def _end_bins(self, highs: np.ndarray) -> np.ndarray:
        """Per endpoint: the first candidate index with ``f >= hi``."""
        if not self.uniform:
            return np.searchsorted(self.candidates, highs, side="left")
        raw = np.ceil((highs - self.origin) * self.inverse_step)
        return np.clip(raw, 0, self.num).astype(np.int64)

    def counts(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        num = self.num
        # [lo_j < f_c]  <=>  c >= start_bin_j;  [hi_j <= f_c]  <=>  c >= end_bin_j.
        started = np.cumsum(
            np.bincount(self._start_bins(lows), minlength=num + 1)[:num]
        )
        ended = np.cumsum(
            np.bincount(self._end_bins(highs), minlength=num + 1)[:num]
        )
        return started - ended

    def bound_counts(
        self, lows: np.ndarray, highs: np.ndarray, epsilon
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(upper, lower) membership counts of intervals widened and
        narrowed by ``epsilon``, in one fused binning pass (the widened
        and narrowed endpoint arrays share segmented histograms)."""
        num = self.num
        size = lows.shape[0]
        start_bins = self._start_bins(np.concatenate((lows - epsilon, lows + epsilon)))
        end_bins = self._end_bins(np.concatenate((highs + epsilon, highs - epsilon)))
        start_bins[size:] += num + 1
        end_bins[size:] += num + 1
        started = np.bincount(
            start_bins, minlength=2 * (num + 1)
        ).reshape(2, num + 1)[:, :num].cumsum(axis=1)
        ended = np.bincount(
            end_bins, minlength=2 * (num + 1)
        ).reshape(2, num + 1)[:, :num].cumsum(axis=1)
        diff = started - ended
        return diff[0], diff[1]


def _single_family_counts(
    bins: _CandidateBins,
    family: Tuple[np.ndarray, Tuple[Tuple[float, float], ...]],
    epsilon: float = SINGLE_FAMILY_EPSILON,
) -> Tuple[np.ndarray, np.ndarray]:
    """(lower, upper) counts for a region with one interval family.

    One family's intervals are pairwise disjoint, so its translated
    endpoint counts — all intervals batched into one broadcast and two
    binning passes — are the exact union count; no merge needed.  The
    arithmetic stays in float64, so the tight
    :data:`SINGLE_FAMILY_EPSILON` applies and the bounds pin the joint
    count for essentially every candidate.
    """
    shifts, intervals = family
    xlo = np.array([pair[0] for pair in intervals])
    xhi = np.array([pair[1] for pair in intervals])
    lows = (shifts[:, None] + xlo[None, :]).ravel()
    highs = (shifts[:, None] + xhi[None, :]).ravel()
    upper, lower = bins.bound_counts(lows, highs, epsilon)
    # Narrowed counts of an empty narrowed interval cannot go negative
    # here (widths exceed 2 * epsilon by screening_applicable), but the
    # sum over intervals is clamped for symmetry with the merged path.
    np.maximum(lower, 0, out=lower)
    return lower, upper


def _merged_counts(
    bins: _CandidateBins,
    families: Sequence[Tuple[np.ndarray, Tuple[Tuple[float, float], ...]]],
    epsilon: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """(lower, upper) merged-union counts across several interval families.

    Builds the ``(trials, total_intervals)`` endpoint matrices (float32
    — the pass is sort/scan bound, and :data:`SCREENING_EPSILON` sits
    several times above float32 rounding at band frequencies), sorts
    each trial's intervals by their low endpoint, and merges overlaps
    with a running maximum of high endpoints into *disjoint* components.
    Counting those components with endpoints pushed ``epsilon`` outward
    yields the exact size of the *widened* union (an upper bound on the
    joint kernel's failing-trial count) and pulled ``epsilon`` inward
    the exact size of the *narrowed* union (a lower bound) — the two
    agree, pinning the joint count, away from epsilon boundaries.

    One merge decides both spaces: on a trial where every
    low-vs-previous-high gap clears the ``2 * epsilon`` dispute window,
    widening or narrowing endpoints flips no merge decision, so the
    plain components are simultaneously the widened-space and
    narrowed-space merges.  The rare trials with an in-window gap are
    excluded and re-merged per space in :func:`_disputed_counts`.
    """
    trials = families[0][0].shape[0]
    num_families = len(families)
    shift_matrix = np.empty((trials, num_families), dtype=np.float32)
    family_of_column = []
    column_lo = []
    column_hi = []
    for index, (shifts, intervals) in enumerate(families):
        shift_matrix[:, index] = shifts
        for xlo, xhi in intervals:
            family_of_column.append(index)
            column_lo.append(xlo)
            column_hi.append(xhi)
    gathered = shift_matrix[:, family_of_column]
    lows = gathered + np.array(column_lo, dtype=np.float32)[None, :]
    highs = gathered + np.array(column_hi, dtype=np.float32)[None, :]

    order = np.argsort(lows, axis=1)
    order += (np.arange(trials) * order.shape[1])[:, None]
    lows = lows.ravel()[order]
    highs = highs.ravel()[order]
    running_max = np.maximum.accumulate(highs, axis=1)
    # Gap between each interval's low and every previous high of its
    # trial.  Lower-tail intervals put -inf in ``lows``; a finite first
    # column keeps (-inf) - (-inf) NaNs out.
    gap = np.empty_like(lows)
    gap[:, 0] = np.float32(3.0e38)
    np.subtract(lows[:, 1:], running_max[:, :-1], out=gap[:, 1:])

    eps = np.float32(epsilon)
    # Merge decisions are shared between the widened and narrowed spaces
    # whenever the low-vs-previous-high gap clears 2 * epsilon; the
    # window is tested with an extra epsilon of slack so float32 rounding
    # of the gap itself can never hide a genuine dispute.
    window = np.float32(3.0 * epsilon)
    disputed = (np.abs(gap) <= window).any(axis=1)
    any_disputed = bool(disputed.any())

    # One merge pass decides the components: an interval starts a new
    # component when its low clears every previous high, and the
    # component's high is the running maximum at its last member (the
    # start condition makes every earlier high smaller, so the running
    # maximum inside a component is the component's own).  On trials
    # free of disputes the same components are exactly the widened-space
    # and narrowed-space merges, so counting them with endpoints pushed
    # epsilon outward/inward yields the two unions' exact sizes.
    starts = gap > np.float32(0.0)
    starts[:, 0] = True
    if any_disputed:
        # Trials whose merge decisions sit inside the dispute window are
        # excluded here and re-merged with per-space margins below.
        starts &= ~disputed[:, None]
    ends = np.empty_like(starts)
    ends[:, :-1] = starts[:, 1:]
    ends[:, -1] = True
    if any_disputed:
        ends[disputed, -1] = False
    upper, lower = bins.bound_counts(lows[starts], running_max[ends], eps)
    if any_disputed:
        upper_d, lower_d = _disputed_counts(
            bins, lows[disputed], running_max[disputed], gap[disputed], eps
        )
        upper += upper_d
        lower += lower_d
    # A narrowed component can collapse (or a candidate can sit in a
    # widened-only sliver); the joint count is never negative and never
    # below the narrowed count wherever both are meaningful.
    np.maximum(lower, 0, out=lower)
    return lower.astype(np.int64), upper.astype(np.int64)


def _disputed_counts(
    bins: _CandidateBins,
    lows: np.ndarray,
    running_max: np.ndarray,
    gap: np.ndarray,
    eps: np.float32,
) -> Tuple[np.ndarray, np.ndarray]:
    """(upper, lower) contributions of the dispute-window trials.

    The trials re-merge on a tiny submatrix, each space with its own
    decision boundary: widened intervals touch when the raw gap is at
    most ``+2 * eps``, narrowed ones when it is at most ``-2 * eps``.
    Any margin keeps the *upper* count valid (splitting overlapping
    widened intervals or bridging disjoint ones only overcounts the
    widened union, which exceeds the kernel's failing set either way).
    The *lower* count is only valid when every merge decision is truly
    resolved, so trials with a gap inside the float32 rounding band of
    the narrowed boundary surrender their (at most one) count instead
    of risking an overcount.
    """

    def merge(low_matrix, max_matrix, gap_matrix, margin, sign):
        starts = gap_matrix > margin
        starts[:, 0] = True
        ends = np.empty_like(starts)
        ends[:, :-1] = starts[:, 1:]
        ends[:, -1] = True
        return bins.counts(
            low_matrix[starts] - sign * eps, max_matrix[ends] + sign * eps
        )

    two_eps = np.float32(2.0) * eps
    upper = merge(lows, running_max, gap, two_eps, np.float32(1.0))
    # Gaps within float32 rounding of the narrowed decision boundary are
    # genuinely undecidable; skip those trials in the lower count.
    undecidable = (np.abs(gap + two_eps) <= np.float32(4e-6)).any(axis=1)
    decidable = ~undecidable
    if decidable.any():
        lower = merge(
            lows[decidable], running_max[decidable], gap[decidable],
            -two_eps, np.float32(-1.0),
        )
    else:
        lower = np.zeros(bins.num, dtype=np.int64)
    return upper, lower


def screen_candidate_bounds(
    candidates: np.ndarray,
    qubit_index: int,
    base_frequencies: np.ndarray,
    pairs: np.ndarray,
    triples: np.ndarray,
    noise: np.ndarray,
    delta_ghz: float,
    thresholds: CollisionThresholds,
    epsilon: float = SCREENING_EPSILON,
) -> ScreeningBounds:
    """Joint failed-trial count bounds for every candidate frequency.

    Args:
        candidates: Candidate frequencies of the scanned qubit, in
            ascending order (the allocator's grid and every subset of it).
        qubit_index: Column of the scanned qubit in the region arrays.
        base_frequencies: Designed frequencies of the region's qubits; the
            scanned qubit's own entry is ignored.
        pairs: ``(P, 2)`` connected pairs, as region column indices; every
            pair must contain ``qubit_index``.
        triples: ``(T, 3)`` collision triples ``(j, i, k)``, as region
            column indices; every triple must contain ``qubit_index``.
        noise: ``(trials, region_size)`` CRN fabrication-noise tensor —
            the same tensor the joint kernel verifies survivors with.
        delta_ghz: Qubit anharmonicity (must satisfy
            :func:`screening_applicable` together with ``thresholds``).
        thresholds: Collision thresholds.
        epsilon: Float-safety margin (see module docstring).
    """
    candidates = np.asarray(candidates, dtype=float)
    base = np.asarray(base_frequencies, dtype=float)
    families, const_mask = _interval_families(
        qubit_index, base, pairs, triples, noise, delta_ghz, thresholds
    )
    events = len(families)

    constant = 0
    if const_mask is not None:
        events += 1
        constant = int(const_mask.sum())
        if constant:
            # Trials failing a candidate-independent event fail for every
            # candidate: count them once and keep only the rest, so the
            # interval unions never double-count them.
            keep = ~const_mask
            families = [(shifts[keep], intervals) for shifts, intervals in families]

    # Drop interval columns no trial can land on a candidate: most
    # families carry carve-outs (the |x| > c34 tails, the far c6 band)
    # whose translates sit entirely outside the allowed frequency band,
    # and the merge pass is linear in the columns it has to sort.
    margin = 4.0 * epsilon
    band_lo = candidates[0] - margin if candidates.size else 0.0
    band_hi = candidates[-1] + margin if candidates.size else 0.0
    in_band = []
    for shifts, intervals in families:
        if shifts.size == 0:
            continue
        shift_min = shifts.min()
        shift_max = shifts.max()
        kept = tuple(
            (xlo, xhi) for xlo, xhi in intervals
            if xlo + shift_min < band_hi and xhi + shift_max > band_lo
        )
        if kept:
            in_band.append((shifts, kept))
    families = in_band

    if not families:
        lower = np.full(candidates.shape[0], constant, dtype=np.int64)
        return ScreeningBounds(lower=lower, upper=lower.copy(), events=events)
    bins = _CandidateBins(candidates)
    if len(families) == 1:
        lower, upper = _single_family_counts(bins, families[0])
    else:
        lower, upper = _merged_counts(bins, families, epsilon)
    lower += constant
    upper += constant
    return ScreeningBounds(lower=lower, upper=upper, events=events)


# ---------------------------------------------------------------------------
# Process-wide screening instrumentation (mirrors allocation_call_count):
# the benchmarks and tests read pruned-candidate fractions from here.
# ---------------------------------------------------------------------------

_STATS: Dict[str, int] = {
    "calls": 0,        # screened ranking calls
    "candidates": 0,   # candidates entering screened rankings
    "exact": 0,        # candidates decided by tight bounds alone
    "verified": 0,     # candidates verified by the joint kernel
    "pruned": 0,       # candidates provably discarded without verification
}


def record_screening(candidates: int, exact: int, verified: int, pruned: int) -> None:
    """Accumulate one screened ranking call into the process-wide stats.

    The same totals are mirrored into the structured metrics registry
    (:mod:`repro.runtime.metrics`) so ``--metrics-out`` reports prune
    fractions merged across sweep workers.
    """
    _STATS["calls"] += 1
    _STATS["candidates"] += candidates
    _STATS["exact"] += exact
    _STATS["verified"] += verified
    _STATS["pruned"] += pruned
    from repro.runtime.metrics import global_metrics

    metrics = global_metrics()
    metrics.increment("screening/calls")
    metrics.increment("screening/candidates", candidates)
    metrics.increment("screening/exact", exact)
    metrics.increment("screening/verified", verified)
    metrics.increment("screening/pruned", pruned)


def screening_stats() -> Dict[str, int]:
    """Process-wide screening counters (see :func:`record_screening`)."""
    return dict(_STATS)


def reset_screening_stats() -> Dict[str, int]:
    """Zero the process-wide screening counters; returns the previous values."""
    previous = dict(_STATS)
    for key in _STATS:
        _STATS[key] = 0
    return previous
