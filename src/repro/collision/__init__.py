"""Frequency-collision model and Monte Carlo yield simulation.

Implements IBM's seven frequency-collision conditions (paper Figure 3)
and the Monte Carlo yield estimation procedure of Section 4.3.1: sample
Gaussian fabrication noise, add it to the designed frequencies, and count
the fraction of samples in which no collision condition is triggered
anywhere on the chip.
"""

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionCondition,
    CollisionThresholds,
    DEFAULT_THRESHOLDS,
    check_pair_collisions,
    check_triple_collisions,
    find_collisions,
)
from repro.collision.yield_simulator import (
    ScreenedCounts,
    YieldEstimate,
    YieldSimulator,
    collision_index_arrays,
    estimate_yield,
)
from repro.collision.merge_kernel import (
    active_backend,
    available_backends,
    fused_union_bounds,
    set_backend,
)
from repro.collision.screening import (
    SCREENING_EPSILON,
    ScreeningBounds,
    reset_screening_stats,
    screen_candidate_bounds,
    screen_candidate_bounds_batch,
    screening_applicable,
    screening_stats,
)
from repro.collision.analytic import (
    AnalyticYieldEstimate,
    estimate_yield_analytic,
    pair_collision_probability,
    triple_collision_probability,
)

__all__ = [
    "AnalyticYieldEstimate",
    "estimate_yield_analytic",
    "pair_collision_probability",
    "triple_collision_probability",
    "ANHARMONICITY_GHZ",
    "CollisionCondition",
    "CollisionThresholds",
    "DEFAULT_THRESHOLDS",
    "check_pair_collisions",
    "check_triple_collisions",
    "find_collisions",
    "YieldSimulator",
    "YieldEstimate",
    "ScreenedCounts",
    "ScreeningBounds",
    "SCREENING_EPSILON",
    "collision_index_arrays",
    "estimate_yield",
    "active_backend",
    "available_backends",
    "fused_union_bounds",
    "reset_screening_stats",
    "screen_candidate_bounds",
    "screen_candidate_bounds_batch",
    "screening_applicable",
    "screening_stats",
    "set_backend",
]
