"""Closed-form (analytic) yield estimation.

The Monte Carlo simulator of :mod:`repro.collision.yield_simulator` is the
paper's reference method.  This module provides a fast deterministic
approximation that is useful inside optimization loops and for sanity
checks: every collision condition of Figure 3 is a statement of the form

    | a . f  -  c |  <  t        (approximate equality), or
      a . f  >  c                (condition 4)

where ``a . f`` is a fixed linear combination of qubit frequencies.  Under
the fabrication model f = designed + N(0, sigma) iid, each such linear
combination is Gaussian with known mean (from the designed frequencies)
and standard deviation ``sigma * ||a||``, so the probability of each
condition firing has a closed form in the normal CDF.

The chip-level yield is then approximated by treating the pair events and
triple events as independent:

    yield  ~=  prod_pairs (1 - P_pair) * prod_triples (1 - P_triple)

The independence assumption ignores correlations between conditions that
share qubits, so the analytic estimate is biased slightly low for dense
chips; the tests quantify the agreement against Monte Carlo (typically
within a few relative percent for the architectures studied here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionThresholds,
    DEFAULT_THRESHOLDS,
)
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ

_SQRT2 = math.sqrt(2.0)


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def _interval_probability(mean: float, std: float, low: float, high: float) -> float:
    """P(low < X < high) for X ~ N(mean, std)."""
    if std == 0.0:
        return 1.0 if low < mean < high else 0.0
    return _normal_cdf((high - mean) / std) - _normal_cdf((low - mean) / std)


def _union_probability(
    mean: float, std: float, intervals: Sequence[Tuple[float, float]]
) -> float:
    """P(X in union of intervals) for X ~ N(mean, std), merging overlaps."""
    if not intervals:
        return 0.0
    merged: List[Tuple[float, float]] = []
    for low, high in sorted(intervals):
        if merged and low <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], high))
        else:
            merged.append((low, high))
    return min(1.0, sum(_interval_probability(mean, std, low, high) for low, high in merged))


def pair_collision_probability(
    freq_j: float,
    freq_k: float,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> float:
    """Probability that a connected pair triggers any of conditions 1-4.

    The relevant random variable is the post-fabrication difference
    D = f_j - f_k, Gaussian with mean ``freq_j - freq_k`` and standard
    deviation ``sigma * sqrt(2)``.  Conditions 1-4 (checked in both
    orientations) are unions of intervals in D, so their joint probability
    is exact up to the merging of intervals.
    """
    mean = freq_j - freq_k
    std = sigma_ghz * math.sqrt(2.0)
    t1, t2, t3 = thresholds.condition_1_ghz, thresholds.condition_2_ghz, thresholds.condition_3_ghz
    intervals = [
        (-t1, t1),                               # condition 1: D ~= 0
        (-delta / 2.0 - t2, -delta / 2.0 + t2),  # condition 2: D ~= -delta/2
        (delta / 2.0 - t2, delta / 2.0 + t2),    #   (other orientation)
        (-delta - t3, -delta + t3),              # condition 3: D ~= -delta
        (delta - t3, delta + t3),                #   (other orientation)
        (-delta, math.inf),                      # condition 4: D > -delta
        (-math.inf, delta),                      #   (other orientation)
    ]
    return _union_probability(mean, std, intervals)


def triple_collision_probability(
    freq_j: float,
    freq_i: float,
    freq_k: float,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> float:
    """Probability that a (j; i, k) triple triggers any of conditions 5-7.

    Conditions 5 and 6 live on the spectator difference f_i - f_k
    (std sigma * sqrt(2)); condition 7 lives on 2 f_j - f_i - f_k
    (std sigma * sqrt(6)).  The two variables are combined with the
    independence approximation.
    """
    spectator_mean = freq_i - freq_k
    spectator_std = sigma_ghz * math.sqrt(2.0)
    t5, t6, t7 = thresholds.condition_5_ghz, thresholds.condition_6_ghz, thresholds.condition_7_ghz
    p_spectator = _union_probability(
        spectator_mean,
        spectator_std,
        [
            (-t5, t5),
            (-delta - t6, -delta + t6),
            (delta - t6, delta + t6),
        ],
    )
    sum_mean = 2.0 * freq_j - freq_i - freq_k
    sum_std = sigma_ghz * math.sqrt(6.0)
    p_sum = _interval_probability(sum_mean, sum_std, -delta - t7, -delta + t7)
    return 1.0 - (1.0 - p_spectator) * (1.0 - p_sum)


@dataclass(frozen=True)
class AnalyticYieldEstimate:
    """Result of the analytic yield approximation."""

    yield_rate: float
    pair_failure_probabilities: Dict[Tuple[int, int], float]
    triple_failure_probabilities: Dict[Tuple[int, int, int], float]

    def worst_pair(self) -> Optional[Tuple[Tuple[int, int], float]]:
        """The connected pair contributing the largest collision probability.

        Returns ``None`` for degenerate architectures with no collision
        pairs at all (e.g. a single isolated qubit), where "worst pair" is
        undefined.  Ties resolve to the smallest pair tuple so the result
        is deterministic across runs.
        """
        if not self.pair_failure_probabilities:
            return None
        pair = min(
            self.pair_failure_probabilities,
            key=lambda p: (-self.pair_failure_probabilities[p], p),
        )
        return pair, self.pair_failure_probabilities[pair]


def estimate_yield_analytic(
    architecture: Architecture,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> AnalyticYieldEstimate:
    """Approximate the fabrication yield of a designed architecture analytically.

    Args:
        architecture: A fully designed architecture (frequencies required).
        sigma_ghz: Fabrication precision.
        delta: Qubit anharmonicity.
        thresholds: Collision thresholds.

    Returns:
        The yield approximation together with the per-pair and per-triple
        collision probabilities (useful for diagnosing which connection
        limits the yield).
    """
    if not architecture.frequencies:
        raise ValueError(
            f"architecture {architecture.name!r} has no designed frequencies; "
            "run frequency allocation first"
        )
    frequencies = architecture.frequencies
    pair_probabilities: Dict[Tuple[int, int], float] = {}
    for j, k in architecture.collision_pairs():
        pair_probabilities[(j, k)] = pair_collision_probability(
            frequencies[j], frequencies[k], sigma_ghz, delta, thresholds
        )
    triple_probabilities: Dict[Tuple[int, int, int], float] = {}
    for j, i, k in architecture.collision_triples():
        triple_probabilities[(j, i, k)] = triple_collision_probability(
            frequencies[j], frequencies[i], frequencies[k], sigma_ghz, delta, thresholds
        )
    yield_rate = 1.0
    for probability in pair_probabilities.values():
        yield_rate *= 1.0 - probability
    for probability in triple_probabilities.values():
        yield_rate *= 1.0 - probability
    return AnalyticYieldEstimate(
        yield_rate=yield_rate,
        pair_failure_probabilities=pair_probabilities,
        triple_failure_probabilities=triple_probabilities,
    )
