"""The seven frequency-collision conditions (paper Figure 3).

Conditions 1-4 are evaluated on every *connected* qubit pair ``(j, k)``;
conditions 5-7 are evaluated on every triple ``(j; i, k)`` in which both
``i`` and ``k`` are connected to the centre qubit ``j``.

All frequencies are in GHz.  ``delta`` is the qubit anharmonicity
(f12 - f01), -340 MHz for the transmon design the paper assumes.

The conditions, with their thresholds:

====  =============================  ==========
 #    condition                      threshold
====  =============================  ==========
 1    f_j ~= f_k                     +-17 MHz
 2    f_j ~= f_k - delta/2           +-4 MHz
 3    f_j ~= f_k - delta             +-25 MHz
 4    f_j >  f_k - delta             (inequality, no threshold)
 5    f_i ~= f_k                     +-17 MHz
 6    f_i ~= f_k - delta             +-25 MHz
 7    2 f_j + delta ~= f_k + f_i     +-17 MHz
====  =============================  ==========

Because the paper does not fix a control/target orientation for each
connection, the asymmetric two-qubit conditions (2, 3, 4) and the
asymmetric three-qubit condition (6) are checked in both orientations,
which is the conservative reading also used by IBM's published yield
studies (either qubit of a pair can serve as the cross-resonance control).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

#: Anharmonicity delta = f12 - f01 in GHz (paper Section 2.2).
ANHARMONICITY_GHZ = -0.340


class CollisionCondition(enum.IntEnum):
    """Identifier of the seven collision conditions of Figure 3."""

    SAME_FREQUENCY = 1
    HALF_ANHARMONICITY = 2
    FULL_ANHARMONICITY = 3
    ABOVE_ANHARMONICITY = 4
    SPECTATOR_SAME_FREQUENCY = 5
    SPECTATOR_FULL_ANHARMONICITY = 6
    THREE_QUBIT_SUM = 7


@dataclass(frozen=True)
class CollisionThresholds:
    """Thresholds (in GHz) of the approximate-equality collision conditions."""

    condition_1_ghz: float = 0.017
    condition_2_ghz: float = 0.004
    condition_3_ghz: float = 0.025
    condition_5_ghz: float = 0.017
    condition_6_ghz: float = 0.025
    condition_7_ghz: float = 0.017


#: The thresholds published in [Brink et al., IEDM 2018] and used by the paper.
DEFAULT_THRESHOLDS = CollisionThresholds()


@dataclass(frozen=True)
class Collision:
    """A single detected collision: which condition fired on which qubits."""

    condition: CollisionCondition
    qubits: Tuple[int, ...]


def check_pair_collisions(
    freq_j: float,
    freq_k: float,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> List[CollisionCondition]:
    """Collision conditions triggered by a connected pair with the given frequencies.

    The pair is treated symmetrically: asymmetric conditions are evaluated
    with each qubit playing the role of ``j``.
    """
    found: List[CollisionCondition] = []
    if abs(freq_j - freq_k) < thresholds.condition_1_ghz:
        found.append(CollisionCondition.SAME_FREQUENCY)
    if (
        abs(freq_j - (freq_k - delta / 2.0)) < thresholds.condition_2_ghz
        or abs(freq_k - (freq_j - delta / 2.0)) < thresholds.condition_2_ghz
    ):
        found.append(CollisionCondition.HALF_ANHARMONICITY)
    if (
        abs(freq_j - (freq_k - delta)) < thresholds.condition_3_ghz
        or abs(freq_k - (freq_j - delta)) < thresholds.condition_3_ghz
    ):
        found.append(CollisionCondition.FULL_ANHARMONICITY)
    if freq_j > freq_k - delta or freq_k > freq_j - delta:
        found.append(CollisionCondition.ABOVE_ANHARMONICITY)
    return found


def check_triple_collisions(
    freq_j: float,
    freq_i: float,
    freq_k: float,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> List[CollisionCondition]:
    """Collision conditions triggered by a centre qubit ``j`` and two spectators ``i``, ``k``."""
    found: List[CollisionCondition] = []
    if abs(freq_i - freq_k) < thresholds.condition_5_ghz:
        found.append(CollisionCondition.SPECTATOR_SAME_FREQUENCY)
    if (
        abs(freq_i - (freq_k - delta)) < thresholds.condition_6_ghz
        or abs(freq_k - (freq_i - delta)) < thresholds.condition_6_ghz
    ):
        found.append(CollisionCondition.SPECTATOR_FULL_ANHARMONICITY)
    if abs(2.0 * freq_j + delta - (freq_k + freq_i)) < thresholds.condition_7_ghz:
        found.append(CollisionCondition.THREE_QUBIT_SUM)
    return found


def find_collisions(
    frequencies: Dict[int, float],
    pairs: Iterable[Tuple[int, int]],
    triples: Iterable[Tuple[int, int, int]],
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> List[Collision]:
    """All collisions present in a single (post-fabrication) frequency assignment.

    Args:
        frequencies: Qubit -> frequency in GHz.
        pairs: Connected qubit pairs ``(j, k)``.
        triples: Triples ``(j, i, k)`` where ``i`` and ``k`` both connect to ``j``.
    """
    collisions: List[Collision] = []
    for j, k in pairs:
        for condition in check_pair_collisions(frequencies[j], frequencies[k], delta, thresholds):
            collisions.append(Collision(condition, (j, k)))
    for j, i, k in triples:
        for condition in check_triple_collisions(
            frequencies[j], frequencies[i], frequencies[k], delta, thresholds
        ):
            collisions.append(Collision(condition, (j, i, k)))
    return collisions


# ---------------------------------------------------------------------------
# Vectorized forms used by the Monte Carlo yield simulator.  ``freqs`` is a
# (trials, num_qubits) array; the functions return a boolean vector of length
# ``trials`` that is True when ANY collision of the given family occurs.
# ---------------------------------------------------------------------------


def pair_collision_mask(
    freqs: np.ndarray,
    pairs_j: np.ndarray,
    pairs_k: np.ndarray,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> np.ndarray:
    """Per-trial boolean mask: does any connected pair trigger conditions 1-4?"""
    if pairs_j.size == 0:
        return np.zeros(freqs.shape[0], dtype=bool)
    fj = freqs[:, pairs_j]
    fk = freqs[:, pairs_k]
    diff = fj - fk
    cond1 = np.abs(diff) < thresholds.condition_1_ghz
    cond2 = (np.abs(diff + delta / 2.0) < thresholds.condition_2_ghz) | (
        np.abs(-diff + delta / 2.0) < thresholds.condition_2_ghz
    )
    cond3 = (np.abs(diff + delta) < thresholds.condition_3_ghz) | (
        np.abs(-diff + delta) < thresholds.condition_3_ghz
    )
    cond4 = (fj > fk - delta) | (fk > fj - delta)
    return (cond1 | cond2 | cond3 | cond4).any(axis=1)


def triple_collision_mask(
    freqs: np.ndarray,
    triples_j: np.ndarray,
    triples_i: np.ndarray,
    triples_k: np.ndarray,
    delta: float = ANHARMONICITY_GHZ,
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS,
) -> np.ndarray:
    """Per-trial boolean mask: does any (j; i, k) triple trigger conditions 5-7?"""
    if triples_j.size == 0:
        return np.zeros(freqs.shape[0], dtype=bool)
    fj = freqs[:, triples_j]
    fi = freqs[:, triples_i]
    fk = freqs[:, triples_k]
    cond5 = np.abs(fi - fk) < thresholds.condition_5_ghz
    cond6 = (np.abs(fi - fk + delta) < thresholds.condition_6_ghz) | (
        np.abs(fk - fi + delta) < thresholds.condition_6_ghz
    )
    cond7 = np.abs(2.0 * fj + delta - (fk + fi)) < thresholds.condition_7_ghz
    return (cond5 | cond6 | cond7).any(axis=1)
