"""Core cache-store machinery: primitives, the backend protocol, the factory.

This module owns everything the pluggable backends share:

* **Atomic writes** — :func:`atomic_write_text` writes to a temporary
  file in the destination directory and ``os.replace``\\ s it into
  place, so a reader (or the survivor of a crashed writer) can never
  observe a torn or truncated file.
* **Per-path merge locks** — :func:`cache_file_lock` serializes a
  read-merge-rewrite cycle.  Lock keys are *resolved* absolute paths
  (:meth:`Path.resolve`), so ``./cache.json``, ``cache.json`` and a
  symlinked alias all share one lock instead of silently racing.
* **The backend protocol** — :class:`CacheStore` defines the three
  operations every backend implements (``read``, ``replace``,
  ``union_merge``) over the standard entry envelope
  (``{"format", "version", "entries"}``).
* **The legacy single-file backend** — :class:`SingleFileStore` is the
  pre-existing one-JSON-file format, byte-compatible with every cache
  file written before the store abstraction existed.  It keeps the
  original *fail-loud* validation semantics (wrong format or version
  raises); the fleet-facing sharded/SQLite backends degrade corrupt or
  wrong-version state to "cold" with a :class:`CacheStoreFault` warning
  instead (see their modules).
* **The factory** — :func:`open_store` resolves a path (with an
  optional ``json:`` / ``sharded:`` / ``sqlite:`` scheme prefix) to a
  backend instance, sniffing existing state when no scheme is given.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]

#: The recognized backend names / path scheme prefixes.
BACKENDS = ("json", "sharded", "sqlite")

#: File suffixes that make a fresh path default to the SQLite backend.
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}

#: The 16-byte magic string opening every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"


class WrongFormatError(ValueError):
    """A store holds a *different cache kind's* data (misconfiguration).

    Distinct from corruption: every backend fails loud on it — silently
    treating another cache's store as cold would mask a typo'd path —
    while garbage or wrong-version state stays recoverable in the
    fleet-facing backends.
    """


class CacheStoreFault(UserWarning):
    """A cache store recovered from corrupt or unreadable persisted state.

    Emitted when a fleet-facing backend (sharded, SQLite) encounters a
    torn, truncated, garbage, or wrong-version file and degrades it to
    "cold" instead of crashing.  The warning names the path and the
    fault so operators can investigate; the store keeps working.
    """


def _count_store_fault(name: str, amount: int = 1) -> None:
    """Count a store fault in the metrics registry (lazy import: the
    metrics module is runtime-layer and must stay importable without
    dragging in persistence, and vice versa)."""
    from repro.runtime.metrics import global_metrics

    global_metrics().increment(name, amount)


#: In-process merge locks, one per resolved cache path.  ``fcntl`` locks
#: are per open file description, not per thread, so threads sharing a
#: process need their own serialization layer.
_PROCESS_LOCKS: Dict[str, threading.Lock] = {}
_PROCESS_LOCKS_GUARD = threading.Lock()


def listify(value):
    """Tuples to lists, recursively (JSON encoding of cache keys)."""
    if isinstance(value, tuple):
        return [listify(item) for item in value]
    return value


def tuplify(value):
    """Lists to tuples, recursively (JSON decoding of cache keys)."""
    if isinstance(value, list):
        return tuple(tuplify(item) for item in value)
    return value


def canonical_key(key) -> str:
    """The canonical JSON text of a cache key (stable across processes).

    Nested tuples are listified first, so file-loaded (list-shaped) and
    in-memory (tuple-shaped) keys canonicalize identically.  This text
    is the SQLite primary key and the input of :func:`key_digest`.
    """
    return json.dumps(listify(key), sort_keys=True, separators=(",", ":"))


def key_digest(key) -> str:
    """The SHA-256 hex digest of a cache key's canonical JSON text."""
    return hashlib.sha256(canonical_key(key).encode("utf-8")).hexdigest()


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses a filesystem boundary; a crash between write
    and rename leaves the previous file contents untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # mkstemp creates 0o600 files; keep the destination's existing
    # permissions (or conventional 0o644 for a new file) so a cache
    # shared between users stays readable after a rewrite.
    try:
        mode = path.stat().st_mode & 0o777
    except OSError:
        mode = 0o644
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            os.chmod(tmp_name, mode)
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _lock_key(path: PathLike) -> str:
    """The lock identity of a cache path: its fully resolved location.

    ``Path.resolve`` (not ``os.path.abspath``) so that ``./cache.json``,
    ``cache.json`` and any symlinked alias of the same file key one lock
    instead of silently racing each other.
    """
    return str(Path(path).resolve())


def _process_lock(key: str) -> threading.Lock:
    with _PROCESS_LOCKS_GUARD:
        lock = _PROCESS_LOCKS.get(key)
        if lock is None:
            lock = _PROCESS_LOCKS.setdefault(key, threading.Lock())
        return lock


@contextmanager
def cache_file_lock(path: PathLike) -> Iterator[None]:
    """Serialize a read-merge-rewrite cycle on ``path`` against other writers.

    Hold the lock across the *whole* cycle — load, merge, save — not
    just the write: atomic replacement alone cannot stop two concurrent
    mergers from both loading the same base state and the second replace
    discarding the first's additions.

    The lock is reentrant-unsafe (don't nest on the same path) and is
    taken on a ``<name>.lock`` sidecar next to the *resolved* target
    rather than the cache file itself, so locking never interferes with
    the atomic replace, and aliases of one file (relative spellings,
    symlinks) contend on one sidecar.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    resolved = Path(_lock_key(path))
    with _process_lock(str(resolved)):
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = resolved.with_name(resolved.name + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def merge_loaded(cache, records: List[dict], decode) -> int:
    """Merge decoded file records into a bounded LRU cache.

    The shared tail of every persisted cache's ``load``: existing
    in-memory entries win under equal keys, and the return value counts
    the merged entries *still resident* afterwards — on a bounded cache,
    a file larger than the bound merges only its tail, and the count
    reflects that rather than masking the eviction.

    Args:
        cache: A cache exposing the in-package LRU protocol (the
            ``_entries`` mapping and ``put``) — i.e.
            :class:`~repro.mapping.engine.RoutingCache` or a
            :class:`~repro.design.engine.StageCache` subclass.
        records: The validated entry list of a cache file.
        decode: Maps one serialized record to its ``(key, value)`` pair.
    """
    merged_keys = []
    for record in records:
        key, value = decode(record)
        if key in cache._entries:
            continue
        cache.put(key, value)
        merged_keys.append(key)
    return sum(1 for key in merged_keys if key in cache._entries)


def validate_envelope(
    payload: dict, path: Path, file_format: str, version: int, kind: str
) -> List[dict]:
    """Validate a decoded envelope dict; return its entry list.

    Shared by the single-file backend (whole file) and the sharded
    backend (per shard file).  Raises :class:`ValueError` with the
    store-standard messages on a wrong format marker or an unsupported
    version.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a {kind} file")
    found_format = payload.get("format")
    if found_format != file_format:
        if isinstance(found_format, str) and found_format.startswith("repro-"):
            # A *recognizable other cache kind*: misconfiguration, which
            # even the degrade-to-cold backends surface loudly.
            raise WrongFormatError(f"{path} is not a {kind} file")
        raise ValueError(f"{path} is not a {kind} file")
    found = payload.get("version")
    if found != version:
        raise ValueError(
            f"{path} declares unsupported {kind} version {found!r} "
            f"(this release reads version {version}); it was likely written "
            "by a newer release — delete the file or upgrade"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path} holds no entry list; not a valid {kind} file")
    return entries


class CacheStore:
    """One logical persisted cache behind a pluggable storage backend.

    A store holds the entry list of exactly one cache kind (identified
    by its ``format`` marker and schema ``version``) at one path.  The
    three operations mirror the module-level legacy API:

    * :meth:`read` — the full entry list (validation semantics are
      backend-specific: the single-file backend fails loud, the
      fleet-facing backends degrade faults to cold with a warning).
    * :meth:`replace` — atomically replace the store with an *image* of
      the given entries.  Not safe against concurrent mergers; callers
      wanting concurrency use :meth:`union_merge`.
    * :meth:`union_merge` — extend the store with records under the
      appropriate locks: existing entries are kept, ``records`` win
      under equal ``key_of`` keys, and concurrent mergers sharing the
      store cannot drop each other's additions.

    ``faults`` accumulates human-readable descriptions of every
    persisted-state fault the store recovered from (each is also issued
    as a :class:`CacheStoreFault` warning).
    """

    #: Backend name, matching the path scheme prefix (subclasses set it).
    backend: str = ""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.faults: List[str] = []

    # -- protocol -------------------------------------------------------------

    def exists(self) -> bool:
        raise NotImplementedError

    def read(
        self,
        file_format: str,
        version: int,
        missing_ok: bool = False,
        kind: Optional[str] = None,
    ) -> Optional[List[dict]]:
        raise NotImplementedError

    def replace(
        self,
        file_format: str,
        version: int,
        entries: List[dict],
        key_of: Optional[Callable[[dict], Tuple]] = None,
        kind: Optional[str] = None,
    ) -> int:
        raise NotImplementedError

    def union_merge(
        self,
        file_format: str,
        version: int,
        records: List[dict],
        key_of: Callable[[dict], Tuple],
        kind: Optional[str] = None,
    ) -> int:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def _fault(self, message: str) -> None:
        """Record a recovered persisted-state fault and warn about it.

        Besides the stderr warning, every degrade-to-cold event is
        counted in the metrics registry (``persistence/store_faults``)
        so operators watching ``--metrics-out`` see silent degradation
        without scraping warnings.
        """
        self.faults.append(message)
        _count_store_fault("persistence/store_faults")
        warnings.warn(message, CacheStoreFault, stacklevel=3)

    def _missing(self, missing_ok: bool, kind: str) -> None:
        if not missing_ok:
            raise FileNotFoundError(f"{kind} file not found: {self.path}")


class SingleFileStore(CacheStore):
    """The legacy backend: one JSON file holding the whole entry list.

    Byte-compatible with every cache file written before the store
    abstraction existed, and deliberately *strict*: a wrong format
    marker, an unknown version, or undecodable JSON raises instead of
    degrading — this is the backend humans point at hand-managed files,
    where silently treating a typo'd path's contents as cold would mask
    the mistake.
    """

    backend = "json"

    def exists(self) -> bool:
        return self.path.exists()

    def read(self, file_format, version, missing_ok=False, kind=None):
        kind = kind or file_format
        if not self.path.exists():
            self._missing(missing_ok, kind)
            return None
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        return validate_envelope(payload, self.path, file_format, version, kind)

    def replace(self, file_format, version, entries, key_of=None, kind=None):
        payload = {"format": file_format, "version": version, "entries": entries}
        atomic_write_text(self.path, json.dumps(payload) + "\n")
        return len(entries)

    def union_merge(self, file_format, version, records, key_of, kind=None):
        with cache_file_lock(self.path):
            existing = self.read(file_format, version, missing_ok=True, kind=kind)
            merged: Dict = {}
            for record in existing or []:
                merged[key_of(record)] = record
            for record in records:
                merged[key_of(record)] = record
            return self.replace(
                file_format, version, list(merged.values()), key_of, kind
            )


def parse_store_path(path: PathLike) -> Tuple[Optional[str], Path]:
    """Split an optional ``backend:`` scheme prefix off a store path."""
    text = str(path)
    for scheme in BACKENDS:
        prefix = scheme + ":"
        if text.startswith(prefix):
            return scheme, Path(text[len(prefix):])
    return None, Path(text)


def _sniff_backend(path: Path) -> str:
    """Guess the backend of an unprefixed path from its on-disk state.

    Existing directories are sharded stores, existing files opening with
    the SQLite magic (or fresh paths with a database suffix) are SQLite
    stores, and everything else is the legacy single JSON file.
    """
    if path.is_dir():
        return "sharded"
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        # The suffix wins even for existing files: a corrupt database
        # must reach the SQLite backend's recovery path, not be parsed
        # as JSON.
        return "sqlite"
    if path.is_file():
        try:
            with open(path, "rb") as handle:
                if handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC:
                    return "sqlite"
        except OSError:  # pragma: no cover - unreadable file; let json raise
            pass
    return "json"


def open_store(path: PathLike, backend: Optional[str] = None) -> CacheStore:
    """Resolve a store path to a backend instance.

    ``path`` may carry a ``json:`` / ``sharded:`` / ``sqlite:`` scheme
    prefix naming the backend explicitly (the CLI's ``--cache-backend``
    flag is spelled this way internally, so one string travels through
    settings, workers, and cache classes unchanged).  Without a prefix
    or an explicit ``backend`` argument, the on-disk state decides; a
    fresh path defaults to the legacy single-file backend unless its
    suffix marks it as a database.
    """
    explicit, real_path = parse_store_path(path)
    chosen = backend or explicit or _sniff_backend(real_path)
    if chosen == "json":
        return SingleFileStore(real_path)
    if chosen == "sharded":
        from repro.persistence.sharded import ShardedStore

        return ShardedStore(real_path)
    if chosen == "sqlite":
        from repro.persistence.sqlite import SqliteStore

        return SqliteStore(real_path)
    raise ValueError(
        f"unknown cache-store backend {chosen!r} (expected one of {BACKENDS})"
    )


def migrate_store(
    source: PathLike,
    dest: PathLike,
    file_format: str,
    version: int,
    key_of: Callable[[dict], Tuple],
    kind: Optional[str] = None,
) -> int:
    """Copy every entry of one store into another (backend conversion).

    Reads the full entry list of ``source`` and writes it as the new
    *image* of ``dest`` — the canonical way to promote a legacy
    single-file cache to the sharded or SQLite backend (or back).
    Returns the number of entries migrated.
    """
    entries = open_store(source).read(file_format, version, kind=kind)
    return open_store(dest).replace(
        file_format, version, list(entries or []), key_of=key_of, kind=kind
    )


def salvage_torn_store(
    path: PathLike,
    file_format: str,
    version: int,
    kind: Optional[str] = None,
) -> Optional[List[dict]]:
    """Recover the complete records of a torn single-file store.

    :func:`atomic_write_text` makes a *writer* crash unable to tear a
    store, but torn files still arrive sideways: interrupted copies,
    full disks, byte-level fault injection, or a checkpoint copied off
    a dying host mid-append.  The strict single-file backend refuses to
    read such a file; this helper decodes every record that survives
    intact in the entry-list prefix, moves the damaged original aside
    as ``<name>.quarantine-<pid>`` (bytes preserved for forensics,
    mirroring the sharded/SQLite quarantine discipline), and returns
    the salvaged records.

    Returns ``None`` when there is nothing to salvage from — no file,
    or damage that precedes the entry list so even the envelope header
    cannot be trusted; the caller then re-raises its original error or
    treats the store as cold.
    """
    kind = kind or file_format
    _, target = parse_store_path(path)
    if not target.is_file():
        return None
    try:
        text = target.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return None
    # The undamaged prefix must pin the expected envelope (format and
    # version appear before "entries" in every file this layer writes);
    # anything else is not a torn write of *this* store kind.
    head, separator, body = text.partition('"entries"')
    if not separator:
        return None
    if f'"format": {json.dumps(file_format)}' not in head:
        return None
    if f'"version": {version}' not in head:
        return None
    opening = body.find("[")
    if opening < 0:
        return None
    decoder = json.JSONDecoder()
    index = opening + 1
    records: List[dict] = []
    while index < len(body):
        character = body[index]
        if character in " \t\r\n,":
            index += 1
            continue
        if character == "]":
            break
        try:
            record, index = decoder.raw_decode(body, index)
        except ValueError:
            break  # the torn tail: drop the half-written record
        if isinstance(record, dict):
            records.append(record)
        else:
            return None  # entry list holds non-records; not our tear
    quarantine = target.with_name(f"{target.name}.quarantine-{os.getpid()}")
    os.replace(target, quarantine)
    _count_store_fault("persistence/torn_stores")
    _count_store_fault("persistence/salvaged_records", len(records))
    warnings.warn(
        f"{kind} store {target} was torn mid-write; salvaged "
        f"{len(records)} complete records, quarantined the damaged file "
        f"as {quarantine.name}, and will recompute the rest",
        CacheStoreFault, stacklevel=2,
    )
    return records
