"""The SQLite store: one database file with upsert-merge semantics.

Entries live in a two-table schema — ``meta`` holding the envelope
(``format`` marker and schema ``version``) and ``entries`` holding one
row per cache entry, keyed by the canonical JSON text of the entry's
merge key.  A union merge is a single transaction of
``INSERT ... ON CONFLICT(key) DO UPDATE`` upserts, so concurrent
writers sharing the file serialize on SQLite's own locking (with a busy
timeout plus a short retry loop) instead of the sidecar file locks the
JSON backends use, and a merge never rewrites untouched rows.

Fault semantics mirror the sharded backend: a garbage, truncated, or
wrong-version database degrades to "cold" with a
:class:`~repro.persistence.store.CacheStoreFault` warning — reads
return an empty entry list, and writers quarantine the unreadable file
(``<name>.quarantine-<pid>``) before creating a fresh database, so no
bytes are ever silently destroyed.  A *wrong format marker* (pointing
one cache kind at another kind's store) still fails loud: that is a
configuration error, not corruption.

Read order is insertion order (``rowid``; upserts keep the original
row), matching the entry-list semantics of the JSON backends.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

from repro.persistence.store import CacheStore, WrongFormatError, canonical_key

#: Seconds SQLite waits on a locked database before erroring.
_BUSY_TIMEOUT_S = 30.0

#: Retries around transient "database is locked" errors (heavy fan-in).
_LOCK_RETRIES = 5
_LOCK_RETRY_SLEEP_S = 0.05

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)",
    "CREATE TABLE IF NOT EXISTS entries (key TEXT PRIMARY KEY, record TEXT)",
)


class _StaleStore(Exception):
    """Internal: existing state a writer must quarantine, never merge into.

    Raised by the write-path validation on a wrong-version database:
    re-stamping the meta row and upserting on top would relabel the
    stale entries as current-version records.  The writer quarantines
    the file and retries against a fresh store instead.
    """


class SqliteStore(CacheStore):
    """A cache store backed by one SQLite database file."""

    backend = "sqlite"

    def exists(self) -> bool:
        return self.path.exists()

    # -- connection helpers ---------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self.path), timeout=_BUSY_TIMEOUT_S)
        connection.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_S * 1000)}")
        return connection

    def _quarantine(self, reason: str, kind: str) -> None:
        """Move an unreadable database aside before creating a fresh one."""
        target = self.path.with_name(f"{self.path.name}.quarantine-{os.getpid()}")
        try:
            os.replace(self.path, target)
        except OSError:  # pragma: no cover - already moved by a peer
            return
        self._fault(
            f"sqlite {kind} store quarantined unreadable database "
            f"{self.path} to {target.name}: {reason}"
        )

    def _validate_meta(
        self, connection: sqlite3.Connection, file_format: str, version: int,
        kind: str, for_write: bool = False,
    ) -> bool:
        """Check the envelope tables; return False when the store is cold.

        Raises :class:`ValueError` on a wrong format marker (a
        misconfiguration, handled loudly everywhere); degrades an
        unknown version to cold via :class:`CacheStoreFault` (the
        fleet-facing recovery contract).  ``sqlite3.DatabaseError`` —
        garbage or truncated files — propagates to the caller, which
        owns quarantine/cold handling.
        """
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if "meta" not in tables or "entries" not in tables:
            if tables:
                raise WrongFormatError(f"{self.path} is not a {kind} file")
            return False  # a fresh, empty database: cold, not a fault
        meta = dict(connection.execute("SELECT key, value FROM meta"))
        if meta.get("format") != file_format:
            raise WrongFormatError(f"{self.path} is not a {kind} file")
        found = meta.get("version")
        if found != str(version):
            reason = (
                f"declares unsupported version {found!r} "
                f"(this release reads version {version})"
            )
            if for_write:
                # Never merge on top of wrong-version rows: upserting
                # here would relabel them as current-version entries.
                raise _StaleStore(reason)
            self._fault(
                f"sqlite {kind} store {self.path} {reason}; "
                "treating it as cold"
            )
            return False
        return True

    # -- protocol -------------------------------------------------------------

    def read(self, file_format, version, missing_ok=False, kind=None):
        kind = kind or file_format
        if not self.path.exists():
            self._missing(missing_ok, kind)
            return None
        connection = self._connect()
        try:
            if not self._validate_meta(connection, file_format, version, kind):
                return []
            rows = connection.execute(
                "SELECT record FROM entries ORDER BY rowid"
            ).fetchall()
        except sqlite3.DatabaseError as error:
            self._fault(
                f"sqlite {kind} store treats unreadable database "
                f"{self.path} as cold: {error}"
            )
            return []
        finally:
            connection.close()
        return [json.loads(row[0]) for row in rows]

    def replace(self, file_format, version, entries, key_of=None, kind=None):
        kind = kind or file_format
        if key_of is None:
            raise ValueError(
                "the sqlite store needs key_of for its primary keys; "
                "pass the cache's record-key function"
            )

        def write(connection: sqlite3.Connection) -> int:
            connection.execute("DELETE FROM entries")
            connection.executemany(
                "INSERT INTO entries (key, record) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET record=excluded.record",
                [
                    (canonical_key(key_of(entry)), json.dumps(entry))
                    for entry in entries
                ],
            )
            return len(entries)

        return self._transact(file_format, version, kind, write)

    def union_merge(self, file_format, version, records, key_of, kind=None):
        kind = kind or file_format

        def upsert(connection: sqlite3.Connection) -> int:
            connection.executemany(
                "INSERT INTO entries (key, record) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET record=excluded.record",
                [
                    (canonical_key(key_of(record)), json.dumps(record))
                    for record in records
                ],
            )
            return connection.execute("SELECT COUNT(*) FROM entries").fetchone()[0]

        return self._transact(file_format, version, kind, upsert)

    # -- write plumbing -------------------------------------------------------

    def _transact(self, file_format: str, version: int, kind: str, operation) -> int:
        """Run one write operation in an immediate transaction, with recovery.

        An unreadable database (garbage bytes, torn pages, unknown
        schema version) is quarantined once and the operation retried
        against a fresh store; transient lock contention is retried a
        few times on top of SQLite's own busy timeout.
        """
        quarantined = False
        for attempt in range(_LOCK_RETRIES):
            connection = self._connect()
            try:
                connection.execute("BEGIN IMMEDIATE")
                if not self._validate_meta(
                    connection, file_format, version, kind, for_write=True
                ):
                    for statement in _SCHEMA:
                        connection.execute(statement)
                    connection.executemany(
                        "INSERT INTO meta (key, value) VALUES (?, ?)"
                        " ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                        [("format", file_format), ("version", str(version))],
                    )
                result = operation(connection)
                connection.commit()
                return result
            except _StaleStore as error:
                connection.close()
                if quarantined:  # pragma: no cover - fresh stores validate
                    raise sqlite3.OperationalError(str(error))
                self._quarantine(str(error), kind)
                quarantined = True
            except sqlite3.DatabaseError as error:
                connection.close()
                if _is_lock_contention(error) and attempt < _LOCK_RETRIES - 1:
                    time.sleep(_LOCK_RETRY_SLEEP_S * (attempt + 1))
                    continue
                if quarantined:
                    raise
                self._quarantine(str(error), kind)
                quarantined = True
            finally:
                try:
                    connection.close()
                except sqlite3.Error:  # pragma: no cover - already closed
                    pass
        raise sqlite3.OperationalError(  # pragma: no cover - exhausted retries
            f"could not write sqlite {kind} store {self.path}"
        )


def _is_lock_contention(error: sqlite3.DatabaseError) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message
