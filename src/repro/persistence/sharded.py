"""The digest-sharded store: entries fanned out across ``NN/`` shard files.

One logical cache becomes a directory of up to 256 small JSON files,
``<root>/<NN>/entries.json``, where ``NN`` is the first byte (two hex
digits) of the SHA-256 digest of each entry's canonical merge key.  Two
properties make this the fleet-scale backend:

* **Writers rarely collide** — a merge only locks and rewrites the
  shards its records actually land in, so concurrent workers whose new
  entries hash to different shards proceed entirely in parallel (the
  single-file backend serializes every merge behind one lock).
* **Faults stay local** — a torn, truncated, garbage, or wrong-version
  shard file degrades *that shard* to cold (with a
  :class:`~repro.persistence.store.CacheStoreFault` warning); peer
  shards are unaffected.  A merge landing on an unreadable shard
  quarantines the bad file (``entries.json.quarantine-<pid>``) before
  writing fresh state, so no bytes are ever silently destroyed.

Each shard file uses the standard entry envelope (``format`` /
``version`` / ``entries``), so shards self-describe and mixed-version
stores fail no worse than shard-by-shard.  A ``shards.json`` marker at
the root identifies the directory as a sharded store to the
:func:`~repro.persistence.store.open_store` sniffer.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.persistence.store import (
    CacheStore,
    WrongFormatError,
    atomic_write_text,
    cache_file_lock,
    key_digest,
    validate_envelope,
)

#: Marker file identifying a directory as a sharded cache store.
MARKER_NAME = "shards.json"
MARKER_FORMAT = "repro-sharded-store"
MARKER_VERSION = 1

#: Entry file inside each shard directory.
SHARD_FILE = "entries.json"

#: Fan-out width: one shard per first digest byte.
NUM_SHARDS = 256

_SHARD_DIR_RE = re.compile(r"^[0-9a-f]{2}$")


def shard_for_key(key) -> str:
    """The shard id (two hex digits) a merge key routes to.

    Total and stable: every JSON-expressible key maps to exactly one of
    the 256 shards, identically in every process and on every platform
    (the routing digest is SHA-256 over the key's canonical JSON text,
    never the salted builtin ``hash``).
    """
    return key_digest(key)[:2]


class ShardedStore(CacheStore):
    """A cache store fanned out across digest-prefixed shard files."""

    backend = "sharded"

    # -- layout helpers -------------------------------------------------------

    def _marker_path(self) -> Path:
        return self.path / MARKER_NAME

    def _shard_path(self, shard_id: str) -> Path:
        return self.path / shard_id / SHARD_FILE

    def _shard_files(self) -> List[Path]:
        """Existing shard entry files, in deterministic (shard id) order."""
        if not self.path.is_dir():
            return []
        found = []
        for child in sorted(self.path.iterdir()):
            if child.is_dir() and _SHARD_DIR_RE.match(child.name):
                shard = child / SHARD_FILE
                if shard.is_file():
                    found.append(shard)
        return found

    def _ensure_marker(self) -> None:
        if not self._marker_path().exists():
            atomic_write_text(
                self._marker_path(),
                json.dumps(
                    {
                        "format": MARKER_FORMAT,
                        "version": MARKER_VERSION,
                        "shards": NUM_SHARDS,
                    }
                )
                + "\n",
            )

    def exists(self) -> bool:
        return self._marker_path().exists() or bool(self._shard_files())

    # -- shard file IO --------------------------------------------------------

    def _read_shard(
        self, shard: Path, file_format: str, version: int, kind: str
    ) -> Optional[List[dict]]:
        """One shard's entries, or ``None`` when the shard is degraded to cold.

        Every persisted-state *fault* — unreadable bytes, garbage JSON,
        an unknown version — is contained to this shard and reported via
        :class:`CacheStoreFault`; peers are read normally.  A shard
        holding another cache kind's data (a misconfigured path, not
        corruption) raises :class:`WrongFormatError` like every backend.
        """
        try:
            payload = json.loads(shard.read_text(encoding="utf-8"))
            return validate_envelope(payload, shard, file_format, version, kind)
        except WrongFormatError:
            raise
        except (OSError, ValueError) as error:
            # json.JSONDecodeError subclasses ValueError, so torn/garbage
            # and wrong-version shards land here together.
            self._fault(
                f"sharded {kind} store treats shard {shard} as cold: {error}"
            )
            return None

    def _quarantine(self, shard: Path, reason: str, kind: str) -> None:
        """Move an unreadable shard file aside before writing fresh state.

        Recovery must not destroy bytes: the bad file is renamed to
        ``entries.json.quarantine-<pid>`` (atomic, same directory) so a
        human can inspect it, and the shard proceeds as cold.
        """
        target = shard.with_name(f"{shard.name}.quarantine-{os.getpid()}")
        try:
            os.replace(shard, target)
        except OSError:  # pragma: no cover - already moved by a peer
            return
        self._fault(
            f"sharded {kind} store quarantined unreadable shard {shard} "
            f"to {target.name}: {reason}"
        )

    def _write_shard(
        self, shard: Path, file_format: str, version: int, entries: List[dict]
    ) -> None:
        payload = {"format": file_format, "version": version, "entries": entries}
        atomic_write_text(shard, json.dumps(payload) + "\n")

    # -- protocol -------------------------------------------------------------

    def read(self, file_format, version, missing_ok=False, kind=None):
        kind = kind or file_format
        if not self.exists():
            self._missing(missing_ok, kind)
            return None
        entries: List[dict] = []
        for shard in self._shard_files():
            records = self._read_shard(shard, file_format, version, kind)
            if records:
                entries.extend(records)
        return entries

    def replace(self, file_format, version, entries, key_of=None, kind=None):
        kind = kind or file_format
        if key_of is None:
            raise ValueError(
                "the sharded store needs key_of to route entries to shards; "
                "pass the cache's record-key function"
            )
        groups: Dict[str, List[dict]] = {}
        for entry in entries:
            groups.setdefault(shard_for_key(key_of(entry)), []).append(entry)
        # An image write: not safe against concurrent union_merge callers
        # (same caveat as the single-file save); the store-level lock only
        # serializes replace against replace.
        with cache_file_lock(self.path / "store"):
            self._ensure_marker()
            for shard_id, group in groups.items():
                self._write_shard(
                    self._shard_path(shard_id), file_format, version, group
                )
            for shard in self._shard_files():
                if shard.parent.name not in groups:
                    os.unlink(shard)
        return len(entries)

    def union_merge(self, file_format, version, records, key_of, kind=None):
        kind = kind or file_format
        self.path.mkdir(parents=True, exist_ok=True)
        self._ensure_marker()
        groups: Dict[str, List[dict]] = {}
        for record in records:
            groups.setdefault(shard_for_key(key_of(record)), []).append(record)
        for shard_id in sorted(groups):
            shard = self._shard_path(shard_id)
            with cache_file_lock(shard):
                existing: List[dict] = []
                if shard.exists():
                    loaded = self._read_shard(shard, file_format, version, kind)
                    if loaded is None:
                        # The shard is unreadable; preserve its bytes and
                        # merge onto a cold shard.  Peer shards are never
                        # touched.
                        self._quarantine(shard, "unreadable during merge", kind)
                    else:
                        existing = loaded
                merged: Dict[Tuple, dict] = {}
                for record in existing:
                    merged[key_of(record)] = record
                for record in groups[shard_id]:
                    merged[key_of(record)] = record
                self._write_shard(shard, file_format, version, list(merged.values()))
        return self.count_entries(file_format, version, kind)

    def count_entries(self, file_format: int, version: int, kind: str) -> int:
        """Total readable entries across every shard (cold shards count 0)."""
        total = 0
        for shard in self._shard_files():
            records = self._read_shard(shard, file_format, version, kind)
            if records:
                total += len(records)
        return total
