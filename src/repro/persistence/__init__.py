"""Pluggable cache-store machinery for persisted result caches.

Both persisted caches of the code base — the routing-result cache
(:class:`~repro.mapping.engine.RoutingCache`) and the design-stage cache
(:class:`~repro.design.engine.DesignCache`) — plus the sweep checkpoint
(:class:`~repro.evaluation.checkpoint.SweepCheckpoint`) store entry
lists that many processes read and extend concurrently.  This package
owns the storage layer beneath them, as a pluggable **store** with
three backends:

* ``json`` (:class:`~repro.persistence.store.SingleFileStore`) — the
  legacy single JSON file; byte-compatible with every cache file
  written before the abstraction existed, strict (fail-loud)
  validation.
* ``sharded`` (:class:`~repro.persistence.sharded.ShardedStore`) — a
  directory of up to 256 digest-prefixed shard files; concurrent
  mergers rarely collide, and per-shard faults degrade to cold without
  touching peers.
* ``sqlite`` (:class:`~repro.persistence.sqlite.SqliteStore`) — one
  database file with transactional upsert-merge semantics.

Cache classes do not pick backends; they keep calling the module-level
legacy API (:func:`read_cache_entries`, :func:`write_cache_file`,
:func:`union_merge_save`), which dispatches on the *path*: an optional
``json:`` / ``sharded:`` / ``sqlite:`` scheme prefix names the backend
explicitly, and unprefixed paths are sniffed from on-disk state (an
existing directory is a sharded store, a file opening with the SQLite
magic — or a fresh ``.sqlite`` / ``.db`` path — is a database,
everything else is the single file).  :func:`migrate_store` converts a
store between backends.

Cache classes stay in charge of their own entry schemas; this package
only standardizes the envelope (``format`` / ``version`` / ``entries``)
and the concurrency discipline around it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.persistence.store import (
    BACKENDS,
    CacheStore,
    CacheStoreFault,
    PathLike,
    SQLITE_MAGIC,
    SingleFileStore,
    WrongFormatError,
    atomic_write_text,
    cache_file_lock,
    canonical_key,
    key_digest,
    listify,
    merge_loaded,
    migrate_store,
    open_store,
    parse_store_path,
    salvage_torn_store,
    tuplify,
)

__all__ = [
    "BACKENDS",
    "CacheStore",
    "CacheStoreFault",
    "PathLike",
    "SQLITE_MAGIC",
    "SingleFileStore",
    "WrongFormatError",
    "atomic_write_text",
    "cache_file_lock",
    "canonical_key",
    "key_digest",
    "listify",
    "merge_loaded",
    "migrate_store",
    "open_store",
    "parse_store_path",
    "read_cache_entries",
    "salvage_torn_store",
    "tuplify",
    "union_merge_save",
    "write_cache_file",
]


def write_cache_file(
    path: PathLike,
    file_format: str,
    version: int,
    entries: List[dict],
    key_of: Optional[Callable[[dict], Tuple]] = None,
    kind: Optional[str] = None,
) -> int:
    """Atomically write a cache store *image* in the standard envelope.

    Replaces whatever the store at ``path`` held with exactly
    ``entries``.  ``key_of`` maps an entry to its merge identity; the
    single-file backend ignores it, but the sharded and SQLite backends
    need it for shard routing / primary keys, so callers that may be
    pointed at any backend should always pass it.  Returns the number
    of entries written.
    """
    return open_store(path).replace(
        file_format, version, entries, key_of=key_of, kind=kind
    )


def read_cache_entries(
    path: PathLike,
    file_format: str,
    version: int,
    missing_ok: bool = False,
    kind: Optional[str] = None,
) -> Optional[List[dict]]:
    """Read and validate a cache store; return its entry list.

    Args:
        path: Cache store location (any backend; see the module
            docstring for how the backend is chosen).
        file_format: Expected ``format`` marker.
        version: The (single) supported schema version.  The single-file
            backend rejects other versions with a clear error; the
            sharded and SQLite backends degrade wrong-version state to
            cold with a :class:`CacheStoreFault` warning instead.
        missing_ok: Return ``None`` for a nonexistent store instead of
            raising :class:`FileNotFoundError`.
        kind: Human-readable store kind for error messages (defaults to
            ``file_format``).
    """
    return open_store(path).read(
        file_format, version, missing_ok=missing_ok, kind=kind
    )


def union_merge_save(
    path: PathLike,
    file_format: str,
    version: int,
    records: List[dict],
    key_of: Callable[[dict], Tuple],
    kind: Optional[str] = None,
) -> int:
    """Extend the cache store at ``path`` with ``records``, concurrency-safe.

    The canonical end-of-run persistence step: under the backend's
    locking discipline, the store's current entries are unioned with
    ``records`` (``records`` win under equal ``key_of`` keys, existing
    order is preserved, new entries append) and written back atomically.
    The merge happens at the *store* level, deliberately outside any
    in-memory cache: the persisted store accumulates every entry ever
    merged into it, never shrinking to a producer's LRU bound, and
    never dropping a concurrent writer's additions.

    Args:
        path: Cache store location (any backend).
        file_format: ``format`` marker of the envelope.
        version: Schema version written and required of existing state.
        records: Serialized entries to merge in (JSON-compatible dicts).
        key_of: Maps a serialized record to its hashable identity; must
            agree for loaded and freshly serialized records.
        kind: Human-readable store kind for error messages.

    Returns the number of entries the store holds afterwards.
    """
    return open_store(path).union_merge(
        file_format, version, records, key_of, kind=kind
    )
