"""Pareto-front utilities over (performance, yield) points.

The paper's central claim is that the application-specific designs are
*Pareto-optimal* against IBM's general-purpose baselines: for every
baseline there is a generated design with both higher yield and equal or
better performance.  These helpers extract and compare Pareto fronts from
evaluation data points.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.evaluation.experiment import DataPoint


def is_dominated(point: DataPoint, others: Iterable[DataPoint]) -> bool:
    """True when some other point is at least as good on both axes and better on one.

    "Good" means higher yield rate and fewer total gates.
    """
    for other in others:
        if other is point:
            continue
        no_worse = other.yield_rate >= point.yield_rate and other.total_gates <= point.total_gates
        strictly_better = (
            other.yield_rate > point.yield_rate or other.total_gates < point.total_gates
        )
        if no_worse and strictly_better:
            return True
    return False


def pareto_front(points: Sequence[DataPoint]) -> List[DataPoint]:
    """The non-dominated subset, sorted by ascending total gate count."""
    front = [point for point in points if not is_dominated(point, points)]
    return sorted(front, key=lambda p: (p.total_gates, -p.yield_rate))


def dominates_all(candidates: Sequence[DataPoint], baselines: Sequence[DataPoint]) -> bool:
    """True when every baseline point is dominated by some candidate point.

    This is the "better Pareto-optimal results" statement of the paper: the
    generated series should dominate the general-purpose baselines.
    """
    return all(is_dominated(baseline, candidates) for baseline in baselines)
