"""The five experiment configurations of the paper's evaluation (Section 5.2).

========================  =====================================================
configuration             meaning
========================  =====================================================
``ibm``                   IBM's four general-purpose baseline architectures
                          (Figure 9), 5-frequency scheme.
``eff-full``              The full design flow: optimized layout, filtered-
                          weight bus selection, optimized frequency allocation;
                          one architecture per 4-qubit bus count.
``eff-5-freq``            Optimized layout and bus selection, but IBM's
                          5-frequency scheme instead of Algorithm 3.
``eff-rd-bus``            Optimized layout and frequency allocation, but the
                          4-qubit bus squares are selected at random (several
                          seeds produce a cloud of samples).
``eff-layout-only``       Optimized layout, but the connection design is either
                          "2-qubit buses only" or "as many 4-qubit buses as
                          possible" and the frequencies follow the 5-frequency
                          scheme — isolating the benefit of Algorithm 1.
========================  =====================================================
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.design.engine import DesignEngine
from repro.design.flow import BusStrategy, DesignFlow, DesignOptions, FrequencyStrategy
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import five_frequency_scheme
from repro.hardware.ibm import ibm_baselines
from repro.runtime.metrics import global_metrics

_metrics = global_metrics()


class ExperimentConfig(enum.Enum):
    """The five experiment configurations compared in Figure 10."""

    IBM = "ibm"
    EFF_FULL = "eff-full"
    EFF_5_FREQ = "eff-5-freq"
    EFF_RD_BUS = "eff-rd-bus"
    EFF_LAYOUT_ONLY = "eff-layout-only"


def config_display_name(config: ExperimentConfig) -> str:
    """The label used for the configuration in the paper's figures."""
    return config.value


def architectures_for_config(
    circuit: QuantumCircuit,
    config: ExperimentConfig,
    random_bus_seeds: Sequence[int] = (1, 2, 3, 4, 5),
    frequency_local_trials: int = 2000,
    engine: Optional[DesignEngine] = None,
    allocation_strategy: str = "bfs-greedy",
    screening: bool = True,
) -> List[Architecture]:
    """Generate every architecture evaluated under ``config`` for ``circuit``.

    Args:
        circuit: The benchmark program.
        config: Which of the five experiment configurations to generate.
        random_bus_seeds: Seeds used by ``eff-rd-bus`` — each seed produces
            one random architecture per bus count, forming the sample cloud
            of Section 5.4.2.
        frequency_local_trials: Monte Carlo trials per candidate frequency in
            Algorithm 3 (applies to the configurations that use it).
        engine: Optional shared :class:`DesignEngine`.  All configurations
            of a benchmark share the profile and layout stages, and
            random-bus seeds that agree on their selected squares share
            one frequency allocation; results are identical with or
            without sharing.
        allocation_strategy: Algorithm 3 search strategy (see
            :data:`~repro.design.frequency_allocation.ALLOCATION_STRATEGIES`)
            for the configurations that run it (``eff-full`` and
            ``eff-rd-bus``); the paper-exact ``bfs-greedy`` by default.
            This is how whole sweeps run the ``analytic-guided`` /
            ``coordinate-descent`` ablations.
        screening: Whether Algorithm 3 uses the exact interval-count
            screening engine (:mod:`repro.collision.screening`).
            Winner-preserving, so architectures are byte-identical with
            it on or off; ``False`` is the ``--no-screening`` escape
            hatch.
    """
    with _metrics.timer("design/generate"):
        architectures = _architectures_for_config(
            circuit, config, random_bus_seeds, frequency_local_trials,
            engine, allocation_strategy, screening,
        )
    _metrics.increment("design/architectures", len(architectures))
    return architectures


def _architectures_for_config(
    circuit: QuantumCircuit,
    config: ExperimentConfig,
    random_bus_seeds: Sequence[int],
    frequency_local_trials: int,
    engine: Optional[DesignEngine],
    allocation_strategy: str,
    screening: bool,
) -> List[Architecture]:
    engine = engine if engine is not None else DesignEngine()
    if config is ExperimentConfig.IBM:
        return [arch for _index, arch in sorted(ibm_baselines().items())]

    if config is ExperimentConfig.EFF_FULL:
        options = DesignOptions(
            local_trials=frequency_local_trials,
            allocation_strategy=allocation_strategy,
            frequency_screening=screening,
        )
        return DesignFlow(circuit, options, engine=engine).design_series()

    if config is ExperimentConfig.EFF_5_FREQ:
        options = DesignOptions(
            frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY,
            local_trials=frequency_local_trials,
        )
        return DesignFlow(circuit, options, engine=engine).design_series()

    if config is ExperimentConfig.EFF_RD_BUS:
        architectures: List[Architecture] = []
        max_buses = engine.max_four_qubit_buses(circuit)
        for seed in random_bus_seeds:
            options = DesignOptions(
                bus_strategy=BusStrategy.RANDOM,
                random_bus_seed=seed,
                local_trials=frequency_local_trials,
                allocation_strategy=allocation_strategy,
                frequency_screening=screening,
            )
            flow = DesignFlow(circuit, options, engine=engine)
            previous_bus_count = -1
            for num_buses in range(1, max_buses + 1):
                actual = engine.realized_bus_count(circuit, num_buses, options)
                if actual == previous_bus_count:
                    # The random selection ran out of non-conflicting squares;
                    # larger requests only duplicate the previous design —
                    # skipped before frequency allocation runs.
                    continue
                previous_bus_count = actual
                arch = flow.design(num_buses)
                arch.name = f"{arch.name}_seed{seed}"
                architectures.append(arch)
        return architectures

    if config is ExperimentConfig.EFF_LAYOUT_ONLY:
        return _layout_only_architectures(circuit, engine)

    raise ValueError(f"unknown configuration {config!r}")


def _layout_only_architectures(
    circuit: QuantumCircuit, engine: DesignEngine
) -> List[Architecture]:
    """The two ``eff-layout-only`` designs: 2-qubit buses only, and max 4-qubit buses.

    Both use IBM's 5-frequency scheme so that the comparison against the
    ``ibm`` baseline isolates the effect of the layout subroutine alone.
    """
    flow = DesignFlow(
        circuit,
        DesignOptions(frequency_strategy=FrequencyStrategy.FIVE_FREQUENCY),
        engine=engine,
    )
    minimal = flow.design(0, name=f"layout_only_{circuit.name}_2qbus")
    maximal = flow.design(
        flow.max_four_qubit_buses(), name=f"layout_only_{circuit.name}_max4qbus"
    )
    for arch in (minimal, maximal):
        arch.frequencies = five_frequency_scheme(arch.coordinates())
    return [minimal, maximal]
