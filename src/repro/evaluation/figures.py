"""Regeneration of the paper's figures as data tables.

This module turns library objects into the rows/series the paper plots:

* :func:`figure5_data` — the coupling strength matrices of
  ``UCCSD_ansatz_8`` and ``misex1_241`` (Figure 5);
* :func:`figure10_rows` — the (configuration, architecture, yield,
  normalized reciprocal gate count) series of one benchmark's subfigure of
  Figure 10;
* :func:`format_figure10_table` — a printable table of those rows.

Plotting proper is intentionally text-based (see
:mod:`repro.visualization`); the benchmark harness prints the same series
the paper reports rather than producing graphics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.benchmarks.library import get_benchmark
from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import ExperimentResult
from repro.profiling.profiler import profile_circuit

#: The two programs whose coupling patterns the paper contrasts in Figure 5.
FIGURE5_BENCHMARKS = ("UCCSD_ansatz_8", "misex1_241")


def figure5_data(benchmarks: Sequence[str] = FIGURE5_BENCHMARKS) -> Dict[str, np.ndarray]:
    """Coupling strength matrices of the Figure 5 benchmarks."""
    data = {}
    for name in benchmarks:
        circuit = get_benchmark(name)
        data[name] = profile_circuit(circuit).strength_matrix
    return data


def figure10_rows(result: ExperimentResult) -> List[Dict[str, object]]:
    """The data series of one benchmark's Figure 10 subfigure, as dict rows."""
    rows = []
    for point in sorted(
        result.points, key=lambda p: (p.config.value, p.num_four_qubit_buses, p.architecture_name)
    ):
        rows.append(
            {
                "benchmark": point.benchmark,
                "config": point.config.value,
                "architecture": point.architecture_name,
                "qubits": point.num_qubits,
                "connections": point.num_connections,
                "four_qubit_buses": point.num_four_qubit_buses,
                "yield_rate": point.yield_rate,
                "total_gates": point.total_gates,
                "normalized_reciprocal_gates": round(point.normalized_reciprocal_gates, 4),
            }
        )
    return rows


def format_figure10_table(result: ExperimentResult) -> str:
    """A printable table of one benchmark's Figure 10 series."""
    header = (
        f"{'config':<16} {'architecture':<38} {'conn':>4} {'4Qbus':>5} "
        f"{'yield':>10} {'gates':>7} {'norm 1/gates':>12}"
    )
    lines = [f"== {result.benchmark} ==", header, "-" * len(header)]
    for row in figure10_rows(result):
        lines.append(
            f"{row['config']:<16} {row['architecture']:<38} {row['connections']:>4} "
            f"{row['four_qubit_buses']:>5} {row['yield_rate']:>10.2e} {row['total_gates']:>7} "
            f"{row['normalized_reciprocal_gates']:>12.3f}"
        )
    return "\n".join(lines)


def figure10_series(
    result: ExperimentResult, config: ExperimentConfig
) -> Tuple[List[float], List[float]]:
    """The (x, y) series of one configuration in one subfigure.

    x is the normalized reciprocal gate count (right = better performance),
    y is the yield rate (up = better yield), matching the paper's axes.
    """
    points = sorted(result.by_config(config), key=lambda p: p.normalized_reciprocal_gates)
    xs = [point.normalized_reciprocal_gates for point in points]
    ys = [point.yield_rate for point in points]
    return xs, ys
