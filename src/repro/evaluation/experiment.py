"""Running the Figure 10 experiment: yield vs post-mapping gate count.

For one benchmark, every architecture of every requested configuration is
scored on the two axes of the paper's Figure 10:

* **yield rate** — Monte Carlo estimate with the collision model of
  Section 4.3.1;
* **normalized reciprocal gate count** — the paper's performance axis:
  the reciprocal of the total post-mapping gate count, normalized so the
  worst (largest) gate count among all evaluated architectures of that
  benchmark sits at 1.0, and better-performing architectures lie to the
  right (> 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.collision.yield_simulator import YieldSimulator
from repro.design.engine import DesignEngine
from repro.evaluation.configs import ExperimentConfig, architectures_for_config
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import DEFAULT_SIGMA_GHZ
from repro.mapping.engine import RoutingEngine
from repro.mapping.router import route_circuit
from repro.mapping.sabre import SabreParameters
from repro.profiling.profiler import CircuitProfile

#: Configurations evaluated by default (all five, as in Figure 10).
DEFAULT_CONFIGS = (
    ExperimentConfig.IBM,
    ExperimentConfig.EFF_FULL,
    ExperimentConfig.EFF_RD_BUS,
    ExperimentConfig.EFF_5_FREQ,
    ExperimentConfig.EFF_LAYOUT_ONLY,
)

#: Router parameters used by the evaluation harness by default.
#:
#: Bidirectional forward-backward-forward routing (``passes=3``) is
#: deterministic and never worse than a single pass (qft_16: 134 → 72
#: swaps), and with the persistent ``RoutingCache`` merged in-worker its
#: ~3x routing cost is paid once per (circuit, architecture) ever — so
#: evaluation defaults to it.  ``SabreParameters()`` itself keeps
#: ``passes=1``: the router's own default stays the paper-exact single
#: pass; only the evaluation harness opts into the quality win.
DEFAULT_EVALUATION_ROUTING = SabreParameters(passes=3)


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs of the evaluation harness.

    Attributes:
        yield_trials: Monte Carlo trials per architecture (paper: 10,000).
        sigma_ghz: Fabrication precision (paper: 30 MHz).
        yield_seed: Seed of the yield simulator (common random numbers
            across architectures).
        frequency_local_trials: Trials per candidate inside Algorithm 3.
        random_bus_seeds: Seeds for the ``eff-rd-bus`` sample cloud.
        keep_routed_circuits: Whether mapping results retain full circuits
            (disabled by default to keep sweeps light).
        routing: Router tuning parameters shared by every evaluation point
            (bidirectional passes, seeded restarts, look-ahead window).
            Defaults to :data:`DEFAULT_EVALUATION_ROUTING` — bidirectional
            ``passes=3`` routing, deterministic and never worse than the
            single-pass router default.
        routing_cache_path: Optional path to a persisted routing-result
            cache (see :meth:`~repro.mapping.engine.RoutingCache.load`):
            evaluation engines warm-load it, so repeated sweeps reuse
            routing results across processes.  Missing files are ignored.
        allocation_strategy: Algorithm 3 search strategy used by the
            design-flow configurations (``eff-full`` / ``eff-rd-bus``);
            the paper-exact ``bfs-greedy`` by default.  Setting
            ``analytic-guided`` or ``coordinate-descent`` runs the whole
            sweep as that ablation — byte-identically for any job count.
        design_cache_path: Optional path to a persisted design-stage
            cache (see :class:`~repro.design.engine.DesignCache`):
            design engines warm-load it, so repeated evaluations reuse
            Algorithm 3 frequency plans across processes.  Missing files
            are ignored.
        screening: Whether Algorithm 3 uses the exact interval-count
            screening engine (:mod:`repro.collision.screening`) on the
            cold path.  Screening is winner-preserving — sweep outputs
            are byte-identical with it on or off, for any job count —
            so ``False`` (the ``--no-screening`` CLI flag) exists as an
            escape hatch and benchmark baseline.
        checkpoint_path: Optional path to a sweep checkpoint store (see
            :class:`~repro.evaluation.checkpoint.SweepCheckpoint`, any
            :mod:`repro.persistence` backend): workers record every
            completed generation and evaluation task into it, so an
            interrupted sweep can be restarted.
        resume: Skip sweep tasks already recorded in the checkpoint
            store.  Resume lookups are keyed by content digests of each
            task's full identity (inputs plus result-affecting
            settings), so a resumed sweep is byte-identical to an
            uninterrupted one — and never replays stale results after a
            settings change.  Requires ``checkpoint_path``.
    """

    yield_trials: int = 10_000
    sigma_ghz: float = DEFAULT_SIGMA_GHZ
    yield_seed: int = 7
    frequency_local_trials: int = 2000
    random_bus_seeds: Sequence[int] = (1, 2, 3, 4, 5)
    keep_routed_circuits: bool = False
    routing: SabreParameters = DEFAULT_EVALUATION_ROUTING
    routing_cache_path: Optional[str] = None
    allocation_strategy: str = "bfs-greedy"
    design_cache_path: Optional[str] = None
    screening: bool = True
    checkpoint_path: Optional[str] = None
    resume: bool = False

    def __post_init__(self) -> None:
        # Fail fast — before any worker forks — on a strategy name no
        # allocator will accept.
        from repro.design.frequency_allocation import resolve_strategy

        resolve_strategy(self.allocation_strategy)
        if self.resume and not self.checkpoint_path:
            raise ValueError("resume=True requires checkpoint_path")


def design_engine_for(settings: EvaluationSettings) -> DesignEngine:
    """A fresh :class:`DesignEngine` warm-loaded per ``settings``.

    The single construction path used by the serial harness, the sweep
    workers, and the CLI: when ``settings.design_cache_path`` names a
    persisted :class:`~repro.design.engine.DesignCache` file, its
    Algorithm 3 frequency plans are merged in before any design runs
    (missing files are ignored).  The frequency cache is unbounded in
    that case — the zero-search warm-session guarantee must hold however
    large the persisted grid grew, and memory stays bounded by the
    counts-only file the operator chose to persist.
    """
    if not settings.design_cache_path:
        return DesignEngine()
    from repro.design.engine import DesignCache

    engine = DesignEngine(frequency_cache=DesignCache(max_entries=None))
    engine.frequency_cache.load(settings.design_cache_path, missing_ok=True)
    return engine


@dataclass
class DataPoint:
    """One point of Figure 10: one architecture evaluated for one benchmark."""

    benchmark: str
    config: ExperimentConfig
    architecture_name: str
    num_qubits: int
    num_connections: int
    num_four_qubit_buses: int
    yield_rate: float
    total_gates: int
    num_swaps: int = 0
    normalized_reciprocal_gates: float = 0.0

    @property
    def reciprocal_gates(self) -> float:
        return 1.0 / self.total_gates if self.total_gates else 0.0


@dataclass
class ExperimentResult:
    """All data points of one benchmark's subfigure of Figure 10."""

    benchmark: str
    points: List[DataPoint] = field(default_factory=list)

    def by_config(self, config: ExperimentConfig) -> List[DataPoint]:
        return [point for point in self.points if point.config is config]

    def best_yield(self, config: Optional[ExperimentConfig] = None) -> Optional[DataPoint]:
        pool = self.by_config(config) if config else self.points
        return max(pool, key=lambda p: p.yield_rate, default=None)

    def best_performance(self, config: Optional[ExperimentConfig] = None) -> Optional[DataPoint]:
        pool = self.by_config(config) if config else self.points
        return min(pool, key=lambda p: p.total_gates, default=None)

    def normalize(self) -> None:
        """Fill in the normalized reciprocal gate count for every point.

        The paper normalizes each benchmark's X axis so that the worst
        post-mapping gate count maps to 1.0.
        """
        if not self.points:
            return
        worst = max(point.total_gates for point in self.points)
        for point in self.points:
            point.normalized_reciprocal_gates = worst / point.total_gates


def evaluate_benchmark(
    circuit: QuantumCircuit,
    configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
    settings: Optional[EvaluationSettings] = None,
    engine: Optional[RoutingEngine] = None,
    design_engine: Optional[DesignEngine] = None,
) -> ExperimentResult:
    """Evaluate one benchmark across the requested configurations.

    Architectures that cannot host the benchmark (fewer physical than
    logical qubits) are skipped, mirroring the paper where every baseline
    has at least as many qubits as the largest benchmark.

    Args:
        engine: Optional shared :class:`RoutingEngine`; multi-benchmark
            callers pass one so baseline architectures shared across
            benchmarks keep their routers and distance matrices.  Must be
            configured with ``settings.routing``.
        design_engine: Optional shared :class:`DesignEngine`; the
            benchmark's configurations share its profile/layout/selection
            stages and its memoized frequency allocations (results are
            identical with or without one).
    """
    settings = settings or EvaluationSettings()
    simulator = YieldSimulator(
        trials=settings.yield_trials, sigma_ghz=settings.sigma_ghz, seed=settings.yield_seed
    )
    if engine is None:
        engine = RoutingEngine(settings.routing)
        if settings.routing_cache_path:
            engine.cache.load(settings.routing_cache_path, missing_ok=True)
    if design_engine is None:
        design_engine = design_engine_for(settings)
    # The design engine's profile stage serves both the architecture
    # generation below and the router's initial placement.
    profile = design_engine.profile(circuit)
    result = ExperimentResult(benchmark=circuit.name)
    for config in configs:
        for architecture in architectures_for_config(
            circuit,
            config,
            random_bus_seeds=settings.random_bus_seeds,
            frequency_local_trials=settings.frequency_local_trials,
            engine=design_engine,
            allocation_strategy=settings.allocation_strategy,
            screening=settings.screening,
        ):
            if architecture.num_qubits < circuit.num_qubits:
                continue
            result.points.append(
                evaluate_point(circuit, profile, architecture, config, simulator, settings,
                               engine=engine)
            )
    result.normalize()
    return result


def evaluate_suite(
    circuits: Dict[str, QuantumCircuit],
    configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
    settings: Optional[EvaluationSettings] = None,
) -> Dict[str, ExperimentResult]:
    """Evaluate several benchmarks (the full Figure 10 grid by default).

    One routing engine and one design engine serve the whole suite, so
    baseline architectures shared across benchmarks keep their routers
    and distance matrices, and design stages shared across circuits are
    computed once.
    """
    settings = settings or EvaluationSettings()
    engine = RoutingEngine(settings.routing)
    if settings.routing_cache_path:
        engine.cache.load(settings.routing_cache_path, missing_ok=True)
    design_engine = design_engine_for(settings)
    return {
        name: evaluate_benchmark(circuit, configs, settings, engine=engine,
                                 design_engine=design_engine)
        for name, circuit in circuits.items()
    }


def evaluate_point(
    circuit: QuantumCircuit,
    profile: CircuitProfile,
    architecture: Architecture,
    config: ExperimentConfig,
    simulator: YieldSimulator,
    settings: EvaluationSettings,
    engine: Optional[RoutingEngine] = None,
) -> DataPoint:
    """Score one (benchmark, architecture) evaluation point of Figure 10.

    Args:
        engine: Optional shared :class:`RoutingEngine`; reuses distance
            matrices and memoized routings across points (results are
            identical with or without one).
    """
    # settings.routing is passed even alongside an engine so route_circuit's
    # consistency guard rejects an engine configured with different knobs.
    mapping = route_circuit(
        circuit,
        architecture,
        profile=profile,
        parameters=settings.routing,
        keep_routed_circuit=settings.keep_routed_circuits,
        engine=engine,
    )
    yield_estimate = simulator.estimate(architecture)
    return DataPoint(
        benchmark=circuit.name,
        config=config,
        architecture_name=architecture.name,
        num_qubits=architecture.num_qubits,
        num_connections=architecture.num_connections(),
        num_four_qubit_buses=len(architecture.four_qubit_buses()),
        yield_rate=yield_estimate.yield_rate,
        total_gates=mapping.total_gates,
        num_swaps=mapping.num_swaps,
    )
