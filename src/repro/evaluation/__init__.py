"""Evaluation harness reproducing the paper's Section 5.

The five experiment configurations (``ibm``, ``eff-full``, ``eff-5-freq``,
``eff-rd-bus``, ``eff-layout-only``) are generated per benchmark, each
architecture is scored on the two axes of Figure 10 — Monte Carlo yield
rate and total post-mapping gate count — and the analysis helpers compute
the paper's headline comparisons (Sections 5.3 and 5.4).
"""

from repro.evaluation.checkpoint import (
    SweepCheckpoint,
    generation_task_key,
    point_task_key,
)
from repro.evaluation.configs import (
    ExperimentConfig,
    architectures_for_config,
    config_display_name,
)
from repro.evaluation.experiment import (
    DataPoint,
    EvaluationSettings,
    ExperimentResult,
    design_engine_for,
    evaluate_benchmark,
    evaluate_point,
    evaluate_suite,
)
from repro.evaluation.parallel import (
    SweepExecutor,
    SweepPoint,
    run_sweep,
    save_worker_routing_cache,
    sweep_point_seed,
)
from repro.evaluation.supervisor import (
    QuarantinedTask,
    SupervisedExecutor,
    SupervisorPolicy,
    TaskFailure,
    run_supervised_sweep,
)
from repro.evaluation.pareto import is_dominated, pareto_front
from repro.evaluation.analysis import (
    HeadlineComparison,
    frequency_allocation_gain,
    headline_comparisons,
    layout_effect_gain,
)
from repro.evaluation.figures import figure5_data, figure10_rows, format_figure10_table

__all__ = [
    "ExperimentConfig",
    "architectures_for_config",
    "config_display_name",
    "DataPoint",
    "EvaluationSettings",
    "ExperimentResult",
    "design_engine_for",
    "evaluate_benchmark",
    "evaluate_point",
    "evaluate_suite",
    "SweepCheckpoint",
    "generation_task_key",
    "point_task_key",
    "SweepExecutor",
    "SweepPoint",
    "run_sweep",
    "save_worker_routing_cache",
    "sweep_point_seed",
    "QuarantinedTask",
    "SupervisedExecutor",
    "SupervisorPolicy",
    "TaskFailure",
    "run_supervised_sweep",
    "pareto_front",
    "is_dominated",
    "HeadlineComparison",
    "headline_comparisons",
    "layout_effect_gain",
    "frequency_allocation_gain",
    "figure5_data",
    "figure10_rows",
    "format_figure10_table",
]
