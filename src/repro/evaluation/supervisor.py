"""Supervised sweep execution: fault-tolerant workers over the sweep grid.

:class:`SupervisedExecutor` runs the same deterministic task grid as
:class:`~repro.evaluation.parallel.SweepExecutor`, but owns its worker
pool directly instead of delegating to ``multiprocessing.Pool``:

* every worker gets a **dedicated pipe** (a SIGKILL'd worker can never
  wedge a shared queue lock) and a **heartbeat thread**;
* the parent detects dead workers (``is_alive``/exitcode), tasks past
  their **deadline**, and **heartbeat silence** (a wedged native call
  holding the GIL), kills the offender, and **replenishes the pool**;
* failed attempts are retried with **deterministic exponential
  backoff**, up to ``max_task_retries`` retries;
* a retry that follows a worker *crash* is **demoted** to the numpy
  screening backend (``REPRO_SCREENING_BACKEND=numpy`` semantics forced
  for that attempt) — safe because the backends are bit-identical by
  contract, so a native-kernel segfault costs speed, never results;
* a task that exhausts its retries is **quarantined**: recorded to the
  checkpoint as a structured ``failure`` entry, counted, and skipped —
  the sweep completes with a partial-result report instead of dying.

Determinism: tasks are dispatched and collected **by grid index**, each
attempt re-derives the task's per-point seeds from its content identity,
and worker metrics deltas merge key-wise — so for the non-quarantined
points the sweep output is byte-identical to a fault-free run, for any
``--jobs`` count, any backend, and any fault schedule.

Every supervision event is counted in the
:class:`~repro.runtime.metrics.MetricsRegistry` (``supervisor/tasks``,
``supervisor/retries``, ``supervisor/worker_crashes``,
``supervisor/worker_restarts``, ``supervisor/deadline_kills``,
``supervisor/heartbeat_timeouts``, ``supervisor/backend_demotions``,
``supervisor/quarantined_tasks``) and lands in ``--metrics-out``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults
from repro.evaluation import parallel
from repro.evaluation.checkpoint import generation_task_key, point_task_key
from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import DEFAULT_CONFIGS, EvaluationSettings, ExperimentResult
from repro.evaluation.parallel import SweepExecutor
from repro.runtime.metrics import global_metrics

FAILURE_REPORT_FORMAT = "repro-sweep-failures"
FAILURE_REPORT_VERSION = 1


# ---------------------------------------------------------------------------
# Policy and failure records.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision knobs.

    None of these can affect sweep *values* (retries re-derive the same
    content-addressed seeds), so the policy deliberately lives outside
    :class:`~repro.runtime.config.RuntimeConfig` and the config digest.

    Args:
        task_deadline_s: Kill a task attempt running longer than this
            (None disables; hung workers then require heartbeats).
        heartbeat_interval_s: How often workers prove liveness.
        heartbeat_timeout_s: Kill a busy worker silent this long — the
            GIL-holding-hang detector (None disables).
        max_task_retries: Retries *after* the first attempt before a
            task is quarantined.
        backoff_base_s: Retry ``n`` (1-based) becomes eligible after
            ``backoff_base_s * 2**(n-1)`` seconds, capped below —
            deterministic, no jitter, so schedules replay.
        backoff_cap_s: Upper bound on any single backoff delay.
        demote_after_crash: Force the numpy screening backend on every
            retry that follows a worker crash.
        shutdown_grace_s: How long to wait for workers to exit cleanly.
    """

    task_deadline_s: Optional[float] = None
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: Optional[float] = None
    max_task_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    demote_after_crash: bool = True
    shutdown_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")

    def backoff_delay(self, retry_number: int) -> float:
        """Delay before 1-based retry ``retry_number`` becomes eligible."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2 ** (retry_number - 1)))


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt of one task."""

    reason: str  #: "crash" | "deadline" | "heartbeat" | "error"
    detail: str
    attempt: int
    backend: Optional[str]  #: screening backend forced for the attempt

    def record(self) -> dict:
        return {
            "reason": self.reason,
            "detail": self.detail,
            "attempt": self.attempt,
            "backend": self.backend,
        }


@dataclass
class QuarantinedTask:
    """A task that exhausted its retries and was skipped."""

    task: str  #: "generation" | "point"
    key: str
    benchmark: str
    config: str
    arch_index: Optional[int]
    attempts: int
    failures: List[TaskFailure] = field(default_factory=list)

    def record(self) -> dict:
        """The structured failure entry (checkpoint + ``--failures-out``)."""
        return {
            "task": self.task,
            "key": self.key,
            "benchmark": self.benchmark,
            "config": self.config,
            "arch_index": self.arch_index,
            "attempts": self.attempts,
            "failures": [failure.record() for failure in self.failures],
        }


# ---------------------------------------------------------------------------
# Task kinds.  The supervisor addresses tasks by the same content digests
# the checkpoint uses, so fault plans, retries, and failure records are
# all keyed identically to resume records.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskKind:
    """Parent-side registry entry for one kind of sweep task.

    Never crosses the fork boundary: workers receive the kind *name*
    over the pipe and resolve these callables from their own copy of
    the module-level registry, so the Callable fields are not worker
    payload.
    """

    name: str
    func: Callable[[Any], Tuple[Any, Any]]  # repro-lint: disable=REPRO-P401
    key_of: Callable[[Any], str]  # repro-lint: disable=REPRO-P401
    describe: Callable[[Any], Dict[str, Any]]  # repro-lint: disable=REPRO-P401


def _generation_key(task: Tuple) -> str:
    benchmark, config_value, settings = task
    return generation_task_key(benchmark, config_value, settings)


def _generation_describe(task: Tuple) -> Dict[str, Any]:
    benchmark, config_value, _ = task
    return {"benchmark": benchmark, "config": config_value, "arch_index": None}


def _point_key(task: Tuple) -> str:
    benchmark, config_value, arch_index, architecture, settings = task
    return point_task_key(benchmark, config_value, arch_index, architecture, settings)


def _point_describe(task: Tuple) -> Dict[str, Any]:
    benchmark, config_value, arch_index, _, _ = task
    return {"benchmark": benchmark, "config": config_value, "arch_index": arch_index}


_TASK_KINDS: Dict[str, TaskKind] = {}


def register_task_kind(kind: TaskKind) -> None:
    """Make a task function supervisable (also a test hook).

    Worker processes resolve the function by ``kind.name``, so the kind
    must be registered at import time of this module in *every* process
    (module-level registration satisfies that under any start method).
    """
    _TASK_KINDS[kind.name] = kind


register_task_kind(TaskKind(
    "generation", parallel._generate_task, _generation_key, _generation_describe,
))
register_task_kind(TaskKind(
    "point", parallel._evaluate_task, _point_key, _point_describe,
))


def _kind_for(func: Callable) -> TaskKind:
    for kind in _TASK_KINDS.values():
        if kind.func is func:
            return kind
    raise KeyError(
        f"task function {getattr(func, '__name__', func)!r} is not a "
        "registered supervisable task kind"
    )


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


@contextmanager
def _forced_backend(backend: Optional[str]):
    """Force a screening backend for one attempt (bit-identical swap)."""
    if backend is None:
        yield
        return
    from repro.collision import merge_kernel

    previous = merge_kernel.active_backend()
    merge_kernel.set_backend(backend)
    try:
        yield
    finally:
        merge_kernel.set_backend(previous)


@faults.fault_boundary
def _run_attempt(
    kind_name: str, task: Any, digest: str, attempt: int, backend: Optional[str],
) -> Tuple[str, Any, Any]:
    """Run one task attempt, converting any raise into a failure message."""
    kind = _TASK_KINDS[kind_name]
    try:
        with faults.task_context(digest, attempt):
            faults.maybe_inject("task:start")
            with _forced_backend(backend):
                payload, delta = kind.func(task)
        return "done", payload, delta
    except Exception as error:  # fault boundary: reported, never swallowed
        detail = f"{type(error).__name__}: {error}"
        return "error", f"{detail}\n{traceback.format_exc(limit=8)}", None


def _worker_main(conn, worker_id: int, heartbeat_interval: float) -> None:
    """Worker loop: receive task attempts, run them, send results + beats."""
    stop = threading.Event()
    send_lock = threading.Lock()

    def _send(message: Tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError, ValueError):
                stop.set()  # parent is gone; let the recv loop exit

    def _beat() -> None:
        while not stop.wait(heartbeat_interval):
            _send(("heartbeat", worker_id))

    threading.Thread(target=_beat, daemon=True, name="supervisor-heartbeat").start()
    while not stop.is_set():
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, index, attempt, digest, backend, kind_name, task = message
        status, payload, delta = _run_attempt(kind_name, task, digest, attempt, backend)
        _send(("result", worker_id, index, attempt, status, payload, delta))
    stop.set()


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = (
        "id", "process", "conn", "task_index", "attempt", "backend",
        "dispatched_at", "last_beat",
    )

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.task_index: Optional[int] = None
        self.attempt = 0
        self.backend: Optional[str] = None
        self.dispatched_at = 0.0
        self.last_beat = 0.0

    @property
    def busy(self) -> bool:
        return self.task_index is not None

    def clear(self) -> None:
        self.task_index = None
        self.backend = None


@dataclass(frozen=True)
class _Pending:
    index: int
    attempt: int
    eligible_at: float
    backend: Optional[str] = None


class SupervisedExecutor(SweepExecutor):
    """A :class:`SweepExecutor` whose workers are supervised.

    Unlike the base executor, tasks always run in worker processes —
    even with ``jobs=1`` — so a crash or hang can never take down the
    coordinating process.  Results are byte-identical to the base
    executor's for every completed task.

    Quarantined tasks accumulate on :attr:`failures`;
    :meth:`failure_report` renders them as the partial-result report.
    """

    def __init__(
        self,
        settings: Optional[EvaluationSettings] = None,
        configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
        jobs: int = 1,
        policy: Optional[SupervisorPolicy] = None,
    ) -> None:
        super().__init__(settings=settings, configs=configs, jobs=jobs)
        self.policy = policy or SupervisorPolicy()
        self.failures: List[QuarantinedTask] = []

    # -- reporting ------------------------------------------------------------

    def failure_report(self) -> dict:
        """The structured partial-result report (``--failures-out``)."""
        quarantined = sorted(
            (item.record() for item in self.failures),
            key=lambda r: (
                r["task"], r["benchmark"], r["config"],
                -1 if r["arch_index"] is None else r["arch_index"], r["key"],
            ),
        )
        return {
            "format": FAILURE_REPORT_FORMAT,
            "version": FAILURE_REPORT_VERSION,
            "quarantined": quarantined,
        }

    # -- execution ------------------------------------------------------------

    def _run_tasks(self, func, tasks):
        if not tasks:
            return []
        kind = _kind_for(func)
        outcomes, quarantined = self._supervise(kind, list(tasks))
        metrics = global_metrics()
        payloads = []
        for outcome in outcomes:
            if outcome is None:
                continue
            payload, delta = outcome
            if delta is not None:
                # Supervised tasks always run in workers, so deltas
                # always merge (no in-process double-count case).
                metrics.merge(delta)
            payloads.append(payload)
        for item in quarantined:
            self.failures.append(item)
            self._record_failure(item)
        return payloads

    def _record_failure(self, item: QuarantinedTask) -> None:
        if not self.settings.checkpoint_path:
            return
        session = parallel._session_module().session_for(settings=self.settings)
        session.record_task_failure(item.record())

    def _supervise(
        self, kind: TaskKind, tasks: List,
    ) -> Tuple[List[Optional[Tuple[Any, Any]]], List[QuarantinedTask]]:
        policy = self.policy
        metrics = global_metrics()
        total = len(tasks)
        digests = [kind.key_of(task) for task in tasks]
        metrics.increment("supervisor/tasks", total)

        outcomes: List[Optional[Tuple[Any, Any]]] = [None] * total
        quarantined: Dict[int, QuarantinedTask] = {}
        failures: Dict[int, List[TaskFailure]] = {index: [] for index in range(total)}
        demoted: set = set()
        pending = deque(_Pending(index, 0, 0.0) for index in range(total))
        finished = 0

        workers: Dict[int, _Worker] = {}
        next_worker_id = 0
        target = min(self.jobs, total)

        def _spawn(replacement: bool) -> None:
            nonlocal next_worker_id
            worker_id = next_worker_id
            next_worker_id += 1
            parent_conn, child_conn = multiprocessing.Pipe()
            process = multiprocessing.Process(
                target=_worker_main,
                args=(child_conn, worker_id, policy.heartbeat_interval_s),
                daemon=True,
                name=f"sweep-worker-{worker_id}",
            )
            process.start()
            child_conn.close()
            workers[worker_id] = _Worker(worker_id, process, parent_conn)
            workers[worker_id].last_beat = time.monotonic()
            if replacement:
                metrics.increment("supervisor/worker_restarts")

        def _retire(worker: _Worker) -> None:
            workers.pop(worker.id, None)
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(policy.shutdown_grace_s)

        def _attempt_failed(
            index: int, attempt: int, reason: str, detail: str,
            backend: Optional[str],
        ) -> None:
            nonlocal finished
            failures[index].append(TaskFailure(reason, detail, attempt, backend))
            if attempt >= policy.max_task_retries:
                describe = kind.describe(tasks[index])
                quarantined[index] = QuarantinedTask(
                    task=kind.name,
                    key=digests[index],
                    benchmark=describe["benchmark"],
                    config=describe["config"],
                    arch_index=describe["arch_index"],
                    attempts=attempt + 1,
                    failures=failures[index],
                )
                metrics.increment("supervisor/quarantined_tasks")
                finished += 1
                return
            if policy.demote_after_crash and reason == "crash":
                demoted.add(index)
            next_backend = "numpy" if index in demoted else None
            if next_backend is not None and backend is None:
                metrics.increment("supervisor/backend_demotions")
            eligible_at = time.monotonic() + policy.backoff_delay(attempt + 1)
            pending.append(_Pending(index, attempt + 1, eligible_at, next_backend))
            metrics.increment("supervisor/retries")

        def _fail_worker_task(worker: _Worker, reason: str, detail: str) -> None:
            index, attempt, backend = worker.task_index, worker.attempt, worker.backend
            worker.clear()
            if index is not None and outcomes[index] is None and index not in quarantined:
                _attempt_failed(index, attempt, reason, detail, backend)

        def _dispatch(worker: _Worker, item: _Pending) -> bool:
            message = (
                "task", item.index, item.attempt, digests[item.index],
                item.backend, kind.name, tasks[item.index],
            )
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                pending.appendleft(item)  # worker died idle; not a task failure
                _retire(worker)
                return False
            worker.task_index = item.index
            worker.attempt = item.attempt
            worker.backend = item.backend
            worker.dispatched_at = worker.last_beat = time.monotonic()
            return True

        def _handle_message(worker: _Worker, message: Tuple) -> None:
            nonlocal finished
            worker.last_beat = time.monotonic()
            if message[0] != "result":
                return
            _, _, index, attempt, status, payload, delta = message
            if worker.task_index != index or outcomes[index] is not None:
                worker.clear()
                return  # stale result (task already resolved elsewhere)
            backend = worker.backend
            worker.clear()
            if status == "done":
                outcomes[index] = (payload, delta)
                finished += 1
            else:
                _attempt_failed(index, attempt, "error", payload, backend)

        try:
            for _ in range(target):
                _spawn(replacement=False)
            while finished < total:
                now = time.monotonic()
                # Keep the pool at strength while work remains.
                while len(workers) < target and (pending or any(
                    worker.busy for worker in workers.values()
                ) or not workers):
                    _spawn(replacement=True)
                # Hand eligible attempts to idle workers, lowest index first.
                idle = [w for w in workers.values() if not w.busy]
                for worker in idle:
                    if not pending:
                        break
                    eligible = sorted(
                        (item for item in pending if item.eligible_at <= now),
                        key=lambda item: item.index,
                    )
                    if not eligible:
                        break
                    item = eligible[0]
                    pending.remove(item)
                    _dispatch(worker, item)
                if finished >= total:
                    break
                # Wait for results/heartbeats; short tick bounds every
                # health check (deadline, heartbeat, backoff eligibility).
                conns = [w.conn for w in workers.values()]
                ready = mp_connection.wait(conns, timeout=0.05) if conns else []
                by_conn = {w.conn: w for w in workers.values()}
                for conn in ready:
                    worker = by_conn.get(conn)
                    if worker is None:
                        continue
                    try:
                        while conn.poll():
                            _handle_message(worker, conn.recv())
                    except (EOFError, OSError):
                        pass  # torn pipe: the liveness check below decides
                # Liveness, deadline, and heartbeat enforcement.
                now = time.monotonic()
                for worker in list(workers.values()):
                    if not worker.process.is_alive():
                        exitcode = worker.process.exitcode
                        metrics.increment("supervisor/worker_crashes")
                        _fail_worker_task(
                            worker, "crash", f"worker exited with code {exitcode}",
                        )
                        _retire(worker)
                    elif worker.busy and policy.task_deadline_s is not None and \
                            now - worker.dispatched_at > policy.task_deadline_s:
                        metrics.increment("supervisor/deadline_kills")
                        deadline = policy.task_deadline_s
                        _fail_worker_task(
                            worker, "deadline",
                            f"task exceeded {deadline:.3f}s deadline",
                        )
                        _retire(worker)
                    elif worker.busy and policy.heartbeat_timeout_s is not None and \
                            now - worker.last_beat > policy.heartbeat_timeout_s:
                        metrics.increment("supervisor/heartbeat_timeouts")
                        timeout = policy.heartbeat_timeout_s
                        _fail_worker_task(
                            worker, "heartbeat",
                            f"no heartbeat for {timeout:.3f}s",
                        )
                        _retire(worker)
        finally:
            for worker in list(workers.values()):
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in list(workers.values()):
                worker.process.join(policy.shutdown_grace_s)
                _retire(worker)

        ordered = [quarantined[index] for index in sorted(quarantined)]
        return outcomes, ordered


def run_supervised_sweep(
    benchmarks: Sequence[str],
    jobs: int = 1,
    settings: Optional[EvaluationSettings] = None,
    configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
    policy: Optional[SupervisorPolicy] = None,
) -> Tuple[Dict[str, ExperimentResult], "SupervisedExecutor"]:
    """Run a supervised sweep; returns (results, executor-with-failures)."""
    executor = SupervisedExecutor(
        settings=settings, configs=configs, jobs=jobs, policy=policy,
    )
    return executor.run(benchmarks), executor
