"""Headline comparisons of the paper's Sections 5.3 and 5.4.

These helpers distil an :class:`~repro.evaluation.experiment.ExperimentResult`
(or a suite of them) into the aggregate numbers the paper quotes:

* Section 5.3 — the most simplified design vs the 16-qubit baseline
  without 4-qubit buses (~7.7% performance gain, ~4x yield), vs the
  16-qubit baseline with four 4-qubit buses (>100x yield, <1% performance
  loss), and the maximally connected design vs the 20-qubit baseline with
  six 4-qubit buses (>1000x yield, ~3.5% performance loss);
* Section 5.4.1 — the ``eff-layout-only`` 2-qubit-bus design vs baseline
  (2) (~35x average yield improvement);
* Section 5.4.3 — ``eff-full`` vs ``eff-5-freq`` (~10x average yield
  improvement from Algorithm 3).

Monte Carlo yield estimates can legitimately be zero for very collision-
prone baselines; ratios then use a floor of one success over the trial
count so "at least X times better" statements remain well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import DataPoint, ExperimentResult


@dataclass(frozen=True)
class HeadlineComparison:
    """One generated-design vs baseline comparison.

    Attributes:
        benchmark: Benchmark name.
        ours: The generated design's data point.
        baseline: The baseline data point it is compared against.
        yield_ratio: ``ours.yield / max(baseline.yield, floor)``.
        performance_change: Relative change in total gate count
            (< 0 means our design needs fewer gates, i.e. performs better).
    """

    benchmark: str
    ours: DataPoint
    baseline: DataPoint
    yield_ratio: float
    performance_change: float


def _yield_floor(point: DataPoint, trials: int) -> float:
    """A zero yield estimate is replaced by the smallest resolvable value."""
    return max(point.yield_rate, 1.0 / trials)


def compare_points(ours: DataPoint, baseline: DataPoint, trials: int) -> HeadlineComparison:
    """Build a :class:`HeadlineComparison` between two data points."""
    return HeadlineComparison(
        benchmark=ours.benchmark,
        ours=ours,
        baseline=baseline,
        yield_ratio=_yield_floor(ours, trials) / _yield_floor(baseline, trials),
        performance_change=(ours.total_gates - baseline.total_gates) / baseline.total_gates,
    )


def _baseline_point(result: ExperimentResult, index: int) -> Optional[DataPoint]:
    """The ``ibm`` baseline labeled ``(index)`` in Figure 9 (1-based), if evaluated."""
    names = {
        1: "ibm_16q_2x8_2qbus",
        2: "ibm_16q_2x8_4qbus",
        3: "ibm_20q_4x5_2qbus",
        4: "ibm_20q_4x5_4qbus",
    }
    for point in result.by_config(ExperimentConfig.IBM):
        if point.architecture_name == names[index]:
            return point
    return None


def _most_simplified(result: ExperimentResult) -> Optional[DataPoint]:
    """The ``eff-full`` design with the fewest 4-qubit buses (fewest connections)."""
    points = result.by_config(ExperimentConfig.EFF_FULL)
    return min(points, key=lambda p: (p.num_four_qubit_buses, p.num_connections), default=None)


def _most_connected(result: ExperimentResult) -> Optional[DataPoint]:
    """The ``eff-full`` design with the most 4-qubit buses."""
    points = result.by_config(ExperimentConfig.EFF_FULL)
    return max(points, key=lambda p: (p.num_four_qubit_buses, p.num_connections), default=None)


def headline_comparisons(
    results: Dict[str, ExperimentResult],
    trials: int = 10_000,
) -> Dict[str, List[HeadlineComparison]]:
    """The three Section 5.3 comparisons for every benchmark.

    Returns a dict with keys ``"simplest_vs_ibm1"``, ``"simplest_vs_ibm2"``,
    and ``"max_vs_ibm4"``, each mapping to one comparison per benchmark
    (benchmarks missing the needed points are skipped).
    """
    output: Dict[str, List[HeadlineComparison]] = {
        "simplest_vs_ibm1": [],
        "simplest_vs_ibm2": [],
        "max_vs_ibm4": [],
    }
    for result in results.values():
        simplest = _most_simplified(result)
        most_connected = _most_connected(result)
        for key, ours, baseline_index in (
            ("simplest_vs_ibm1", simplest, 1),
            ("simplest_vs_ibm2", simplest, 2),
            ("max_vs_ibm4", most_connected, 4),
        ):
            baseline = _baseline_point(result, baseline_index)
            if ours is not None and baseline is not None:
                output[key].append(compare_points(ours, baseline, trials))
    return output


def layout_effect_gain(
    results: Dict[str, ExperimentResult], trials: int = 10_000
) -> List[HeadlineComparison]:
    """Section 5.4.1: ``eff-layout-only`` (2-qubit buses) vs ``ibm`` baseline (2).

    The paper reports ~35x average yield improvement with comparable or
    better performance.
    """
    comparisons = []
    for result in results.values():
        layout_points = result.by_config(ExperimentConfig.EFF_LAYOUT_ONLY)
        ours = min(layout_points, key=lambda p: p.num_connections, default=None)
        baseline = _baseline_point(result, 2)
        if ours is not None and baseline is not None:
            comparisons.append(compare_points(ours, baseline, trials))
    return comparisons


def frequency_allocation_gain(
    results: Dict[str, ExperimentResult], trials: int = 10_000
) -> List[HeadlineComparison]:
    """Section 5.4.3: ``eff-full`` vs ``eff-5-freq`` at matching bus counts.

    The paper reports ~10x average yield improvement from the optimized
    frequency allocation.  Architectures are matched by their number of
    4-qubit buses so the only difference is the frequency plan.
    """
    comparisons = []
    for result in results.values():
        five_freq = {
            point.num_four_qubit_buses: point
            for point in result.by_config(ExperimentConfig.EFF_5_FREQ)
        }
        for ours in result.by_config(ExperimentConfig.EFF_FULL):
            baseline = five_freq.get(ours.num_four_qubit_buses)
            if baseline is not None:
                comparisons.append(compare_points(ours, baseline, trials))
    return comparisons


def geometric_mean_yield_ratio(comparisons: Sequence[HeadlineComparison]) -> float:
    """Geometric mean of the yield ratios (the paper's "on average" statements)."""
    if not comparisons:
        return float("nan")
    product = 1.0
    for comparison in comparisons:
        product *= comparison.yield_ratio
    return product ** (1.0 / len(comparisons))


def mean_performance_change(comparisons: Sequence[HeadlineComparison]) -> float:
    """Arithmetic mean of the relative gate-count change."""
    if not comparisons:
        return float("nan")
    return sum(c.performance_change for c in comparisons) / len(comparisons)
