"""Sweep checkpointing: resumable design-space grids.

A sweep is a deterministic grid of independent tasks — architecture
*generation* tasks (one per benchmark x configuration, dominated by the
Algorithm 3 frequency search) and point *evaluation* tasks (one per
architecture, dominated by routing plus Monte Carlo yield).  The
checkpoint records every completed task in a
:mod:`repro.persistence` store (any backend), keyed by a **content
digest** of everything that can influence the task's result:

* a generation task digests its benchmark, configuration, and the
  design-affecting settings (local trials, bus seeds, allocation
  strategy — screening is excluded, exactly as in the
  :class:`~repro.design.engine.DesignCache`, because it is provably
  winner-preserving);
* a point task digests its identity (benchmark, configuration,
  architecture index), the *full serialized architecture*, and the
  evaluation-affecting settings (yield trials, sigma, seed, router
  parameters).

Because the keys are content digests, ``--resume`` can never replay a
stale result into a sweep whose settings changed — a changed knob
changes every affected digest, and those tasks simply recompute.  An
interrupted sweep restarted with ``--resume`` therefore produces output
byte-identical to an uninterrupted run, for any ``--jobs`` count and
any store backend: completed points are restored (value-exact, via the
JSON float round trip), incomplete ones recompute under the same
deterministic per-point seeds, and checkpointed generation tasks are
restored without a single Algorithm 3 Monte Carlo call.

Workers record tasks as they finish (the store's locked union merge
keeps concurrent writers from dropping each other's records), so a kill
at any moment loses at most the tasks in flight.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from repro import faults, persistence
from repro.evaluation.configs import ExperimentConfig
from repro.evaluation.experiment import DataPoint
from repro.hardware.architecture import Architecture
from repro.hardware.bus import BusType, four_qubit_bus, two_qubit_bus
from repro.hardware.lattice import Lattice, Square

#: A generation task's recorded rows: ``(benchmark, config value,
#: architecture index, architecture)`` — exactly the worker task output.
GenerationRows = List[Tuple[str, str, int, Architecture]]


def _digest(payload: dict) -> str:
    """SHA-256 over the canonical JSON text of a task-identity payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def generation_task_key(benchmark: str, config_value: str, settings) -> str:
    """Content digest of one architecture-generation task.

    Covers every setting that can change which architectures the task
    produces.  Screening is deliberately excluded (winner-preserving,
    mirroring the design cache); evaluation-only knobs like yield trials
    are excluded because they cannot affect generation.
    """
    return _digest({
        "task": "generation",
        "benchmark": benchmark,
        "config": config_value,
        "frequency_local_trials": settings.frequency_local_trials,
        "random_bus_seeds": list(settings.random_bus_seeds),
        "allocation_strategy": settings.allocation_strategy,
    })


def point_task_key(
    benchmark: str,
    config_value: str,
    arch_index: int,
    architecture: Architecture,
    settings,
) -> str:
    """Content digest of one point-evaluation task.

    The full serialized architecture participates, so a point record can
    never be served to a sweep whose generation settings produced a
    different architecture under the same index.
    """
    return _digest({
        "task": "point",
        "benchmark": benchmark,
        "config": config_value,
        "arch_index": arch_index,
        "architecture": architecture_record(architecture),
        "yield_trials": settings.yield_trials,
        "sigma_ghz": settings.sigma_ghz,
        "yield_seed": settings.yield_seed,
        "routing": asdict(settings.routing),
    })


# ---------------------------------------------------------------------------
# Serialization.  Round trips are *exact*: container iteration orders are
# preserved (never re-sorted) and floats survive via JSON's shortest-repr
# round trip, so a restored architecture or data point is value-identical
# to the recorded one and downstream output stays byte-identical.
# ---------------------------------------------------------------------------


def architecture_record(architecture: Architecture) -> dict:
    """A JSON-compatible, order-preserving image of an architecture."""
    return {
        "name": architecture.name,
        "coordinates": [
            [qubit, node[0], node[1]]
            for qubit, node in architecture.lattice.coordinates().items()
        ],
        "buses": [
            {
                "type": bus.bus_type.value,
                "qubits": list(bus.qubits),
                "square": list(bus.square.origin) if bus.square else None,
            }
            for bus in architecture.buses
        ],
        "frequencies": [
            [qubit, value] for qubit, value in architecture.frequencies.items()
        ],
        "logical_to_physical": [
            [logical, physical]
            for logical, physical in architecture.logical_to_physical.items()
        ],
    }


def architecture_from_record(record: dict) -> Architecture:
    """Rebuild an architecture from :func:`architecture_record` output."""
    lattice = Lattice()
    for qubit, x, y in record["coordinates"]:
        lattice.place(int(qubit), (int(x), int(y)))
    buses = []
    for bus in record["buses"]:
        qubits = [int(qubit) for qubit in bus["qubits"]]
        if bus["type"] == BusType.TWO_QUBIT.value:
            buses.append(two_qubit_bus(qubits[0], qubits[1]))
        else:
            origin = bus["square"]
            buses.append(
                four_qubit_bus(
                    tuple(qubits), Square((int(origin[0]), int(origin[1])))
                )
            )
    return Architecture(
        name=record["name"],
        lattice=lattice,
        buses=buses,
        frequencies={
            int(qubit): float(value) for qubit, value in record["frequencies"]
        },
        logical_to_physical={
            int(logical): int(physical)
            for logical, physical in record["logical_to_physical"]
        },
    )


def point_record(point: DataPoint) -> dict:
    """A JSON-compatible image of a completed evaluation point."""
    return {
        "benchmark": point.benchmark,
        "config": point.config.value,
        "architecture_name": point.architecture_name,
        "num_qubits": point.num_qubits,
        "num_connections": point.num_connections,
        "num_four_qubit_buses": point.num_four_qubit_buses,
        "yield_rate": point.yield_rate,
        "total_gates": point.total_gates,
        "num_swaps": point.num_swaps,
    }


def point_from_record(record: dict) -> DataPoint:
    """Rebuild a data point from :func:`point_record` output.

    ``normalized_reciprocal_gates`` is not persisted: it is a
    whole-benchmark normalization recomputed by
    :meth:`~repro.evaluation.experiment.ExperimentResult.normalize`
    after every sweep, resumed or not.
    """
    return DataPoint(
        benchmark=record["benchmark"],
        config=ExperimentConfig(record["config"]),
        architecture_name=record["architecture_name"],
        num_qubits=int(record["num_qubits"]),
        num_connections=int(record["num_connections"]),
        num_four_qubit_buses=int(record["num_four_qubit_buses"]),
        yield_rate=float(record["yield_rate"]),
        total_gates=int(record["total_gates"]),
        num_swaps=int(record["num_swaps"]),
    )


class SweepCheckpoint:
    """Completed sweep tasks, persisted in a pluggable cache store.

    One checkpoint store holds three record kinds under one envelope:
    ``generation`` records (the architecture rows of one benchmark x
    configuration task), ``point`` records (one evaluated data point),
    and ``failure`` records (a supervised sweep's quarantined tasks,
    written so a partial run's gaps are explained in the store itself).
    Records are keyed by the content digests above; the file-level
    identity is ``(kind, key)``.

    Lookups are served from the snapshot taken by :meth:`load`;
    recordings go straight to the store via the backend's locked union
    merge, so any number of workers (or hosts, on a shared filesystem)
    can checkpoint one sweep concurrently.

    ``failure`` records never satisfy a resume lookup: a quarantined
    task *recomputes* on the next run (its fault may have been
    environmental), and succeeds or is re-quarantined on its own
    merits.  They exist for reporting and forensics.
    """

    FORMAT = "repro-sweep-checkpoint"
    VERSION = 1

    def __init__(self, path) -> None:
        self.path = str(path)
        self._generations: Dict[str, dict] = {}
        self._points: Dict[str, dict] = {}
        self._failures: Dict[str, dict] = {}

    @staticmethod
    def _record_key(record: dict) -> Tuple:
        return (record["kind"], record["key"])

    # -- snapshot -------------------------------------------------------------

    def load(self) -> int:
        """Snapshot the store's completed tasks for resume lookups.

        Missing stores are simply cold.  A *torn* single-file store —
        half-written trailing record, the signature of a copy or append
        interrupted mid-byte — is salvaged instead of crashing
        ``--resume``: every intact record is kept, the damaged file is
        quarantined (``<name>.quarantine-<pid>``), and the lost tail
        simply recomputes.  A store holding a different cache kind's
        data still fails loud (:class:`~repro.persistence.WrongFormatError`
        means a typo'd path, not damage).  Returns the number of
        records loaded.
        """
        try:
            records = persistence.read_cache_entries(
                self.path, self.FORMAT, self.VERSION, missing_ok=True,
                kind="sweep checkpoint",
            ) or []
        except persistence.WrongFormatError:
            raise
        except ValueError as error:
            salvaged = persistence.salvage_torn_store(
                self.path, self.FORMAT, self.VERSION, kind="sweep checkpoint",
            )
            if salvaged is None:
                raise error
            records = salvaged
            if records:
                # Re-persist the intact records so the rebuilt store is
                # whole again: without this, salvaged tasks would satisfy
                # *this* resume but vanish from the store (resumed tasks
                # are never re-recorded), costing a recompute next run.
                persistence.union_merge_save(
                    self.path, self.FORMAT, self.VERSION, records,
                    self._record_key, kind="sweep checkpoint",
                )
        for record in records:
            if record.get("kind") == "generation":
                self._generations[record["key"]] = record
            elif record.get("kind") == "point":
                self._points[record["key"]] = record
            elif record.get("kind") == "failure":
                self._failures[record["key"]] = record
        return len(records)

    @property
    def completed_generations(self) -> int:
        return len(self._generations)

    @property
    def completed_points(self) -> int:
        return len(self._points)

    @property
    def recorded_failures(self) -> int:
        return len(self._failures)

    def failures(self) -> List[dict]:
        """Quarantine records loaded from the store, ordered by key."""
        return [
            dict(self._failures[key]["failure"])
            for key in sorted(self._failures)
        ]

    # -- lookups (resume) -----------------------------------------------------

    def generation_rows(self, key: str) -> Optional[GenerationRows]:
        record = self._generations.get(key)
        if record is None:
            return None
        return [
            (benchmark, config_value, int(index), architecture_from_record(arch))
            for benchmark, config_value, index, arch in record["rows"]
        ]

    def point(self, key: str) -> Optional[DataPoint]:
        record = self._points.get(key)
        if record is None:
            return None
        return point_from_record(record["point"])

    # -- recording ------------------------------------------------------------

    def record_generation(self, key: str, rows: GenerationRows) -> None:
        record = {
            "kind": "generation",
            "key": key,
            "rows": [
                [benchmark, config_value, index, architecture_record(arch)]
                for benchmark, config_value, index, arch in rows
            ],
        }
        self._generations[key] = record
        faults.maybe_inject("checkpoint:record", store_path=self.path)
        persistence.union_merge_save(
            self.path, self.FORMAT, self.VERSION, [record], self._record_key,
            kind="sweep checkpoint",
        )

    def record_point(self, key: str, point: DataPoint) -> None:
        record = {"kind": "point", "key": key, "point": point_record(point)}
        self._points[key] = record
        faults.maybe_inject("checkpoint:record", store_path=self.path)
        persistence.union_merge_save(
            self.path, self.FORMAT, self.VERSION, [record], self._record_key,
            kind="sweep checkpoint",
        )

    def record_failure(self, failure: dict) -> None:
        """Record a quarantined task's structured failure entry.

        ``failure`` is the supervisor's report record (task kind,
        content key, identity, and the per-attempt failure list); it is
        stored verbatim under the ``failure`` kind so the checkpoint
        explains the sweep's gaps.
        """
        record = {"kind": "failure", "key": failure["key"], "failure": failure}
        self._failures[failure["key"]] = record
        persistence.union_merge_save(
            self.path, self.FORMAT, self.VERSION, [record], self._record_key,
            kind="sweep checkpoint",
        )
