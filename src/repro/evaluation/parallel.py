"""Parallel design-space exploration: the ``SweepExecutor``.

The paper's evaluation scores hundreds of (benchmark x configuration x
architecture) points; each point is independent, so the sweep shards
them across ``multiprocessing`` workers.  Two properties make the
parallel sweep reproducible:

* **Deterministic point enumeration** — architectures are generated from
  seeded design flows, so every worker derives the same point list for a
  given benchmark/configuration regardless of scheduling.
* **Deterministic per-point seeds** — each point's yield simulator is
  seeded from the point's identity (benchmark, configuration,
  architecture index), never from worker or wall-clock state, so
  ``--jobs 8`` produces byte-identical results to ``--jobs 1``.

The executor parallelizes both phases of a sweep: architecture
*generation* (one task per benchmark x configuration, dominated by the
Algorithm 3 frequency search) and point *evaluation* (one task per
architecture, dominated by routing plus the Monte Carlo yield
simulation).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.benchmarks.library import get_benchmark
from repro.collision.yield_simulator import YieldSimulator
from repro.design.engine import DesignEngine
from repro.evaluation.checkpoint import (
    SweepCheckpoint,
    generation_task_key,
    point_task_key,
)
from repro.evaluation.configs import ExperimentConfig, architectures_for_config
from repro.evaluation.experiment import (
    DEFAULT_CONFIGS,
    DataPoint,
    EvaluationSettings,
    ExperimentResult,
    design_engine_for,
    evaluate_point,
)
from repro.hardware.architecture import Architecture
from repro.mapping.engine import RoutingEngine
from repro.mapping.sabre import SabreParameters
from repro.profiling.profiler import profile_circuit
from repro.utils.rng import seed_for


@dataclass(frozen=True)
class SweepPoint:
    """One independent evaluation point of a design-space sweep."""

    benchmark: str
    config: ExperimentConfig
    arch_index: int
    architecture: Architecture


def sweep_point_seed(base_seed: int, benchmark: str, config_value: str, arch_index: int) -> int:
    """The yield-simulator seed of one sweep point.

    Derived solely from the point's identity (plus the sweep-level base
    seed), so the schedule that evaluated the point — worker id, arrival
    order, job count — can never influence the result.

    Note this intentionally differs from :func:`evaluate_benchmark`,
    which reuses one seed for every architecture (common random numbers
    *across* architectures): per-point seeds keep every point
    independently reproducible — it can be re-run, retried, or sharded
    in isolation and still produce its sweep value — at the cost of
    slightly noisier cross-architecture yield comparisons.  Candidate
    comparisons *inside* a point (Algorithm 3) still use common random
    numbers via ``estimate_batch``.
    """
    return seed_for("sweep-yield", base_seed, benchmark, config_value, arch_index)


# ---------------------------------------------------------------------------
# Worker task functions.  Must be module-level so they pickle under every
# multiprocessing start method; they receive plain tuples and re-derive
# circuits/profiles locally to keep the pickled payload small.
# ---------------------------------------------------------------------------

#: Process-local routing engines, one per (parameter set, cache file).
#: Routing is a pure deterministic function of (circuit, architecture,
#: parameters), so reusing distance matrices and memoized results inside a
#: worker can never change a sweep value — ``--jobs N`` stays byte-identical
#: for any N regardless of which points land in which process.
_WORKER_ENGINES: Dict[Tuple[SabreParameters, Optional[str]], RoutingEngine] = {}

#: Process-local design engines, one per design-cache path.  Design is a
#: pure deterministic function of (circuit, configuration), so stage
#: cache hits — warm-loaded or accumulated — can never change which
#: architectures a sweep enumerates.
_WORKER_DESIGN_ENGINES: Dict[Optional[str], DesignEngine] = {}

#: Routing-cache miss counts already persisted per worker engine: the
#: in-worker merge after each evaluation task only rewrites the cache
#: file when the task actually routed something new.
_WORKER_MERGED_MISSES: Dict[Tuple[SabreParameters, Optional[str]], int] = {}

#: Process-local sweep checkpoints, one per (path, resume) pair.  On a
#: resume, each worker snapshots the completed-task records once and
#: serves every lookup from that snapshot; recordings always go through
#: the store's locked union merge, so concurrent workers never drop each
#: other's records.
_WORKER_CHECKPOINTS: Dict[Tuple[str, bool], SweepCheckpoint] = {}


def _worker_engine(settings: EvaluationSettings) -> RoutingEngine:
    key = (settings.routing, settings.routing_cache_path)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = _WORKER_ENGINES.setdefault(key, RoutingEngine(settings.routing))
        if settings.routing_cache_path:
            # Warm-load persisted results: this is how sweeps reuse routing
            # work across worker processes and across invocations.
            engine.cache.load(settings.routing_cache_path, missing_ok=True)
    return engine


def _worker_design_engine(settings: EvaluationSettings) -> DesignEngine:
    key = settings.design_cache_path
    engine = _WORKER_DESIGN_ENGINES.get(key)
    if engine is None:
        # design_engine_for warm-loads the persisted frequency plans, so
        # every worker process starts its generation tasks warm.
        engine = _WORKER_DESIGN_ENGINES.setdefault(key, design_engine_for(settings))
    return engine


def _worker_checkpoint(settings: EvaluationSettings) -> Optional[SweepCheckpoint]:
    if not settings.checkpoint_path:
        return None
    key = (settings.checkpoint_path, settings.resume)
    checkpoint = _WORKER_CHECKPOINTS.get(key)
    if checkpoint is None:
        checkpoint = _WORKER_CHECKPOINTS.setdefault(
            key, SweepCheckpoint(settings.checkpoint_path)
        )
        if settings.resume:
            checkpoint.load()
    return checkpoint


def save_worker_routing_cache(settings: EvaluationSettings) -> Optional[int]:
    """Persist this process's unmerged routing results, if any remain.

    Returns the number of entries the cache file holds after a merge, or
    None when there was nothing to do: the settings name no cache file,
    this process routed nothing (multi-process sweeps route in their
    workers), or every result was already merged by the per-task
    in-worker merges — the common case, which skips the file rewrite
    entirely.  The file-level merge is serialized under a per-path lock
    and the file is rewritten atomically, so concurrent savers sharing
    one cache path cannot drop each other's entries and the file never
    shrinks to one saver's LRU bound.
    """
    if not settings.routing_cache_path:
        return None
    key = (settings.routing, settings.routing_cache_path)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        return None
    misses = engine.cache.misses
    if misses <= _WORKER_MERGED_MISSES.get(key, 0):
        return None
    _WORKER_MERGED_MISSES[key] = misses
    return engine.cache.merge_save(settings.routing_cache_path)


def worker_cache_stats(settings: EvaluationSettings) -> Dict[str, Dict[str, int]]:
    """Cache statistics of this process's worker engines (``--cache-stats``).

    Returns whatever engines this process actually ran: ``routing`` maps
    to the :class:`~repro.mapping.engine.RoutingCache` counters and
    ``design`` to the per-stage :meth:`DesignEngine.stats` counters.  An
    in-process sweep (``--jobs 1``) reports the full session; in a
    ``--jobs N`` sweep each worker process owns its counters, so the
    parent's report only covers work it did itself (typically none) —
    the CLI notes that limitation rather than pretending to aggregate.
    """
    stats: Dict[str, Dict[str, int]] = {}
    engine = _WORKER_ENGINES.get((settings.routing, settings.routing_cache_path))
    if engine is not None:
        stats["routing"] = engine.cache.stats()
    design_engine = _WORKER_DESIGN_ENGINES.get(settings.design_cache_path)
    if design_engine is not None:
        stats.update(
            (f"design/{stage}", values)
            for stage, values in design_engine.stats().items()
        )
    return stats


def _generate_task(
    task: Tuple[str, str, EvaluationSettings],
) -> List[Tuple[str, str, int, Architecture]]:
    benchmark, config_value, settings = task
    checkpoint = _worker_checkpoint(settings)
    task_key = None
    if checkpoint is not None:
        task_key = generation_task_key(benchmark, config_value, settings)
        if settings.resume:
            recorded = checkpoint.generation_rows(task_key)
            if recorded is not None:
                # Restored before the design engine even exists: a resumed
                # generation task runs zero Algorithm 3 searches.
                return recorded
    circuit = get_benchmark(benchmark)
    config = ExperimentConfig(config_value)
    engine = _worker_design_engine(settings)
    misses_before = engine.frequency_cache.misses
    architectures = architectures_for_config(
        circuit,
        config,
        random_bus_seeds=settings.random_bus_seeds,
        frequency_local_trials=settings.frequency_local_trials,
        engine=engine,
        allocation_strategy=settings.allocation_strategy,
        screening=settings.screening,
    )
    if settings.design_cache_path and engine.frequency_cache.misses > misses_before:
        # Merge freshly computed frequency plans back immediately: Pool
        # workers have no end-of-sweep hook, and the locked merge keeps
        # concurrent workers from dropping each other's entries — so even
        # ``sweep --jobs N`` leaves the cache file complete.  Tasks served
        # entirely warm (no new stage misses) skip the rewrite.
        engine.frequency_cache.merge_save(settings.design_cache_path)
    rows = [
        (benchmark, config_value, index, architecture)
        for index, architecture in enumerate(architectures)
        if architecture.num_qubits >= circuit.num_qubits
    ]
    if checkpoint is not None:
        checkpoint.record_generation(task_key, rows)
    return rows


def _merge_worker_routing_cache(settings: EvaluationSettings, engine: RoutingEngine) -> None:
    """Persist this worker's new routing results after an evaluation task.

    The design-cache counterpart lives in :func:`_generate_task`; this is
    the routing-side mirror, giving ``sweep --jobs N`` a complete routing
    cache file without a separate ``--jobs 1`` refresh pass.  Pool
    workers have no end-of-sweep hook, so each task merges its own new
    results; the per-path locked file-level union keeps concurrent
    workers from dropping each other's entries, and tasks served
    entirely from cache (no new misses) skip the rewrite.
    """
    if not settings.routing_cache_path:
        return
    key = (settings.routing, settings.routing_cache_path)
    misses = engine.cache.misses
    if misses > _WORKER_MERGED_MISSES.get(key, 0):
        engine.cache.merge_save(settings.routing_cache_path)
        _WORKER_MERGED_MISSES[key] = misses


def _evaluate_task(
    task: Tuple[str, str, int, Architecture, EvaluationSettings],
) -> DataPoint:
    benchmark, config_value, arch_index, architecture, settings = task
    checkpoint = _worker_checkpoint(settings)
    task_key = None
    if checkpoint is not None:
        task_key = point_task_key(
            benchmark, config_value, arch_index, architecture, settings
        )
        if settings.resume:
            recorded = checkpoint.point(task_key)
            if recorded is not None:
                # Restored before the routing engine even exists: a resumed
                # point task routes nothing and runs no yield simulation.
                return recorded
    circuit = get_benchmark(benchmark)
    profile = profile_circuit(circuit)
    simulator = YieldSimulator(
        trials=settings.yield_trials,
        sigma_ghz=settings.sigma_ghz,
        seed=sweep_point_seed(settings.yield_seed, benchmark, config_value, arch_index),
    )
    engine = _worker_engine(settings)
    point = evaluate_point(
        circuit, profile, architecture, ExperimentConfig(config_value), simulator, settings,
        engine=engine,
    )
    _merge_worker_routing_cache(settings, engine)
    if checkpoint is not None:
        checkpoint.record_point(task_key, point)
    return point


class SweepExecutor:
    """Shards (benchmark x config x architecture) points across processes.

    Args:
        settings: Evaluation knobs shared by every point.
        configs: Experiment configurations to sweep (Figure 10's five by
            default).
        jobs: Worker process count; ``1`` runs everything in-process.
            Results are byte-identical for any value.
    """

    def __init__(
        self,
        settings: Optional[EvaluationSettings] = None,
        configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.settings = settings or EvaluationSettings()
        self.configs = tuple(configs)
        self.jobs = int(jobs)

    # -- phases ---------------------------------------------------------------

    def enumerate_points(self, benchmarks: Sequence[str]) -> List[SweepPoint]:
        """Generate every evaluation point of the sweep, in deterministic order.

        Architecture generation itself (layout + bus selection + Algorithm 3)
        is fanned out across workers, one task per benchmark x configuration.
        """
        tasks = [
            (benchmark, config.value, self.settings)
            for benchmark in benchmarks
            for config in self.configs
        ]
        raw = self._map(_generate_task, tasks)
        return [
            SweepPoint(benchmark, ExperimentConfig(config_value), index, architecture)
            for generated in raw
            for benchmark, config_value, index, architecture in generated
        ]

    def evaluate(self, points: Sequence[SweepPoint]) -> List[DataPoint]:
        """Score every point (routing + yield), fanned out across workers."""
        tasks = [
            (point.benchmark, point.config.value, point.arch_index,
             point.architecture, self.settings)
            for point in points
        ]
        return self._map(_evaluate_task, tasks)

    def run(self, benchmarks: Sequence[str]) -> Dict[str, ExperimentResult]:
        """The full sweep: enumerate, evaluate, and assemble per-benchmark results.

        Returns one :class:`ExperimentResult` per benchmark, keyed by the
        benchmark's canonical name (aliases and repeated names collapse
        onto one entry).
        """
        names = list(dict.fromkeys(get_benchmark(name).name for name in benchmarks))
        points = self.enumerate_points(names)
        data = self.evaluate(points)
        results = {name: ExperimentResult(benchmark=name) for name in names}
        for point in data:
            results[point.benchmark].points.append(point)
        for result in results.values():
            result.normalize()
        return results

    # -- execution ------------------------------------------------------------

    def _map(self, func, tasks):
        if self.jobs == 1 or len(tasks) <= 1:
            return [func(task) for task in tasks]
        processes = min(self.jobs, len(tasks))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(func, tasks, chunksize=1)


def run_sweep(
    benchmarks: Sequence[str],
    jobs: int = 1,
    settings: Optional[EvaluationSettings] = None,
    configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
) -> Dict[str, ExperimentResult]:
    """One-call convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(settings=settings, configs=configs, jobs=jobs).run(benchmarks)
