"""Parallel design-space exploration: the ``SweepExecutor``.

The paper's evaluation scores hundreds of (benchmark x configuration x
architecture) points; each point is independent, so the sweep shards
them across ``multiprocessing`` workers.  Two properties make the
parallel sweep reproducible:

* **Deterministic point enumeration** — architectures are generated from
  seeded design flows, so every worker derives the same point list for a
  given benchmark/configuration regardless of scheduling.
* **Deterministic per-point seeds** — each point's yield simulator is
  seeded from the point's identity (benchmark, configuration,
  architecture index), never from worker or wall-clock state, so
  ``--jobs 8`` produces byte-identical results to ``--jobs 1``.

The executor parallelizes both phases of a sweep: architecture
*generation* (one task per benchmark x configuration, dominated by the
Algorithm 3 frequency search) and point *evaluation* (one task per
architecture, dominated by routing plus the Monte Carlo yield
simulation).

Worker state lives in :class:`~repro.runtime.session.Session` objects
found through the process-level registry, keyed by the settings' content
digest (:func:`~repro.runtime.session.session_for`): every task of a
sweep shares one warm session per worker process, and an in-process
sweep (``jobs=1``) shares the session of the CLI command that launched
it.  Each task also returns the :mod:`repro.runtime.metrics` delta it
produced; the parent folds worker deltas into its own registry with
key-wise sums, so the merged ``--metrics-out`` totals are deterministic
for any task-completion order.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro import faults
from repro.benchmarks.library import get_benchmark
from repro.collision.yield_simulator import YieldSimulator
from repro.design.engine import DesignEngine
from repro.evaluation.checkpoint import (
    SweepCheckpoint,
    generation_task_key,
    point_task_key,
)
from repro.evaluation.configs import ExperimentConfig, architectures_for_config
from repro.evaluation.experiment import (
    DEFAULT_CONFIGS,
    DataPoint,
    EvaluationSettings,
    ExperimentResult,
    evaluate_point,
)
from repro.hardware.architecture import Architecture
from repro.mapping.engine import RoutingEngine
from repro.profiling.profiler import profile_circuit
from repro.runtime.metrics import Snapshot, diff_snapshots, global_metrics
from repro.utils.rng import seed_for

if TYPE_CHECKING:  # pragma: no cover — annotation-only, avoids a cycle
    from repro.runtime.session import Session


def _session_module():
    """``repro.runtime.session``, imported on first use.

    The session layer imports :mod:`repro.evaluation` for checkpoints and
    experiment types; deferring the reverse import keeps
    ``import repro.runtime.session`` working on its own instead of dying
    in a partially-initialized cycle.
    """
    from repro.runtime import session

    return session


@dataclass(frozen=True)
class SweepPoint:
    """One independent evaluation point of a design-space sweep."""

    benchmark: str
    config: ExperimentConfig
    arch_index: int
    architecture: Architecture


def sweep_point_seed(base_seed: int, benchmark: str, config_value: str, arch_index: int) -> int:
    """The yield-simulator seed of one sweep point.

    Derived solely from the point's identity (plus the sweep-level base
    seed), so the schedule that evaluated the point — worker id, arrival
    order, job count — can never influence the result.

    Note this intentionally differs from :func:`evaluate_benchmark`,
    which reuses one seed for every architecture (common random numbers
    *across* architectures): per-point seeds keep every point
    independently reproducible — it can be re-run, retried, or sharded
    in isolation and still produce its sweep value — at the cost of
    slightly noisier cross-architecture yield comparisons.  Candidate
    comparisons *inside* a point (Algorithm 3) still use common random
    numbers via ``estimate_batch``.
    """
    return seed_for("sweep-yield", base_seed, benchmark, config_value, arch_index)


# ---------------------------------------------------------------------------
# Worker task functions.  Must be module-level so they pickle under every
# multiprocessing start method; they receive plain tuples and re-derive
# circuits/profiles locally to keep the pickled payload small.
#
# All process-local worker state (engines, caches, checkpoints) lives in
# runtime Sessions keyed by the settings' content digest — store paths
# canonicalized, so relative/symlink aliases of one cache file share one
# warm engine per process.  Sessions are transparent: engine reuse can
# never change a sweep value, so ``--jobs N`` stays byte-identical for
# any N regardless of which points land in which process.
# ---------------------------------------------------------------------------


def _worker_session(settings: EvaluationSettings) -> Session:
    """This process's session for ``settings`` (created on first use)."""
    return _session_module().session_for(settings=settings)


def _worker_engine(settings: EvaluationSettings) -> RoutingEngine:
    """The session-owned routing engine, warm-loaded from the persistent cache."""
    return _worker_session(settings).routing_engine


def _worker_design_engine(settings: EvaluationSettings) -> DesignEngine:
    """The session-owned design engine, warm-loaded from the persistent cache."""
    return _worker_session(settings).design_engine


def _worker_checkpoint(settings: EvaluationSettings) -> Optional[SweepCheckpoint]:
    if not settings.checkpoint_path:
        return None
    return _worker_session(settings).checkpoint


def reset_worker_state() -> None:
    """Drop every session this process built (engines, caches, checkpoints).

    Test-isolation hook: after this, the next task builds cold state from
    scratch, exactly like a freshly forked worker with no inherited
    sessions.
    """
    _session_module().reset_process_sessions()


def active_routing_engines() -> List[RoutingEngine]:
    """Routing engines constructed by this process's sessions (tests).

    Lazy construction makes this a meaningful probe: a fully-warm resumed
    sweep restores every point from the checkpoint before any routing
    engine exists, so this stays empty.
    """
    return [
        session._routing_engine
        for session in _session_module().process_sessions()
        if session.has_routing_engine
    ]


def save_worker_routing_cache(settings: EvaluationSettings) -> Optional[int]:
    """Persist this process's unmerged routing results, if any remain.

    Returns the number of entries the cache file holds after a merge, or
    None when there was nothing to do: the settings name no cache file,
    this process routed nothing (multi-process sweeps route in their
    workers), or every result was already merged by the per-task
    in-worker merges — the common case, which skips the file rewrite
    entirely.  The file-level merge is serialized under a per-path lock
    and the file is rewritten atomically, so concurrent savers sharing
    one cache path cannot drop each other's entries and the file never
    shrinks to one saver's LRU bound.
    """
    session = _session_module().peek_session(settings=settings)
    if session is None:
        return None
    return session.persist_routing()


def worker_cache_stats(settings: EvaluationSettings) -> Dict[str, Dict[str, int]]:
    """Cache statistics of this process's session engines (``--cache-stats``).

    Returns whatever engines this process actually ran: ``routing`` maps
    to the :class:`~repro.mapping.engine.RoutingCache` counters and
    ``design/<stage>`` to the per-stage :meth:`DesignEngine.stats`
    counters.  An in-process sweep (``--jobs 1``) reports the full
    session; in a ``--jobs N`` sweep each worker process owns its
    counters, so this report only covers work the calling process did
    itself (typically none) — the CLI notes that limitation rather than
    pretending to aggregate.  ``--metrics-out`` is the aggregated,
    structured successor.
    """
    session = _session_module().peek_session(settings=settings)
    if session is None:
        return {}
    return session.cache_stats()


def _generate_task(
    task: Tuple[str, str, EvaluationSettings],
) -> Tuple[List[Tuple[str, str, int, Architecture]], Snapshot]:
    benchmark, config_value, settings = task
    baseline = global_metrics().snapshot()
    rows = _generate_rows(benchmark, config_value, settings)
    return rows, diff_snapshots(global_metrics().snapshot(), baseline)


def _generate_rows(
    benchmark: str, config_value: str, settings: EvaluationSettings,
) -> List[Tuple[str, str, int, Architecture]]:
    session = _worker_session(settings)
    checkpoint = session.checkpoint
    task_key = None
    if checkpoint is not None:
        task_key = generation_task_key(benchmark, config_value, settings)
        if settings.resume:
            recorded = checkpoint.generation_rows(task_key)
            if recorded is not None:
                # Restored before the design engine even exists: a resumed
                # generation task runs zero Algorithm 3 searches.
                return recorded
    faults.maybe_inject("generate:start")
    circuit = get_benchmark(benchmark)
    config = ExperimentConfig(config_value)
    engine = session.design_engine
    architectures = architectures_for_config(
        circuit,
        config,
        random_bus_seeds=settings.random_bus_seeds,
        frequency_local_trials=settings.frequency_local_trials,
        engine=engine,
        allocation_strategy=settings.allocation_strategy,
        screening=settings.screening,
    )
    # Merge freshly computed frequency plans back immediately: Pool
    # workers have no end-of-sweep hook, and the locked merge keeps
    # concurrent workers from dropping each other's entries — so even
    # ``sweep --jobs N`` leaves the cache file complete.  Tasks served
    # entirely warm (no new stage misses since the last merge) skip the
    # rewrite inside persist_design.
    session.persist_design()
    rows = [
        (benchmark, config_value, index, architecture)
        for index, architecture in enumerate(architectures)
        if architecture.num_qubits >= circuit.num_qubits
    ]
    if checkpoint is not None:
        checkpoint.record_generation(task_key, rows)
    return rows


def _evaluate_task(
    task: Tuple[str, str, int, Architecture, EvaluationSettings],
) -> Tuple[DataPoint, Snapshot]:
    benchmark, config_value, arch_index, architecture, settings = task
    baseline = global_metrics().snapshot()
    point = _evaluate_one(benchmark, config_value, arch_index, architecture, settings)
    return point, diff_snapshots(global_metrics().snapshot(), baseline)


def _evaluate_one(
    benchmark: str, config_value: str, arch_index: int,
    architecture: Architecture, settings: EvaluationSettings,
) -> DataPoint:
    session = _worker_session(settings)
    checkpoint = session.checkpoint
    task_key = None
    if checkpoint is not None:
        task_key = point_task_key(
            benchmark, config_value, arch_index, architecture, settings
        )
        if settings.resume:
            recorded = checkpoint.point(task_key)
            if recorded is not None:
                # Restored before the routing engine even exists: a resumed
                # point task routes nothing and runs no yield simulation.
                return recorded
    faults.maybe_inject("evaluate:start")
    circuit = get_benchmark(benchmark)
    profile = profile_circuit(circuit)
    simulator = YieldSimulator(
        trials=settings.yield_trials,
        sigma_ghz=settings.sigma_ghz,
        seed=sweep_point_seed(settings.yield_seed, benchmark, config_value, arch_index),
    )
    point = evaluate_point(
        circuit, profile, architecture, ExperimentConfig(config_value), simulator, settings,
        engine=session.routing_engine,
    )
    # The routing-side mirror of _generate_rows' design-cache merge:
    # persist this worker's new routing results after every task, so
    # ``sweep --jobs N`` leaves a complete routing cache file without a
    # separate ``--jobs 1`` refresh pass.
    session.persist_routing()
    # Site between compute and checkpoint record: a kill here proves a
    # retry re-derives the identical point from its content-addressed
    # seeds rather than depending on the lost record.
    faults.maybe_inject("evaluate:computed")
    if checkpoint is not None:
        checkpoint.record_point(task_key, point)
    return point


class SweepExecutor:
    """Shards (benchmark x config x architecture) points across processes.

    Args:
        settings: Evaluation knobs shared by every point.
        configs: Experiment configurations to sweep (Figure 10's five by
            default).
        jobs: Worker process count; ``1`` runs everything in-process.
            Results are byte-identical for any value.
    """

    def __init__(
        self,
        settings: Optional[EvaluationSettings] = None,
        configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.settings = settings or EvaluationSettings()
        self.configs = tuple(configs)
        self.jobs = int(jobs)

    # -- phases ---------------------------------------------------------------

    def enumerate_points(self, benchmarks: Sequence[str]) -> List[SweepPoint]:
        """Generate every evaluation point of the sweep, in deterministic order.

        Architecture generation itself (layout + bus selection + Algorithm 3)
        is fanned out across workers, one task per benchmark x configuration.
        """
        tasks = [
            (benchmark, config.value, self.settings)
            for benchmark in benchmarks
            for config in self.configs
        ]
        raw = self._run_tasks(_generate_task, tasks)
        return [
            SweepPoint(benchmark, ExperimentConfig(config_value), index, architecture)
            for generated in raw
            for benchmark, config_value, index, architecture in generated
        ]

    def evaluate(self, points: Sequence[SweepPoint]) -> List[DataPoint]:
        """Score every point (routing + yield), fanned out across workers."""
        tasks = [
            (point.benchmark, point.config.value, point.arch_index,
             point.architecture, self.settings)
            for point in points
        ]
        return self._run_tasks(_evaluate_task, tasks)

    def run(self, benchmarks: Sequence[str]) -> Dict[str, ExperimentResult]:
        """The full sweep: enumerate, evaluate, and assemble per-benchmark results.

        Returns one :class:`ExperimentResult` per benchmark, keyed by the
        benchmark's canonical name (aliases and repeated names collapse
        onto one entry).
        """
        names = list(dict.fromkeys(get_benchmark(name).name for name in benchmarks))
        points = self.enumerate_points(names)
        data = self.evaluate(points)
        results = {name: ExperimentResult(benchmark=name) for name in names}
        for point in data:
            results[point.benchmark].points.append(point)
        for result in results.values():
            result.normalize()
        return results

    # -- execution ------------------------------------------------------------

    def _run_tasks(self, func, tasks):
        """Map tasks (in-process or via a Pool) and merge metrics deltas.

        Every task returns ``(payload, metrics_delta)``.  When tasks ran
        in forked workers, their deltas are folded into this process's
        registry — key-wise sums, so the merged totals are deterministic
        for any completion order.  In-process tasks incremented this
        registry directly; merging their deltas again would double-count,
        so they are dropped.
        """
        forked = not (self.jobs == 1 or len(tasks) <= 1)
        results = self._map(func, tasks)
        payloads = []
        metrics = global_metrics()
        for payload, delta in results:
            payloads.append(payload)
            if forked:
                metrics.merge(delta)
        return payloads

    def _map(self, func, tasks):
        if self.jobs == 1 or len(tasks) <= 1:
            return [func(task) for task in tasks]
        processes = min(self.jobs, len(tasks))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(func, tasks, chunksize=1)


def run_sweep(
    benchmarks: Sequence[str],
    jobs: int = 1,
    settings: Optional[EvaluationSettings] = None,
    configs: Iterable[ExperimentConfig] = DEFAULT_CONFIGS,
) -> Dict[str, ExperimentResult]:
    """One-call convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(settings=settings, configs=configs, jobs=jobs).run(benchmarks)
