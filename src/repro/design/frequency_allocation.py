"""Frequency allocation subroutine — Algorithm 3 of the paper.

Given a finished qubit layout and connection design, assign each qubit a
pre-fabrication frequency inside the allowed band (5.00-5.34 GHz) so that
the Monte Carlo yield of the whole chip is maximized.

The algorithm exploits two observations the paper makes: (1) qubits at
the geometric centre of the layout have the most connections and are the
most collision-prone, and (2) collisions are local — a qubit can only
collide with qubits at distance one or two in the coupling graph.  It
therefore fixes the centre qubit to the middle of the band and then walks
the coupling graph breadth-first, assigning each newly reached qubit the
candidate frequency that maximizes the simulated yield of its *local
region* (the already-assigned qubits it can collide with).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.collision.conditions import (
    ANHARMONICITY_GHZ,
    CollisionThresholds,
    DEFAULT_THRESHOLDS,
)
from repro.collision.yield_simulator import YieldSimulator
from repro.hardware.architecture import Architecture
from repro.hardware.frequency import (
    DEFAULT_SIGMA_GHZ,
    candidate_frequencies,
    middle_frequency,
)
from repro.utils.rng import seed_for


@dataclass
class FrequencyAllocator:
    """Configuration of the Algorithm 3 frequency search.

    Attributes:
        sigma_ghz: Fabrication noise standard deviation used in the local
            yield simulations.
        local_trials: Monte Carlo trials per (qubit, candidate frequency)
            evaluation.  The local regions are tiny (a handful of qubits),
            so a modest trial count already separates good candidates from
            bad ones; the final full-chip yield is always re-estimated with
            the full simulator.
        frequency_step_ghz: Spacing of the candidate frequency grid
            (0.01 GHz in the paper).
        delta_ghz: Qubit anharmonicity.
        thresholds: Collision thresholds.
        seed: Base seed; the noise used to compare candidates for a given
            qubit is common across candidates (common random numbers), so
            the argmax is not dominated by sampling noise.
        refinement_passes: Number of coordinate-descent sweeps run after
            the centre-out BFS assignment.  Each sweep revisits every qubit
            (in the same BFS order) and re-optimizes its frequency against
            the now-complete assignment of its local region.  The default
            of 0 reproduces the paper's Algorithm 3 exactly; the option
            exists for the global-optimization ablation suggested in the
            paper's Discussion section.
    """

    sigma_ghz: float = DEFAULT_SIGMA_GHZ
    local_trials: int = 2000
    frequency_step_ghz: float = 0.01
    delta_ghz: float = ANHARMONICITY_GHZ
    thresholds: CollisionThresholds = DEFAULT_THRESHOLDS
    seed: int = 2020
    refinement_passes: int = 0

    def allocate(self, architecture: Architecture) -> Dict[int, float]:
        """Assign a frequency to every qubit of ``architecture``.

        The input architecture's existing frequencies (if any) are ignored;
        only its layout and coupling graph are used, as in the paper where
        "the input of our algorithm is only the qubit location and
        connection generated from the previous two subroutines".
        """
        qubits = architecture.qubits
        if not qubits:
            raise ValueError("architecture has no qubits")
        neighbors = {q: architecture.neighbors(q) for q in qubits}
        pairs = architecture.collision_pairs()
        triples = architecture.collision_triples()
        candidates = candidate_frequencies(self.frequency_step_ghz)

        frequencies: Dict[int, float] = {}
        center = architecture.lattice.central_qubit()
        frequencies[center] = middle_frequency()

        order = self._traversal_order(center, qubits, neighbors)
        for qubit in order:
            if qubit in frequencies:
                continue
            frequencies[qubit] = self._best_frequency(
                qubit, frequencies, pairs, triples, candidates
            )

        # Optional coordinate-descent refinement: revisit every qubit with the
        # full assignment known.  The first (centre) qubit is included too —
        # its initial mid-band choice is only a heuristic starting point.
        for _sweep in range(max(0, self.refinement_passes)):
            for qubit in order:
                context = {q: f for q, f in frequencies.items() if q != qubit}
                frequencies[qubit] = self._best_frequency(
                    qubit, context, pairs, triples, candidates
                )
        return frequencies

    # -- traversal -------------------------------------------------------------

    def _traversal_order(
        self,
        center: int,
        qubits: Sequence[int],
        neighbors: Dict[int, List[int]],
    ) -> List[int]:
        """Breadth-first order over the coupling graph starting at the centre qubit.

        Qubits unreachable from the centre (possible only for degenerate
        layouts) are appended afterwards in index order so every qubit gets
        a frequency.
        """
        order: List[int] = []
        visited: Set[int] = {center}
        queue = deque([center])
        while queue:
            current = queue.popleft()
            order.append(current)
            for neighbor in neighbors[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
        for qubit in qubits:
            if qubit not in visited:
                order.append(qubit)
        return order

    # -- candidate evaluation ----------------------------------------------------

    def _best_frequency(
        self,
        qubit: int,
        assigned: Dict[int, float],
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
        candidates: np.ndarray,
    ) -> float:
        """The candidate frequency maximizing the local-region yield for ``qubit``."""
        local_pairs, local_triples, region = self._local_region(qubit, assigned, pairs, triples)
        if not local_pairs and not local_triples:
            # Isolated qubit (no assigned neighbour yet): the middle of the band
            # is as good as any other choice.
            return middle_frequency()

        region_order = sorted(region)
        index_of = {q: i for i, q in enumerate(region_order)}
        qubit_index = index_of[qubit]
        base = np.array([assigned.get(q, 0.0) for q in region_order])
        local_pair_idx = tuple((index_of[a], index_of[b]) for a, b in local_pairs)
        local_triple_idx = tuple(
            (index_of[j], index_of[i], index_of[k]) for j, i, k in local_triples
        )

        # Common random numbers: the batched simulator evaluates every
        # candidate against the same fabrication noise tensor, so the argmax
        # reflects the designed frequencies, not the particular noise draw.
        simulator = YieldSimulator(
            trials=self.local_trials,
            sigma_ghz=self.sigma_ghz,
            delta_ghz=self.delta_ghz,
            thresholds=self.thresholds,
            seed=seed_for("freq-alloc", self.seed, qubit),
        )
        designed_batch = np.repeat(base[None, :], len(candidates), axis=0)
        designed_batch[:, qubit_index] = candidates
        estimates = simulator.estimate_batch(designed_batch, local_pair_idx, local_triple_idx)

        best_candidate = float(candidates[0])
        best_yield = -1.0
        for candidate, estimate in zip(candidates, estimates):
            if estimate.yield_rate > best_yield + 1e-12:
                best_yield = estimate.yield_rate
                best_candidate = float(candidate)
        return best_candidate

    def _local_region(
        self,
        qubit: int,
        assigned: Dict[int, float],
        pairs: Sequence[Tuple[int, int]],
        triples: Sequence[Tuple[int, int, int]],
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, int]], Set[int]]:
        """Pairs/triples involving ``qubit`` whose other members are already assigned.

        This is the "local region" of Algorithm 3: only connections through
        which the new qubit can collide, restricted to qubits whose
        frequencies are already fixed.
        """
        known = set(assigned) | {qubit}
        local_pairs = [
            (a, b)
            for a, b in pairs
            if qubit in (a, b) and a in known and b in known
        ]
        local_triples = [
            (j, i, k)
            for j, i, k in triples
            if qubit in (j, i, k) and j in known and i in known and k in known
        ]
        region: Set[int] = {qubit}
        for a, b in local_pairs:
            region.update((a, b))
        for j, i, k in local_triples:
            region.update((j, i, k))
        return local_pairs, local_triples, region


def allocate_frequencies(
    architecture: Architecture,
    sigma_ghz: float = DEFAULT_SIGMA_GHZ,
    local_trials: int = 2000,
    seed: int = 2020,
    refinement_passes: int = 0,
) -> Dict[int, float]:
    """One-call convenience wrapper around :class:`FrequencyAllocator`."""
    allocator = FrequencyAllocator(
        sigma_ghz=sigma_ghz,
        local_trials=local_trials,
        seed=seed,
        refinement_passes=refinement_passes,
    )
    return allocator.allocate(architecture)
